use proptest::prelude::*;

use psc_simnet::{Duration, NodeId, SimConfig, SimNet, SimTime};

use crate::sim_host::GroupNode;
use crate::{BestEffort, Causal, Certified, Fifo, Lpbcast, LpbcastConfig, Multicast, Reliable, Total};

/// Builds a simulation with `n` nodes running protocol instances from
/// `make`, all members of one group.
fn cluster(
    n: usize,
    config: SimConfig,
    make: impl Fn() -> Box<dyn Multicast> + Clone + 'static,
) -> (SimNet, Vec<NodeId>) {
    let mut sim = SimNet::new(config);
    let ids: Vec<NodeId> = (0..n)
        .map(|i| {
            let make = make.clone();
            sim.add_node(format!("n{i}"), move || {
                let proto = make();
                // GroupNode::boxed takes an impl Multicast; wrap the box.
                GroupNode::boxed(BoxedProto(proto))
            })
        })
        .collect();
    for &id in &ids {
        GroupNode::set_members(&mut sim, id, ids.clone());
    }
    (sim, ids)
}

/// Adapter: lets factories produce `Box<dyn Multicast>` while GroupNode
/// wants a concrete `impl Multicast`.
struct BoxedProto(Box<dyn Multicast>);

impl Multicast for BoxedProto {
    fn broadcast(&mut self, io: &mut dyn crate::GroupIo, payload: psc_codec::WireBytes) {
        self.0.broadcast(io, payload);
    }
    fn on_message(&mut self, io: &mut dyn crate::GroupIo, from: NodeId, bytes: &[u8]) {
        self.0.on_message(io, from, bytes);
    }
    fn on_timer(&mut self, io: &mut dyn crate::GroupIo, token: crate::TimerToken) {
        self.0.on_timer(io, token);
    }
    fn on_recover(&mut self, io: &mut dyn crate::GroupIo) {
        self.0.on_recover(io);
    }
    fn on_start(&mut self, io: &mut dyn crate::GroupIo) {
        self.0.on_start(io);
    }
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self.0.as_any_mut()
    }
}

fn payload(tag: u8, i: u64) -> Vec<u8> {
    let mut p = vec![tag];
    p.extend_from_slice(&i.to_le_bytes());
    p
}

mod besteffort {
    use super::*;

    #[test]
    fn delivers_to_all_members_without_loss() {
        let (mut sim, ids) = cluster(4, SimConfig::default(), || Box::new(BestEffort::new()));
        GroupNode::broadcast(&mut sim, ids[0], b"tick".to_vec());
        sim.run_to_quiescence();
        for &id in &ids {
            let delivered = GroupNode::delivered(&mut sim, id);
            assert_eq!(delivered, vec![(ids[0], b"tick".to_vec())], "node {id}");
        }
    }

    #[test]
    fn loses_messages_under_loss_and_sends_n_minus_1() {
        let (mut sim, ids) = cluster(
            10,
            SimConfig::with_loss(0.5),
            || Box::new(BestEffort::new()),
        );
        sim.reset_stats();
        GroupNode::broadcast(&mut sim, ids[0], b"x".to_vec());
        sim.run_to_quiescence();
        assert_eq!(sim.stats().sent, 9); // exactly one send per other member
        let received: usize = ids
            .iter()
            .map(|&id| GroupNode::delivered(&mut sim, id).len())
            .sum();
        // Origin always delivers; some subset of the rest.
        assert!(received >= 1);
        assert!(received < 10, "50% loss should drop something");
    }
}

mod reliable {
    use super::*;

    #[test]
    fn survives_heavy_loss_via_redundancy() {
        // With eager re-forwarding each message has n-1 independent entry
        // paths per holder; at 30% loss and 8 nodes delivery is (for this
        // seed) complete.
        let (mut sim, ids) = cluster(8, SimConfig::with_loss(0.3), || Box::new(Reliable::new()));
        for i in 0..5u64 {
            GroupNode::broadcast(&mut sim, ids[0], payload(1, i));
        }
        sim.run_to_quiescence();
        for &id in &ids {
            assert_eq!(
                GroupNode::delivered(&mut sim, id).len(),
                5,
                "node {id} missed messages"
            );
        }
    }

    #[test]
    fn no_duplicate_deliveries_despite_redundant_relays() {
        let (mut sim, ids) = cluster(5, SimConfig::default(), || Box::new(Reliable::new()));
        GroupNode::broadcast(&mut sim, ids[2], b"once".to_vec());
        sim.run_to_quiescence();
        for &id in &ids {
            assert_eq!(GroupNode::delivered(&mut sim, id).len(), 1);
        }
        // Redundancy really happened: more sends than best-effort's n-1.
        assert!(sim.stats().sent > 4);
    }

    #[test]
    fn costs_quadratic_messages() {
        let (mut sim, ids) = cluster(6, SimConfig::default(), || Box::new(Reliable::new()));
        sim.reset_stats();
        GroupNode::broadcast(&mut sim, ids[0], b"x".to_vec());
        sim.run_to_quiescence();
        // Origin sends n-1, each of the other 5 re-forwards n-1: 6*5 = 30.
        assert_eq!(sim.stats().sent, 30);
    }
}

mod fifo {
    use super::*;

    #[test]
    fn per_publisher_order_holds_despite_variable_latency() {
        let (mut sim, ids) = cluster(4, SimConfig::with_seed(11), || Box::new(Fifo::new()));
        for i in 0..20u64 {
            GroupNode::broadcast(&mut sim, ids[0], payload(7, i));
        }
        sim.run_to_quiescence();
        for &id in &ids {
            let got = GroupNode::delivered_payloads(&mut sim, id);
            let expected: Vec<Vec<u8>> = (0..20).map(|i| payload(7, i)).collect();
            assert_eq!(got, expected, "node {id} out of order");
        }
    }

    #[test]
    fn interleaved_publishers_each_stay_ordered() {
        let (mut sim, ids) = cluster(3, SimConfig::with_seed(5), || Box::new(Fifo::new()));
        for i in 0..10u64 {
            GroupNode::broadcast(&mut sim, ids[0], payload(0, i));
            GroupNode::broadcast(&mut sim, ids[1], payload(1, i));
        }
        sim.run_to_quiescence();
        for &id in &ids {
            let delivered = GroupNode::delivered(&mut sim, id);
            assert_eq!(delivered.len(), 20);
            for origin in [ids[0], ids[1]] {
                let seqs: Vec<u64> = delivered
                    .iter()
                    .filter(|(o, _)| *o == origin)
                    .map(|(_, p)| u64::from_le_bytes(p[1..9].try_into().unwrap()))
                    .collect();
                let mut sorted = seqs.clone();
                sorted.sort_unstable();
                assert_eq!(seqs, sorted, "origin {origin} out of order at {id}");
            }
        }
    }
}

mod causal {
    use super::*;

    #[test]
    fn causal_chains_are_respected() {
        // n0 broadcasts A; n1, upon delivering A, broadcasts B (causally
        // after A). No correct node may deliver B before A.
        let (mut sim, ids) = cluster(4, SimConfig::with_seed(3), || Box::new(Causal::new()));
        GroupNode::broadcast(&mut sim, ids[0], b"A".to_vec());
        // Drive until n1 has A, then publish B from n1.
        sim.run_to_quiescence();
        assert_eq!(GroupNode::delivered(&mut sim, ids[1]).len(), 1);
        GroupNode::broadcast(&mut sim, ids[1], b"B".to_vec());
        sim.run_to_quiescence();
        for &id in &ids {
            let got = GroupNode::delivered_payloads(&mut sim, id);
            assert_eq!(got, vec![b"A".to_vec(), b"B".to_vec()], "node {id}");
        }
    }

    #[test]
    fn concurrent_broadcasts_all_arrive() {
        let (mut sim, ids) = cluster(5, SimConfig::with_seed(9), || Box::new(Causal::new()));
        for (i, &id) in ids.iter().enumerate() {
            GroupNode::broadcast(&mut sim, id, payload(i as u8, 0));
        }
        sim.run_to_quiescence();
        for &id in &ids {
            assert_eq!(GroupNode::delivered(&mut sim, id).len(), 5);
            let pending =
                GroupNode::with_proto::<Causal, usize>(&mut sim, id, |c| c.pending_len()).unwrap();
            assert_eq!(pending, 0);
        }
    }

    /// Regression for unbounded `seen` retention: the matrix-clock GC must
    /// keep the duplicate-suppression set pinned near the in-flight window
    /// on a long-lived group, instead of growing with every message ever
    /// broadcast. 120 rounds × 3 publishers = 360 broadcasts; without the
    /// GC `seen` holds all 360 ids at every node.
    #[test]
    fn seen_set_stays_bounded_on_a_long_lived_group() {
        let (mut sim, ids) = cluster(3, SimConfig::with_seed(13), || Box::new(Causal::new()));
        let rounds = 120u64;
        for round in 0..rounds {
            for (i, &id) in ids.iter().enumerate() {
                GroupNode::broadcast(&mut sim, id, payload(i as u8, round));
            }
            // Let the round propagate so dependency vectors advance the
            // matrix floor.
            sim.run_for(Duration::from_millis(5));
        }
        sim.run_to_quiescence();
        for &id in &ids {
            assert_eq!(
                GroupNode::delivered(&mut sim, id).len(),
                (rounds * 3) as usize,
                "node {id} lost messages"
            );
            let (seen, reclaimed) = GroupNode::with_proto::<Causal, (usize, u64)>(
                &mut sim,
                id,
                |c| (c.seen_len(), c.gc_reclaimed()),
            )
            .unwrap();
            assert!(reclaimed > 0, "node {id}: GC never reclaimed anything");
            assert!(
                seen <= 24,
                "node {id}: seen grew to {seen} entries over {rounds} rounds \
                 — matrix-clock GC is not bounding retention"
            );
        }
    }

    /// Randomized: build a random causal history by publishing from random
    /// nodes with partial progress in between; verify causal delivery
    /// everywhere (happens-before never inverted).
    #[test]
    fn randomized_schedules_preserve_causality() {
        for seed in 0..10u64 {
            let (mut sim, ids) = cluster(4, SimConfig::with_seed(seed), || Box::new(Causal::new()));
            let mut published: Vec<(NodeId, Vec<u8>)> = Vec::new();
            for step in 0..12u64 {
                let publisher = ids[(seed as usize + step as usize) % ids.len()];
                let p = payload(publisher.0 as u8, step);
                GroupNode::broadcast(&mut sim, publisher, p.clone());
                published.push((publisher, p));
                // Partial progress: let some messages propagate.
                sim.run_for(Duration::from_micros(300 * (step % 3)));
            }
            sim.run_to_quiescence();
            // Every node delivered everything exactly once.
            for &id in &ids {
                let delivered = GroupNode::delivered(&mut sim, id);
                assert_eq!(delivered.len(), published.len(), "seed {seed} node {id}");
                // Per-origin FIFO (causal order implies it).
                for &origin in &ids {
                    let seqs: Vec<u64> = delivered
                        .iter()
                        .filter(|(o, _)| *o == origin)
                        .map(|(_, p)| u64::from_le_bytes(p[1..9].try_into().unwrap()))
                        .collect();
                    let mut sorted = seqs.clone();
                    sorted.sort_unstable();
                    assert_eq!(seqs, sorted, "seed {seed}");
                }
            }
        }
    }
}

mod total {
    use super::*;

    #[test]
    fn all_nodes_deliver_in_the_same_order() {
        let (mut sim, ids) = cluster(5, SimConfig::with_seed(17), || Box::new(Total::new()));
        // Concurrent publishes from everyone.
        for round in 0..6u64 {
            for (i, &id) in ids.iter().enumerate() {
                GroupNode::broadcast(&mut sim, id, payload(i as u8, round));
            }
        }
        sim.run_to_quiescence();
        let reference = GroupNode::delivered(&mut sim, ids[0]);
        assert_eq!(reference.len(), 30);
        for &id in &ids[1..] {
            assert_eq!(
                GroupNode::delivered(&mut sim, id),
                reference,
                "node {id} diverged from the total order"
            );
        }
    }

    #[test]
    fn gap_repair_recovers_lost_sequenced_messages() {
        let (mut sim, ids) = cluster(4, SimConfig::with_loss(0.25), || Box::new(Total::new()));
        for i in 0..10u64 {
            GroupNode::broadcast(&mut sim, ids[1], payload(9, i));
        }
        // Give NACK/retransmit cycles time to repair.
        sim.run_until(SimTime::from_millis(2_000));
        let reference = GroupNode::delivered(&mut sim, ids[0]);
        assert_eq!(reference.len(), 10);
        for &id in &ids[1..] {
            assert_eq!(GroupNode::delivered(&mut sim, id), reference);
        }
    }
}

mod certified {
    use super::*;

    #[test]
    fn subscriber_crash_then_recovery_still_delivers() {
        let (mut sim, ids) = cluster(3, SimConfig::default(), || Box::new(Certified::new()));
        // Crash n2, publish while it is down, recover, and verify delivery.
        sim.crash(ids[2]);
        GroupNode::broadcast(&mut sim, ids[0], b"must-arrive".to_vec());
        sim.run_until(SimTime::from_millis(200));
        assert_eq!(GroupNode::delivered(&mut sim, ids[1]).len(), 1);
        assert!(GroupNode::delivered(&mut sim, ids[2]).is_empty());

        sim.recover(ids[2]);
        sim.run_until(SimTime::from_millis(1_000));
        assert_eq!(
            GroupNode::delivered_payloads(&mut sim, ids[2]),
            vec![b"must-arrive".to_vec()],
            "certified delivery must survive the crash"
        );
        // Publisher stopped retransmitting (log drained).
        let unacked =
            GroupNode::with_proto::<Certified, usize>(&mut sim, ids[0], |c| c.unacked_len())
                .unwrap();
        assert_eq!(unacked, 0);
    }

    #[test]
    fn no_duplicates_across_recovery() {
        let (mut sim, ids) = cluster(2, SimConfig::default(), || Box::new(Certified::new()));
        GroupNode::broadcast(&mut sim, ids[0], b"one".to_vec());
        sim.run_until(SimTime::from_millis(100));
        assert_eq!(GroupNode::delivered(&mut sim, ids[1]).len(), 1);
        // Crash after delivery but pretend the ack got lost by crashing
        // before the publisher processes it: then recover and ensure the
        // retransmission is acked but NOT redelivered.
        sim.crash(ids[1]);
        sim.recover(ids[1]);
        sim.run_until(SimTime::from_millis(500));
        // Delivered log is volatile and was rebuilt empty, but the
        // *persisted* delivered-set suppresses redelivery.
        assert!(GroupNode::delivered(&mut sim, ids[1]).is_empty());
        let delivered_len =
            GroupNode::with_proto::<Certified, usize>(&mut sim, ids[1], |c| c.delivered_len())
                .unwrap();
        assert_eq!(delivered_len, 1);
    }

    #[test]
    fn publisher_crash_resumes_retransmission_from_log() {
        let (mut sim, ids) = cluster(3, SimConfig::default(), || Box::new(Certified::new()));
        sim.crash(ids[2]);
        GroupNode::broadcast(&mut sim, ids[0], b"durable".to_vec());
        sim.run_until(SimTime::from_millis(100));
        // Publisher crashes with n2 still unacked.
        sim.crash(ids[0]);
        sim.recover(ids[0]);
        sim.recover(ids[2]);
        sim.run_until(SimTime::from_millis(1_000));
        assert_eq!(
            GroupNode::delivered_payloads(&mut sim, ids[2]),
            vec![b"durable".to_vec()],
            "publisher recovery must resume retransmission from its log"
        );
    }

    #[test]
    fn loss_is_overcome_by_retransmission() {
        let (mut sim, ids) = cluster(4, SimConfig::with_loss(0.4), || Box::new(Certified::new()));
        for i in 0..5u64 {
            GroupNode::broadcast(&mut sim, ids[0], payload(3, i));
        }
        sim.run_until(SimTime::from_secs(5));
        for &id in &ids[1..] {
            assert_eq!(GroupNode::delivered(&mut sim, id).len(), 5, "node {id}");
        }
    }
}

mod lpbcast {
    use super::*;

    fn gossip_cluster(n: usize, fanout: usize, seed: u64) -> (SimNet, Vec<NodeId>) {
        let config = LpbcastConfig {
            fanout,
            ..LpbcastConfig::default()
        };
        cluster(n, SimConfig::with_seed(seed), move || {
            Box::new(Lpbcast::new(config))
        })
    }

    #[test]
    fn adequate_fanout_reaches_everyone() {
        // fanout 5 ≈ ln(32) + 1.5 — should reach all 32 nodes.
        let (mut sim, ids) = gossip_cluster(32, 5, 2);
        GroupNode::broadcast(&mut sim, ids[0], b"rumor".to_vec());
        sim.run_until(SimTime::from_millis(500));
        let reached = ids
            .iter()
            .filter(|&&id| !GroupNode::delivered(&mut sim, id).is_empty())
            .count();
        assert_eq!(reached, 32);
    }

    #[test]
    fn fanout_one_reaches_fewer_nodes_than_fanout_five() {
        let reach = |fanout: usize| {
            let (mut sim, ids) = gossip_cluster(48, fanout, 7);
            GroupNode::broadcast(&mut sim, ids[0], b"rumor".to_vec());
            sim.run_until(SimTime::from_millis(300));
            ids.iter()
                .filter(|&&id| !GroupNode::delivered(&mut sim, id).is_empty())
                .count()
        };
        let low = reach(1);
        let high = reach(5);
        assert!(
            low < high,
            "fanout 1 reached {low}, fanout 5 reached {high}"
        );
        assert_eq!(high, 48);
    }

    #[test]
    fn buffer_stays_bounded() {
        let config = LpbcastConfig {
            fanout: 3,
            max_buffer: 16,
            ..LpbcastConfig::default()
        };
        let (mut sim, ids) = cluster(8, SimConfig::with_seed(4), move || {
            Box::new(Lpbcast::new(config))
        });
        for i in 0..200u64 {
            GroupNode::broadcast(&mut sim, ids[(i % 8) as usize], payload(0, i));
            if i % 10 == 0 {
                sim.run_for(Duration::from_millis(2));
            }
        }
        for &id in &ids {
            let len =
                GroupNode::with_proto::<Lpbcast, usize>(&mut sim, id, |l| l.buffer_len()).unwrap();
            assert!(len <= 16, "buffer {len} exceeds bound at {id}");
        }
    }

    #[test]
    fn deduplicates_gossiped_events() {
        let (mut sim, ids) = gossip_cluster(10, 4, 5);
        GroupNode::broadcast(&mut sim, ids[3], b"once".to_vec());
        sim.run_until(SimTime::from_millis(500));
        for &id in &ids {
            assert!(
                GroupNode::delivered(&mut sim, id).len() <= 1,
                "duplicate delivery at {id}"
            );
        }
    }
}

/// Crash–recovery regressions for the volatile protocols' incarnation
/// epochs (`MsgId::epoch`). Each test pins the defect class the simulation
/// harness's oracles surfaced on the seed suite: without epochs, a
/// recovered publisher restarts at `seq = 1` and its new messages collide
/// with pre-crash ids in survivors' duplicate-suppression state.
mod crash_recovery {
    use super::*;

    #[test]
    fn reliable_republish_after_crash_is_not_swallowed_as_duplicate() {
        let (mut sim, ids) = cluster(3, SimConfig::with_seed(21), || Box::new(Reliable::new()));
        GroupNode::broadcast(&mut sim, ids[0], b"first-life".to_vec());
        sim.run_to_quiescence();
        for &id in &ids[1..] {
            assert_eq!(GroupNode::delivered(&mut sim, id).len(), 1);
        }
        // n0 crashes, loses its counters, and publishes again from seq 1.
        sim.crash(ids[0]);
        sim.run_for(Duration::from_millis(10));
        sim.recover(ids[0]);
        GroupNode::set_members(&mut sim, ids[0], ids.clone());
        GroupNode::broadcast(&mut sim, ids[0], b"second-life".to_vec());
        sim.run_to_quiescence();
        for &id in &ids[1..] {
            assert_eq!(
                GroupNode::delivered_payloads(&mut sim, id),
                vec![b"first-life".to_vec(), b"second-life".to_vec()],
                "node {id}: the new incarnation's seq-1 message must not be \
                 deduplicated against the old incarnation's"
            );
        }
    }

    #[test]
    fn fifo_receivers_follow_the_publishers_new_incarnation() {
        let (mut sim, ids) = cluster(3, SimConfig::with_seed(23), || Box::new(Fifo::new()));
        for i in 0..3u64 {
            GroupNode::broadcast(&mut sim, ids[0], payload(0, i));
        }
        sim.run_to_quiescence();
        sim.crash(ids[0]);
        sim.run_for(Duration::from_millis(10));
        sim.recover(ids[0]);
        GroupNode::set_members(&mut sim, ids[0], ids.clone());
        for i in 10..13u64 {
            GroupNode::broadcast(&mut sim, ids[0], payload(0, i));
        }
        sim.run_to_quiescence();
        for &id in &ids[1..] {
            let got = GroupNode::delivered_payloads(&mut sim, id);
            let expected: Vec<Vec<u8>> = (0..3)
                .chain(10..13)
                .map(|i| payload(0, i))
                .collect();
            assert_eq!(
                got, expected,
                "node {id}: both incarnations' streams, each in FIFO order"
            );
        }
    }

    #[test]
    fn causal_receivers_sever_dependencies_on_a_dead_incarnation() {
        let (mut sim, ids) = cluster(3, SimConfig::with_seed(29), || Box::new(Causal::new()));
        GroupNode::broadcast(&mut sim, ids[0], b"old".to_vec());
        sim.run_to_quiescence();
        // n0's second incarnation restarts its clock; survivors must
        // deliver its fresh messages instead of waiting forever for a
        // (never-coming) continuation of the old incarnation's counter.
        sim.crash(ids[0]);
        sim.run_for(Duration::from_millis(10));
        sim.recover(ids[0]);
        GroupNode::set_members(&mut sim, ids[0], ids.clone());
        GroupNode::broadcast(&mut sim, ids[0], b"new".to_vec());
        sim.run_to_quiescence();
        for &id in &ids[1..] {
            assert_eq!(
                GroupNode::delivered_payloads(&mut sim, id),
                vec![b"old".to_vec(), b"new".to_vec()],
                "node {id}"
            );
            let pending =
                GroupNode::with_proto::<Causal, usize>(&mut sim, id, |c| c.pending_len()).unwrap();
            assert_eq!(pending, 0, "node {id} must not hold back the new incarnation");
        }
    }

    #[test]
    fn total_recovered_receiver_adopts_horizon_without_redelivery() {
        let (mut sim, ids) = cluster(3, SimConfig::with_seed(31), || Box::new(Total::new()));
        for i in 0..4u64 {
            GroupNode::broadcast(&mut sim, ids[1], payload(1, i));
        }
        sim.run_to_quiescence();
        assert_eq!(GroupNode::delivered(&mut sim, ids[2]).len(), 4);
        // n2 crashes and rejoins mid-stream: it must resume at the stream
        // horizon (not NACK-replay history its previous life consumed) and
        // deliver only what comes after.
        sim.crash(ids[2]);
        sim.run_for(Duration::from_millis(10));
        sim.recover(ids[2]);
        GroupNode::set_members(&mut sim, ids[2], ids.clone());
        for i in 10..12u64 {
            GroupNode::broadcast(&mut sim, ids[1], payload(1, i));
        }
        sim.run_to_quiescence();
        let got = GroupNode::delivered_payloads(&mut sim, ids[2]);
        assert_eq!(
            got,
            vec![payload(1, 10), payload(1, 11)],
            "the rejoined receiver must deliver exactly the post-recovery tail"
        );
        // The steady node agrees on the shared suffix.
        let steady = GroupNode::delivered_payloads(&mut sim, ids[0]);
        assert_eq!(&steady[4..], &got[..], "total order preserved on the suffix");
    }

    #[test]
    fn total_restarted_sequencer_renumbers_without_duplicates() {
        let (mut sim, ids) = cluster(3, SimConfig::with_seed(37), || Box::new(Total::new()));
        // ids[0] is the sequencer (lowest id). Let a first batch sequence,
        // then restart it: the new incarnation renumbers from gseq 1 and
        // receivers must switch streams without re-delivering re-ordered
        // submissions.
        for i in 0..3u64 {
            GroupNode::broadcast(&mut sim, ids[1], payload(1, i));
        }
        sim.run_to_quiescence();
        sim.crash(ids[0]);
        sim.run_for(Duration::from_millis(10));
        sim.recover(ids[0]);
        GroupNode::set_members(&mut sim, ids[0], ids.clone());
        for i in 10..13u64 {
            GroupNode::broadcast(&mut sim, ids[2], payload(2, i));
        }
        sim.run_until(SimTime::from_secs(3));
        // Total order promises agreement, not publisher order (submissions
        // race to the sequencer with independent latencies): both survivors
        // must have identical logs — the old stream's batch, then the new
        // stream's, each exactly once.
        let reference = GroupNode::delivered_payloads(&mut sim, ids[1]);
        assert_eq!(
            GroupNode::delivered_payloads(&mut sim, ids[2]),
            reference,
            "survivors diverged across the sequencer restart"
        );
        let (old_batch, new_batch) = reference.split_at(3);
        let mut old_sorted = old_batch.to_vec();
        old_sorted.sort();
        let mut new_sorted = new_batch.to_vec();
        new_sorted.sort();
        assert_eq!(old_sorted, (0..3).map(|i| payload(1, i)).collect::<Vec<_>>());
        assert_eq!(new_sorted, (10..13).map(|i| payload(2, i)).collect::<Vec<_>>());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Agreement: under arbitrary loss below the redundancy threshold, all
    /// reliable-broadcast nodes deliver the same multiset.
    #[test]
    fn prop_reliable_agreement(seed in 0u64..200, msgs in 1usize..6) {
        let (mut sim, ids) = cluster(5, SimConfig { seed, drop_probability: 0.2, ..SimConfig::default() }, || Box::new(Reliable::new()));
        for i in 0..msgs {
            GroupNode::broadcast(&mut sim, ids[i % 5], payload(0, i as u64));
        }
        sim.run_to_quiescence();
        let mut reference: Vec<Vec<u8>> = GroupNode::delivered_payloads(&mut sim, ids[0]);
        reference.sort();
        for &id in &ids[1..] {
            let mut got = GroupNode::delivered_payloads(&mut sim, id);
            got.sort();
            prop_assert_eq!(&got, &reference);
        }
    }

    /// Total order: arbitrary concurrent publishers, identical delivery
    /// sequences everywhere.
    #[test]
    fn prop_total_order_agreement(seed in 0u64..200, msgs in 1usize..8) {
        let (mut sim, ids) = cluster(4, SimConfig::with_seed(seed), || Box::new(Total::new()));
        for i in 0..msgs {
            GroupNode::broadcast(&mut sim, ids[i % 4], payload(1, i as u64));
        }
        sim.run_until(SimTime::from_secs(2));
        let reference = GroupNode::delivered(&mut sim, ids[0]);
        prop_assert_eq!(reference.len(), msgs);
        for &id in &ids[1..] {
            prop_assert_eq!(GroupNode::delivered(&mut sim, id), reference.clone());
        }
    }
}
