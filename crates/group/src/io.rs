//! The sans-io protocol interface.

use rand::RngCore;

use psc_codec::WireBytes;
use psc_simnet::{Duration, NodeId, ScopedStorage, SimTime};

/// Protocol-chosen timer token, echoed back on expiry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TimerToken(pub u64);

/// Capabilities a multicast protocol instance uses to act on the world.
///
/// Hosts (the simulator adapter, the DACE engine, unit-test harnesses)
/// implement this; protocols never touch sockets, clocks or disks directly,
/// which keeps them deterministic and unit-testable step by step.
pub trait GroupIo {
    /// This process's id.
    fn self_id(&self) -> NodeId;

    /// Current members of the group (destination set). Membership is
    /// host-managed; protocols treat it as read-only per callback.
    fn members(&self) -> &[NodeId];

    /// Current (virtual) time.
    fn now(&self) -> SimTime;

    /// Sends protocol bytes to one member. The buffer is `Arc`-shared:
    /// fanning the same encoded message out to N members means one encode
    /// and N handle clones, never N copies.
    fn send(&mut self, to: NodeId, bytes: WireBytes);

    /// Hands a payload up to the application, attributed to its original
    /// broadcaster.
    fn deliver(&mut self, origin: NodeId, payload: WireBytes);

    /// Arms a timer; `token` comes back via [`Multicast::on_timer`].
    fn set_timer(&mut self, after: Duration, token: TimerToken);

    /// This process's stable storage (survives crashes), scoped by the
    /// host so several protocol instances share one disk.
    fn storage(&mut self) -> ScopedStorage<'_>;

    /// Deterministic randomness.
    fn rng(&mut self) -> &mut dyn RngCore;

    /// Records a protocol metric (`name` is the suffix under the host's
    /// `group.` namespace, e.g. `reliable.retransmits`). Default no-op so
    /// hosts without telemetry — unit-test harnesses, minimal adapters —
    /// need not care.
    fn metric(&mut self, name: &'static str, delta: u64) {
        let _ = (name, delta);
    }
}

/// A broadcast protocol instance for one group (one multicast class).
///
/// All methods are synchronous state transitions; effects go through the
/// [`GroupIo`].
pub trait Multicast: Send {
    /// Broadcasts an application payload to the group.
    fn broadcast(&mut self, io: &mut dyn GroupIo, payload: WireBytes);

    /// Handles a protocol message from a peer.
    fn on_message(&mut self, io: &mut dyn GroupIo, from: NodeId, bytes: &[u8]);

    /// Handles an armed timer's expiry.
    fn on_timer(&mut self, _io: &mut dyn GroupIo, _token: TimerToken) {}

    /// Called on a fresh instance after a crash–recover cycle; persistent
    /// protocols rebuild from [`GroupIo::storage`].
    fn on_recover(&mut self, _io: &mut dyn GroupIo) {}

    /// Called once when the host starts (protocols with periodic timers arm
    /// them here).
    fn on_start(&mut self, _io: &mut dyn GroupIo) {}

    /// Stable short name used in health metrics and state reports
    /// (`"fifo"`, `"total"`, …).
    fn proto_name(&self) -> &'static str {
        "multicast"
    }

    /// Captures the protocol's instantaneous state for a global snapshot
    /// (Chandy–Lamport style): sequence counters, delivery watermarks,
    /// retransmission sets, pending queues. The capture must be a pure
    /// read of protocol state — no sends, no delivers, no timer changes —
    /// so that taking a snapshot never perturbs the run. The default
    /// returns an empty capture tagged with the protocol name, for
    /// protocols with no snapshot-relevant state.
    fn capture(&mut self, io: &mut dyn GroupIo) -> psc_snapshot::ProtoCapture {
        let _ = io;
        psc_snapshot::ProtoCapture::new(self.proto_name())
    }

    /// Named depths of the protocol's internal queues, `(name, depth)`
    /// pairs in a stable order. Names are prefixed with the protocol
    /// (`fifo.holdback`, `reliable.unacked`); the stall watchdog turns
    /// them into `health.queue.<name>` gauges and stall detection, and the
    /// introspection plane prints them. Default: no queues.
    fn queue_depths(&self) -> Vec<(&'static str, u64)> {
        Vec::new()
    }

    /// Downcast support for host-side inspection; implement as
    /// `fn as_any_mut(&mut self) -> &mut dyn Any { self }`.
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any;
}

/// Encodes a protocol message into a shared, pooled buffer, panicking on
/// failure.
///
/// Protocol message types are plain serde structs; encoding them cannot fail
/// with the standard derives, so hosts treat failure as a bug. The returned
/// [`WireBytes`] is cloned per destination — the serialize-once half of the
/// fan-out discipline.
pub(crate) fn encode_msg<T: serde::Serialize>(msg: &T) -> WireBytes {
    psc_codec::to_wire_bytes(msg).expect("protocol message encoding cannot fail")
}

/// Decodes a protocol message, returning `None` (and thereby dropping the
/// message) on corruption — a malformed packet must not take the protocol
/// down.
pub(crate) fn decode_msg<T: serde::de::DeserializeOwned>(bytes: &[u8]) -> Option<T> {
    psc_codec::from_bytes(bytes).ok()
}
