//! Adapter running any [`Multicast`] protocol as a `psc-simnet` node.
//!
//! [`GroupNode`] bridges the sans-io protocol interface onto the simulator:
//! sends become network messages, deliveries accumulate in an inspectable
//! log, timers map between simulator ids and protocol tokens. Static helper
//! methods drive nodes from test/experiment code via the simulator's action
//! mechanism.

use std::any::Any;
use std::collections::HashMap;
use std::sync::Arc;

use psc_codec::WireBytes;
use psc_simnet::{Ctx, Duration, Node, NodeId, ScopedStorage, SimNet, SimTime, TimerId};
use psc_telemetry::{FlightRecorder, HealthMonitor, Inspect, Registry, ReportBuilder};

use crate::io::{GroupIo, Multicast, TimerToken};

/// Stall-watchdog wiring for a [`GroupNode`]: a sweep interval plus the
/// (externally owned, crash-surviving) monitor the sweeps feed.
#[derive(Clone)]
pub struct Watchdog {
    /// The per-node health state machine.
    pub monitor: Arc<HealthMonitor>,
    /// Virtual-time sweep period.
    pub interval: Duration,
}

/// A simulated node hosting one multicast protocol instance.
pub struct GroupNode {
    proto: Box<dyn Multicast>,
    members: Vec<NodeId>,
    delivered: Vec<(NodeId, WireBytes, SimTime)>,
    timer_tokens: HashMap<TimerId, TimerToken>,
    /// Per-node registry; protocol metrics land here under `group.*`. With
    /// [`GroupNode::boxed_with_telemetry`] this is an external registry that
    /// survives crash rebuilds (like an external monitoring system would).
    telemetry: Arc<Registry>,
    /// Per-node flight recorder (deliveries and metric movements), external
    /// like the registry so post-mortems survive crash rebuilds.
    recorder: Option<Arc<FlightRecorder>>,
    /// Stall watchdog; [`None`] leaves the simulator schedule untouched.
    watchdog: Option<Watchdog>,
    /// The armed watchdog sweep timer, kept apart from protocol timers.
    watchdog_timer: Option<TimerId>,
}

struct HostIo<'a, 'b> {
    ctx: &'a mut Ctx<'b>,
    members: &'a [NodeId],
    delivered: &'a mut Vec<(NodeId, WireBytes, SimTime)>,
    new_timers: &'a mut Vec<(psc_simnet::Duration, TimerToken)>,
    telemetry: &'a Registry,
    recorder: Option<&'a FlightRecorder>,
}

impl GroupIo for HostIo<'_, '_> {
    fn self_id(&self) -> NodeId {
        self.ctx.id()
    }

    fn members(&self) -> &[NodeId] {
        self.members
    }

    fn now(&self) -> psc_simnet::SimTime {
        self.ctx.now()
    }

    fn send(&mut self, to: NodeId, bytes: WireBytes) {
        self.ctx.send(to, bytes);
    }

    fn deliver(&mut self, origin: NodeId, payload: WireBytes) {
        self.telemetry.bump("group.delivered", 1);
        let now = self.ctx.now();
        if let Some(recorder) = self.recorder {
            recorder.record(
                now.as_micros(),
                "deliver",
                format!("origin=n{} bytes={}", origin.0, payload.len()),
            );
        }
        self.delivered.push((origin, payload, now));
    }

    fn set_timer(&mut self, after: psc_simnet::Duration, token: TimerToken) {
        // Timer ids are only known once Ctx::set_timer runs; collect and map
        // afterwards (Ctx is borrowed by this io meanwhile).
        self.new_timers.push((after, token));
    }

    fn storage(&mut self) -> ScopedStorage<'_> {
        self.ctx.storage().scoped("")
    }

    fn rng(&mut self) -> &mut dyn rand::RngCore {
        self.ctx.rng()
    }

    fn metric(&mut self, name: &'static str, delta: u64) {
        // Check before formatting so disabled telemetry costs one load.
        if self.telemetry.is_enabled() {
            self.telemetry.bump(&format!("group.{name}"), delta);
        }
        if let Some(recorder) = self.recorder {
            recorder.record_metric(self.ctx.now().as_micros(), name, delta);
        }
    }
}

impl GroupNode {
    /// Wraps a protocol instance as a boxed simulator node (telemetry goes
    /// to a private, disabled registry — i.e. nowhere).
    pub fn boxed(proto: impl Multicast + 'static) -> Box<dyn Node> {
        GroupNode::boxed_with_telemetry(proto, Arc::new(Registry::disabled()))
    }

    /// Wraps a protocol instance, recording `group.*` metrics into
    /// `telemetry`. Pass an externally owned registry so counters accumulate
    /// across crash–recover rebuilds of the node (the simulator rebuilds
    /// nodes from their factories; the registry plays the role of the
    /// monitoring system that outlives the monitored process).
    pub fn boxed_with_telemetry(
        proto: impl Multicast + 'static,
        telemetry: Arc<Registry>,
    ) -> Box<dyn Node> {
        GroupNode::boxed_observable(proto, telemetry, None, None)
    }

    /// Full observability wiring: metrics registry, optional per-node
    /// flight recorder, optional stall watchdog. All three are externally
    /// owned so they survive crash–recover rebuilds of the node.
    pub fn boxed_observable(
        proto: impl Multicast + 'static,
        telemetry: Arc<Registry>,
        recorder: Option<Arc<FlightRecorder>>,
        watchdog: Option<Watchdog>,
    ) -> Box<dyn Node> {
        Box::new(GroupNode {
            proto: Box::new(proto),
            members: Vec::new(),
            delivered: Vec::new(),
            timer_tokens: HashMap::new(),
            telemetry,
            recorder,
            watchdog,
            watchdog_timer: None,
        })
    }

    fn with_io(
        &mut self,
        ctx: &mut Ctx<'_>,
        f: impl FnOnce(&mut dyn Multicast, &mut dyn GroupIo),
    ) {
        let mut new_timers = Vec::new();
        {
            let mut io = HostIo {
                ctx,
                members: &self.members,
                delivered: &mut self.delivered,
                new_timers: &mut new_timers,
                telemetry: &self.telemetry,
                recorder: self.recorder.as_deref(),
            };
            f(self.proto.as_mut(), &mut io);
        }
        for (after, token) in new_timers {
            let id = ctx.set_timer(after);
            self.timer_tokens.insert(id, token);
        }
    }

    /// Arms (or re-arms) the watchdog sweep timer, if configured.
    fn arm_watchdog(&mut self, ctx: &mut Ctx<'_>) {
        if let Some(watchdog) = &self.watchdog {
            self.watchdog_timer = Some(ctx.set_timer(watchdog.interval));
        }
    }

    /// One watchdog sweep: feed every protocol queue depth and the current
    /// counter snapshot into the health monitor.
    fn watchdog_sweep(&mut self, now: SimTime) {
        let Some(watchdog) = &self.watchdog else { return };
        let depths: Vec<(String, u64)> = self
            .proto
            .queue_depths()
            .into_iter()
            .map(|(name, depth)| (name.to_string(), depth))
            .collect();
        watchdog
            .monitor
            .sweep(now.as_micros(), &depths, &self.telemetry.snapshot());
    }

    // ---- static driver helpers (used by tests and experiments) ----

    /// Sets the group membership of `node` (takes effect immediately).
    pub fn set_members(sim: &mut SimNet, node: NodeId, members: Vec<NodeId>) {
        sim.act_now(node, move |n, _ctx| {
            let this = n
                .as_any_mut()
                .downcast_mut::<GroupNode>()
                .expect("node is a GroupNode");
            this.members = members;
        });
    }

    /// Broadcasts `payload` from `node` at the current virtual time.
    pub fn broadcast(sim: &mut SimNet, node: NodeId, payload: impl Into<WireBytes> + Send + 'static) {
        sim.act_now(node, move |n, ctx| {
            let this = n
                .as_any_mut()
                .downcast_mut::<GroupNode>()
                .expect("node is a GroupNode");
            this.with_io(ctx, |proto, io| proto.broadcast(io, payload.into()));
        });
    }

    /// Snapshot of everything `node` has delivered: `(origin, payload)` in
    /// delivery order. Empty if the node is down.
    pub fn delivered(sim: &mut SimNet, node: NodeId) -> Vec<(NodeId, Vec<u8>)> {
        match sim.node_mut::<GroupNode>(node) {
            Some(this) => this
                .delivered
                .iter()
                .map(|(origin, payload, _at)| (*origin, payload.to_vec()))
                .collect(),
            None => Vec::new(),
        }
    }

    /// Like [`GroupNode::delivered`] but with each delivery's virtual
    /// timestamp — the raw material for end-to-end latency measurement.
    pub fn delivered_timed(sim: &mut SimNet, node: NodeId) -> Vec<(NodeId, Vec<u8>, SimTime)> {
        match sim.node_mut::<GroupNode>(node) {
            Some(this) => this
                .delivered
                .iter()
                .map(|(origin, payload, at)| (*origin, payload.to_vec(), *at))
                .collect(),
            None => Vec::new(),
        }
    }

    /// Renders `node`'s deterministic state report ([`Inspect`]); `None`
    /// when the node is down.
    pub fn inspect_node(sim: &mut SimNet, node: NodeId) -> Option<String> {
        sim.node_mut::<GroupNode>(node).map(|this| this.inspect())
    }

    /// Just the payloads, in delivery order.
    pub fn delivered_payloads(sim: &mut SimNet, node: NodeId) -> Vec<Vec<u8>> {
        GroupNode::delivered(sim, node)
            .into_iter()
            .map(|(_, p)| p)
            .collect()
    }

    /// Inspects the concrete protocol instance behind `node` (e.g. to read
    /// diagnostics counters). `None` when the node is down or `P` is not
    /// its protocol type.
    pub fn with_proto<P: Multicast + 'static, R>(
        sim: &mut SimNet,
        node: NodeId,
        f: impl FnOnce(&mut P) -> R,
    ) -> Option<R> {
        let this = sim.node_mut::<GroupNode>(node)?;
        this.proto.as_any_mut().downcast_mut::<P>().map(f)
    }
}

impl Node for GroupNode {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        self.with_io(ctx, |proto, io| proto.on_start(io));
        self.arm_watchdog(ctx);
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_>, from: NodeId, payload: &[u8]) {
        self.with_io(ctx, |proto, io| proto.on_message(io, from, payload));
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, timer: TimerId) {
        if self.watchdog_timer == Some(timer) {
            self.watchdog_sweep(ctx.now());
            self.arm_watchdog(ctx);
            return;
        }
        if let Some(token) = self.timer_tokens.remove(&timer) {
            self.with_io(ctx, |proto, io| proto.on_timer(io, token));
        }
    }

    fn on_recover(&mut self, ctx: &mut Ctx<'_>) {
        self.with_io(ctx, |proto, io| proto.on_recover(io));
        self.arm_watchdog(ctx);
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

impl Inspect for GroupNode {
    fn inspect(&self) -> String {
        let mut report = ReportBuilder::new();
        report.section(format!("group-host proto={}", self.proto.proto_name()));
        report.line(format!(
            "members={}",
            self.members
                .iter()
                .map(|m| format!("n{}", m.0))
                .collect::<Vec<_>>()
                .join(",")
        ));
        report.line(format!("delivered={}", self.delivered.len()));
        let depths = self.proto.queue_depths();
        if depths.is_empty() {
            report.line("queues=none");
        } else {
            report.section("queues");
            for (name, depth) in depths {
                report.line(format!("{name}={depth}"));
            }
            report.end();
        }
        report.end();
        report.finish()
    }
}
