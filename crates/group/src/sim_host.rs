//! Adapter running any [`Multicast`] protocol as a `psc-simnet` node.
//!
//! [`GroupNode`] bridges the sans-io protocol interface onto the simulator:
//! sends become network messages, deliveries accumulate in an inspectable
//! log, timers map between simulator ids and protocol tokens. Static helper
//! methods drive nodes from test/experiment code via the simulator's action
//! mechanism.

use std::any::Any;
use std::collections::HashMap;
use std::sync::Arc;

use psc_codec::WireBytes;
use psc_simnet::{Ctx, Node, NodeId, ScopedStorage, SimNet, TimerId};
use psc_telemetry::Registry;

use crate::io::{GroupIo, Multicast, TimerToken};

/// A simulated node hosting one multicast protocol instance.
pub struct GroupNode {
    proto: Box<dyn Multicast>,
    members: Vec<NodeId>,
    delivered: Vec<(NodeId, WireBytes)>,
    timer_tokens: HashMap<TimerId, TimerToken>,
    /// Per-node registry; protocol metrics land here under `group.*`. With
    /// [`GroupNode::boxed_with_telemetry`] this is an external registry that
    /// survives crash rebuilds (like an external monitoring system would).
    telemetry: Arc<Registry>,
}

struct HostIo<'a, 'b> {
    ctx: &'a mut Ctx<'b>,
    members: &'a [NodeId],
    delivered: &'a mut Vec<(NodeId, WireBytes)>,
    new_timers: &'a mut Vec<(psc_simnet::Duration, TimerToken)>,
    telemetry: &'a Registry,
}

impl GroupIo for HostIo<'_, '_> {
    fn self_id(&self) -> NodeId {
        self.ctx.id()
    }

    fn members(&self) -> &[NodeId] {
        self.members
    }

    fn now(&self) -> psc_simnet::SimTime {
        self.ctx.now()
    }

    fn send(&mut self, to: NodeId, bytes: WireBytes) {
        self.ctx.send(to, bytes);
    }

    fn deliver(&mut self, origin: NodeId, payload: WireBytes) {
        self.telemetry.bump("group.delivered", 1);
        self.delivered.push((origin, payload));
    }

    fn set_timer(&mut self, after: psc_simnet::Duration, token: TimerToken) {
        // Timer ids are only known once Ctx::set_timer runs; collect and map
        // afterwards (Ctx is borrowed by this io meanwhile).
        self.new_timers.push((after, token));
    }

    fn storage(&mut self) -> ScopedStorage<'_> {
        self.ctx.storage().scoped("")
    }

    fn rng(&mut self) -> &mut dyn rand::RngCore {
        self.ctx.rng()
    }

    fn metric(&mut self, name: &'static str, delta: u64) {
        // Check before formatting so disabled telemetry costs one load.
        if self.telemetry.is_enabled() {
            self.telemetry.bump(&format!("group.{name}"), delta);
        }
    }
}

impl GroupNode {
    /// Wraps a protocol instance as a boxed simulator node (telemetry goes
    /// to a private, disabled registry — i.e. nowhere).
    pub fn boxed(proto: impl Multicast + 'static) -> Box<dyn Node> {
        GroupNode::boxed_with_telemetry(proto, Arc::new(Registry::disabled()))
    }

    /// Wraps a protocol instance, recording `group.*` metrics into
    /// `telemetry`. Pass an externally owned registry so counters accumulate
    /// across crash–recover rebuilds of the node (the simulator rebuilds
    /// nodes from their factories; the registry plays the role of the
    /// monitoring system that outlives the monitored process).
    pub fn boxed_with_telemetry(
        proto: impl Multicast + 'static,
        telemetry: Arc<Registry>,
    ) -> Box<dyn Node> {
        Box::new(GroupNode {
            proto: Box::new(proto),
            members: Vec::new(),
            delivered: Vec::new(),
            timer_tokens: HashMap::new(),
            telemetry,
        })
    }

    fn with_io(
        &mut self,
        ctx: &mut Ctx<'_>,
        f: impl FnOnce(&mut dyn Multicast, &mut dyn GroupIo),
    ) {
        let mut new_timers = Vec::new();
        {
            let mut io = HostIo {
                ctx,
                members: &self.members,
                delivered: &mut self.delivered,
                new_timers: &mut new_timers,
                telemetry: &self.telemetry,
            };
            f(self.proto.as_mut(), &mut io);
        }
        for (after, token) in new_timers {
            let id = ctx.set_timer(after);
            self.timer_tokens.insert(id, token);
        }
    }

    // ---- static driver helpers (used by tests and experiments) ----

    /// Sets the group membership of `node` (takes effect immediately).
    pub fn set_members(sim: &mut SimNet, node: NodeId, members: Vec<NodeId>) {
        sim.act_now(node, move |n, _ctx| {
            let this = n
                .as_any_mut()
                .downcast_mut::<GroupNode>()
                .expect("node is a GroupNode");
            this.members = members;
        });
    }

    /// Broadcasts `payload` from `node` at the current virtual time.
    pub fn broadcast(sim: &mut SimNet, node: NodeId, payload: impl Into<WireBytes> + Send + 'static) {
        sim.act_now(node, move |n, ctx| {
            let this = n
                .as_any_mut()
                .downcast_mut::<GroupNode>()
                .expect("node is a GroupNode");
            this.with_io(ctx, |proto, io| proto.broadcast(io, payload.into()));
        });
    }

    /// Snapshot of everything `node` has delivered: `(origin, payload)` in
    /// delivery order. Empty if the node is down.
    pub fn delivered(sim: &mut SimNet, node: NodeId) -> Vec<(NodeId, Vec<u8>)> {
        match sim.node_mut::<GroupNode>(node) {
            Some(this) => this
                .delivered
                .iter()
                .map(|(origin, payload)| (*origin, payload.to_vec()))
                .collect(),
            None => Vec::new(),
        }
    }

    /// Just the payloads, in delivery order.
    pub fn delivered_payloads(sim: &mut SimNet, node: NodeId) -> Vec<Vec<u8>> {
        GroupNode::delivered(sim, node)
            .into_iter()
            .map(|(_, p)| p)
            .collect()
    }

    /// Inspects the concrete protocol instance behind `node` (e.g. to read
    /// diagnostics counters). `None` when the node is down or `P` is not
    /// its protocol type.
    pub fn with_proto<P: Multicast + 'static, R>(
        sim: &mut SimNet,
        node: NodeId,
        f: impl FnOnce(&mut P) -> R,
    ) -> Option<R> {
        let this = sim.node_mut::<GroupNode>(node)?;
        this.proto.as_any_mut().downcast_mut::<P>().map(f)
    }
}

impl Node for GroupNode {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        self.with_io(ctx, |proto, io| proto.on_start(io));
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_>, from: NodeId, payload: &[u8]) {
        self.with_io(ctx, |proto, io| proto.on_message(io, from, payload));
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, timer: TimerId) {
        if let Some(token) = self.timer_tokens.remove(&timer) {
            self.with_io(ctx, |proto, io| proto.on_timer(io, token));
        }
    }

    fn on_recover(&mut self, ctx: &mut Ctx<'_>) {
        self.with_io(ctx, |proto, io| proto.on_recover(io));
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}
