#![warn(missing_docs)]

//! # psc-group — the group-communication substrate
//!
//! The paper's DACE architecture maps every obvent class to a *multicast
//! class* "implemented with different multicast protocols with guarantees
//! ranging from strong guarantees (exploiting a broad variety of primitives
//! from group communication [BJ87] …) to primitives with weaker guarantees
//! but strong focus on scalability (… gossip-based protocols, e.g.
//! [EGH+01])" (§4.2). This crate implements that protocol menu from scratch
//! as **sans-io state machines**: every protocol is a plain struct whose
//! callbacks receive a [`GroupIo`] capability and emit sends, deliveries,
//! timers and stable-storage writes — so the same code runs under the
//! deterministic simulator, in step-by-step unit tests, and inside the DACE
//! dissemination layer.
//!
//! | protocol | paper semantics (§3.1.2) | mechanism |
//! |---|---|---|
//! | [`BestEffort`] | *Unreliable* (the default) | one send per member |
//! | [`Reliable`] | *Reliable* | eager re-forwarding + duplicate suppression |
//! | [`Fifo`] | *FIFO ordered* | per-origin sequence numbers + hold-back |
//! | [`Causal`] | *Causally ordered* | vector clocks + hold-back |
//! | [`Total`] | *Totally ordered* | fixed sequencer, gap repair by NACK |
//! | [`Certified`] | *Certified* | persistent publisher log, per-member acks, retransmission across subscriber crashes |
//! | [`Lpbcast`] | scalable best-effort (gossip) | periodic push gossip with bounded event buffer |
//!
//! [`sim_host`] adapts any protocol into a `psc-simnet` node for
//! experiments; `psc-dace` embeds the same state machines per multicast
//! class.
//!
//! ```
//! use psc_group::{sim_host::GroupNode, BestEffort};
//! use psc_simnet::{SimConfig, SimNet};
//!
//! let mut sim = SimNet::new(SimConfig::default());
//! let ids: Vec<_> = (0..3)
//!     .map(|i| sim.add_node(format!("n{i}"), || GroupNode::boxed(BestEffort::new())))
//!     .collect();
//! for &id in &ids {
//!     GroupNode::set_members(&mut sim, id, ids.clone());
//! }
//! GroupNode::broadcast(&mut sim, ids[0], b"tick".to_vec());
//! sim.run_to_quiescence();
//! assert_eq!(GroupNode::delivered(&mut sim, ids[1]).len(), 1);
//! ```

mod besteffort;
mod causal;
mod certified;
mod fifo;
mod io;
mod lpbcast;
mod reliable;
pub mod sim_host;
mod total;
pub mod vclock;

pub use besteffort::BestEffort;
pub use causal::Causal;
pub use certified::Certified;
pub use fifo::Fifo;
pub use io::{GroupIo, Multicast, TimerToken};
pub use lpbcast::{Lpbcast, LpbcastConfig};
pub use reliable::Reliable;
pub use sim_host::{GroupNode, Watchdog};
pub use total::Total;

/// Best-effort decode of a protocol frame's message identity, for the
/// snapshot plane's in-flight recorder: given the protocol a channel runs
/// and raw protocol bytes, returns `(origin, epoch, seq)` when the frame
/// carries an application payload. Control traffic (acks, NACKs,
/// heartbeats, gossip digests) and undecodable bytes return `None` and are
/// counted, not identified.
pub fn peek_data_id(proto: &str, bytes: &[u8]) -> Option<(u64, u64, u64)> {
    match proto {
        "certified" => certified::Certified::peek_id(bytes),
        "reliable" => reliable::Reliable::peek_id(bytes),
        "fifo" => fifo::Fifo::peek_id(bytes),
        "causal" => causal::Causal::peek_id(bytes),
        "total" => total::Total::peek_id(bytes),
        _ => None,
    }
    .map(|id| (id.origin.0, id.epoch, id.seq))
}

#[cfg(test)]
mod tests;
