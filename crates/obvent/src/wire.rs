//! Obvents in transit.
//!
//! A [`WireObvent`] is what actually crosses the (simulated) network: the
//! publisher serializes the obvent once, tags it with its dynamic kind, and
//! every subscriber-side decode produces a **fresh clone** — reproducing the
//! paper's global/local uniqueness rules (§2.1.2: distinct copies per
//! notifiable, even within one address space, and new copies on republish).
//!
//! Decoding *as a supertype* works because an obvent subclass embeds its
//! superclass as its first field and `psc-codec` writes struct fields
//! in order with no framing: the superclass image is a prefix of the
//! subclass image (see the `psc-codec` crate docs).

use psc_codec::WireBytes;
use psc_snapshot::CausalStamp;
use psc_telemetry::TraceId;
use serde::{Deserialize, Serialize};

use crate::kind::{KindId, ObventKind};
use crate::obvent::{Obvent, ObventError};
use crate::qos::QosSpec;
use crate::registry;
use crate::view::ObventView;

/// A serialized obvent tagged with its dynamic kind.
///
/// The envelope also carries a [`TraceId`] for the observability subsystem:
/// minted once at the original publisher, it rides every hop (group
/// protocols, DACE relays, broker forwarding) so each node's tracer can
/// attribute its local events to the originating publish. Untraced
/// envelopes carry [`TraceId::NONE`].
///
/// Next to the trace id sits a [`CausalStamp`]: the publisher's snapshot
/// wave id and vector clock at publish time. The stamp propagates the
/// Chandy–Lamport cut colouring along every relay path (a receiver
/// seeing a higher wave captures before processing) and lets the
/// snapshot oracles order the assembled cut causally. Unstamped
/// envelopes carry the default (wave 0, empty clock).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WireObvent {
    kind: KindId,
    payload: WireBytes,
    trace: TraceId,
    stamp: CausalStamp,
}

impl WireObvent {
    /// Serializes an obvent for transit.
    ///
    /// # Errors
    ///
    /// Propagates serialization failures (which the standard derives cannot
    /// produce; custom `Serialize` impls could).
    pub fn encode<O: Obvent>(obvent: &O) -> Result<WireObvent, ObventError> {
        Ok(WireObvent {
            kind: O::kind_id(),
            payload: psc_codec::to_wire_bytes(obvent)?,
            trace: TraceId::NONE,
            stamp: CausalStamp::default(),
        })
    }

    /// Reconstructs a wire obvent from its parts (used when relaying
    /// payloads the current process cannot decode). The envelope starts
    /// untraced; relays that preserve identity use [`WireObvent::set_trace`].
    pub fn from_parts(kind: KindId, payload: impl Into<WireBytes>) -> WireObvent {
        WireObvent {
            kind,
            payload: payload.into(),
            trace: TraceId::NONE,
            stamp: CausalStamp::default(),
        }
    }

    /// The wire-carried trace id ([`TraceId::NONE`] when untraced).
    pub fn trace_id(&self) -> TraceId {
        self.trace
    }

    /// Stamps the envelope with a trace id (done once at the publisher;
    /// relays preserve the stamp by cloning the envelope).
    pub fn set_trace(&mut self, trace: TraceId) {
        self.trace = trace;
    }

    /// Builder-style [`WireObvent::set_trace`].
    pub fn with_trace(mut self, trace: TraceId) -> WireObvent {
        self.trace = trace;
        self
    }

    /// The wire-carried causal stamp (default when unstamped).
    pub fn stamp(&self) -> &CausalStamp {
        &self.stamp
    }

    /// Stamps the envelope with a snapshot wave id and clock (done once at
    /// the publisher; relays preserve the stamp by cloning the envelope).
    pub fn set_stamp(&mut self, stamp: CausalStamp) {
        self.stamp = stamp;
    }

    /// The dynamic kind of the carried obvent.
    pub fn kind_id(&self) -> KindId {
        self.kind
    }

    /// The kind descriptor, if this process has registered it.
    pub fn kind(&self) -> Option<&'static ObventKind> {
        registry::lookup(self.kind)
    }

    /// The serialized payload.
    pub fn payload(&self) -> &[u8] {
        &self.payload
    }

    /// Size on the wire (payload plus kind tag, trace id and causal
    /// stamp), for bandwidth accounting.
    pub fn wire_len(&self) -> usize {
        self.payload.len() + 24 + self.stamp.clock.len() * 16
    }

    /// The resolved QoS of the carried obvent's kind; defaults to
    /// best-effort/unordered when the kind is unknown here.
    pub fn qos(&self) -> QosSpec {
        self.kind()
            .map(|k| k.qos().clone())
            .unwrap_or_default()
    }

    /// Decodes the obvent **as type `K`**, which must be the obvent's
    /// dynamic kind or one of its supertypes. Returns a fresh clone — each
    /// call yields a distinct copy, implementing the paper's per-notifiable
    /// uniqueness.
    ///
    /// # Errors
    ///
    /// - [`ObventError::UnknownKind`] if the dynamic kind is not registered
    ///   in this process;
    /// - [`ObventError::NotASubtype`] if the dynamic kind does not conform
    ///   to `K`;
    /// - [`ObventError::Codec`] if the payload is corrupt.
    pub fn decode_as<K: Obvent>(&self) -> Result<K, ObventError> {
        let actual = registry::lookup(self.kind).ok_or(ObventError::UnknownKind(self.kind))?;
        if !actual.is_subtype_of(K::kind_id()) {
            return Err(ObventError::NotASubtype {
                actual: self.kind,
                expected: K::kind_id(),
            });
        }
        let (value, _consumed) = psc_codec::from_bytes_prefix(&self.payload)?;
        Ok(value)
    }

    /// Decodes the obvent as exactly its dynamic type `K`, consuming the
    /// whole payload.
    ///
    /// # Errors
    ///
    /// [`ObventError::NotASubtype`] if `K` is not the exact dynamic kind;
    /// [`ObventError::Codec`] if the payload is corrupt or has trailing
    /// bytes.
    pub fn decode_exact<K: Obvent>(&self) -> Result<K, ObventError> {
        if self.kind != K::kind_id() {
            return Err(ObventError::NotASubtype {
                actual: self.kind,
                expected: K::kind_id(),
            });
        }
        Ok(psc_codec::from_bytes(&self.payload)?)
    }

    /// Decodes the obvent into its dynamic view via the registered decoder.
    ///
    /// # Errors
    ///
    /// [`ObventError::NoDecoder`] when the concrete class is unknown here;
    /// payload decoding errors otherwise.
    pub fn view(&self) -> Result<ObventView, ObventError> {
        registry::decode_view(self.kind, &self.payload)
    }
}
