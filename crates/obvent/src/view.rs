//! Dynamic, self-describing obvent views.
//!
//! Typed subscriptions target obvent *classes* and hand the handler a fully
//! typed clone. Subscriptions to *interfaces* — including the QoS markers —
//! cannot produce a concrete struct, so they deliver an [`ObventView`]: the
//! obvent's kind plus its property record. This mirrors the paper's
//! "self-describing messages" reading of reflection-style subscriptions
//! (§5.5.1) while keeping routing semantics identical (a subscription to a
//! supertype receives all subtype instances).

use serde::{Deserialize, Serialize};

use psc_filter::{PropPath, PropertySource, Value};

use crate::kind::KindId;
use crate::qos::QosSpec;
use crate::registry;

/// A kind-tagged property record standing in for an obvent whose concrete
/// type is not statically known.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ObventView {
    kind: KindId,
    name: String,
    props: Value,
}

impl ObventView {
    /// Creates a view from a kind and its property record.
    pub fn new(kind: KindId, name: impl Into<String>, props: Value) -> Self {
        ObventView {
            kind,
            name: name.into(),
            props,
        }
    }

    /// The dynamic kind of the viewed obvent.
    pub fn kind_id(&self) -> KindId {
        self.kind
    }

    /// The kind's fully qualified name.
    pub fn kind_name(&self) -> &str {
        &self.name
    }

    /// The property record.
    pub fn props(&self) -> &Value {
        &self.props
    }

    /// True if the viewed obvent's kind is a (registered) subtype of `sup`.
    pub fn is_instance_of(&self, sup: KindId) -> bool {
        registry::is_subtype(self.kind, sup)
    }

    /// The resolved QoS of the viewed obvent's kind, if registered.
    pub fn qos(&self) -> Option<QosSpec> {
        registry::lookup(self.kind).map(|k| k.qos().clone())
    }

    /// Looks up one property by dot-separated path.
    pub fn property_at(&self, path: &str) -> Option<Value> {
        self.props.property(&PropPath::parse(path))
    }

    /// Typed convenience: the property as `f64` if numeric.
    pub fn number_at(&self, path: &str) -> Option<f64> {
        self.property_at(path).and_then(|v| v.as_f64())
    }

    /// Typed convenience: the property as a string.
    pub fn string_at(&self, path: &str) -> Option<String> {
        self.property_at(path).and_then(|v| match v {
            Value::Str(s) => Some(s),
            _ => None,
        })
    }
}

impl PropertySource for ObventView {
    fn property(&self, path: &PropPath) -> Option<Value> {
        self.props.property(path)
    }

    fn visit_properties(&self, visit: &mut dyn FnMut(&[String], &Value)) -> bool {
        // Delegating keeps the routing hot path on the index's O(attrs)
        // probe loop: the view's property record enumerates itself.
        self.props.visit_properties(visit)
    }
}
