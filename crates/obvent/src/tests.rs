use proptest::prelude::*;

use psc_filter::{PropPath, PropertySource, Value};

use crate::builtin::{self, CausalOrder, Certified, FifoOrder, Prioritary, Reliable, Timely, TotalOrder};
use crate::qos::{Delivery, Ordering, QosConflict, QosSpec};
use crate::{
    declare_obvent_interface, declare_obvent_model, KindId, KindRole, Obvent, ObventError,
    WireObvent,
};

// --- the paper's stock-trade hierarchy (Figs. 1 and 2) ---

declare_obvent_model! {
    /// Base class of Fig. 2.
    pub class StockObvent {
        company: String,
        price: f64,
        amount: u32,
    }
}

declare_obvent_model! {
    pub class StockQuote extends StockObvent {}
}

declare_obvent_model! {
    pub class StockRequest extends StockObvent {
        broker: String,
    }
}

declare_obvent_model! {
    pub class SpotPrice extends StockRequest {}
}

declare_obvent_model! {
    pub class MarketPrice extends StockRequest {
        deadline_ms: u64,
    }
}

fn quote(company: &str, price: f64, amount: u32) -> StockQuote {
    StockQuote::new(StockObvent::new(company.into(), price, amount))
}

mod kinds {
    use super::*;

    #[test]
    fn kind_ids_are_stable_name_hashes() {
        assert_eq!(
            StockQuote::kind_id(),
            KindId::from_name(StockQuote::kind().name())
        );
        assert_ne!(StockQuote::kind_id(), StockObvent::kind_id());
    }

    #[test]
    fn fig1_subtype_relations() {
        // Subscribing to StockObvent captures quotes and both request kinds.
        let base = StockObvent::kind_id();
        assert!(StockQuote::kind().is_subtype_of(base));
        assert!(StockRequest::kind().is_subtype_of(base));
        assert!(SpotPrice::kind().is_subtype_of(base));
        assert!(MarketPrice::kind().is_subtype_of(base));
        // ... but not the other way around.
        assert!(!StockObvent::kind().is_subtype_of(StockQuote::kind_id()));
        // Siblings are unrelated.
        assert!(!StockQuote::kind().is_subtype_of(StockRequest::kind_id()));
        assert!(!SpotPrice::kind().is_subtype_of(MarketPrice::kind_id()));
    }

    #[test]
    fn every_class_subtypes_the_root_obvent_interface() {
        for kind in [StockObvent::kind(), SpotPrice::kind(), MarketPrice::kind()] {
            assert!(kind.is_subtype_of(builtin::obvent_kind().id()));
        }
    }

    #[test]
    fn roles_are_tracked() {
        assert_eq!(StockQuote::kind().role(), KindRole::Class);
        assert_eq!(builtin::reliable_kind().role(), KindRole::Interface);
    }

    #[test]
    fn registry_lists_subtypes() {
        // Touch all kinds first (lazy registration).
        let _ = (
            StockQuote::kind(),
            SpotPrice::kind(),
            MarketPrice::kind(),
        );
        let subs = crate::registry::subtypes_of(StockObvent::kind_id());
        let names: Vec<&str> = subs.iter().map(|k| k.name()).collect();
        assert!(names.iter().any(|n| n.ends_with("StockQuote")));
        assert!(names.iter().any(|n| n.ends_with("SpotPrice")));
        assert!(names.iter().any(|n| n.ends_with("MarketPrice")));
    }

    #[test]
    fn registration_is_idempotent() {
        let a = StockQuote::kind();
        let b = StockQuote::kind();
        assert!(std::ptr::eq(a, b));
        assert_eq!(crate::registry::lookup(a.id()), Some(a));
    }
}

mod inheritance {
    use super::*;

    #[test]
    fn inherited_accessors_via_deref() {
        let q = quote("Telco Mobiles", 80.0, 10);
        assert_eq!(q.company(), "Telco Mobiles");
        assert_eq!(*q.price(), 80.0);
        assert_eq!(*q.amount(), 10);
        // Two levels deep.
        let spot = SpotPrice::new(StockRequest::new(
            StockObvent::new("Banco".into(), 42.0, 5),
            "alice".into(),
        ));
        assert_eq!(spot.company(), "Banco");
        assert_eq!(spot.broker(), "alice");
    }

    #[test]
    fn properties_flatten_the_inheritance_chain() {
        let mp = MarketPrice::new(
            StockRequest::new(StockObvent::new("Telco".into(), 99.5, 3), "bob".into()),
            1_000,
        );
        let props = mp.properties();
        assert_eq!(
            props.property(&PropPath::parse("company")),
            Some(Value::from("Telco"))
        );
        assert_eq!(
            props.property(&PropPath::parse("broker")),
            Some(Value::from("bob"))
        );
        assert_eq!(
            props.property(&PropPath::parse("deadline_ms")),
            Some(Value::UInt(1_000))
        );
    }

    #[test]
    fn direct_property_lookup_matches_record_lookup() {
        let mp = MarketPrice::new(
            StockRequest::new(StockObvent::new("Telco".into(), 99.5, 3), "bob".into()),
            1_000,
        );
        for path in ["company", "price", "amount", "broker", "deadline_ms"] {
            let p = PropPath::parse(path);
            assert_eq!(
                PropertySource::property(&mp, &p),
                mp.properties().property(&p),
                "path {path}"
            );
        }
        assert_eq!(PropertySource::property(&mp, &PropPath::parse("nope")), None);
    }

    #[test]
    fn schemas_inherit_accessors() {
        let schema = StockQuote::schema();
        // Own schema derefs to the superclass schema for inherited fields.
        let f = (schema.price().lt(100.0) & schema.company().contains("Telco")).into_filter();
        assert!(f.matches(&quote("Telco", 80.0, 1)));
        assert!(!f.matches(&quote("Banco", 80.0, 1)));
    }
}

mod nested {
    use super::*;

    declare_obvent_model! {
        /// An obvent nesting another unbound object (§2.1.1).
        pub class Enriched {
            quote: StockQuote,
            note: String,
        }
    }

    #[test]
    fn nested_obvents_expose_nested_paths() {
        let e = Enriched::new(quote("Telco", 80.0, 1), "hot".into());
        assert_eq!(
            PropertySource::property(&e, &PropPath::parse("quote.company")),
            Some(Value::from("Telco"))
        );
        assert_eq!(
            PropertySource::property(&e, &PropPath::parse("note")),
            Some(Value::from("hot"))
        );
        let f = psc_filter::rfilter!(quote.price < 100.0 && note == "hot");
        assert!(f.matches(&e));
    }

    #[test]
    fn nested_obvents_roundtrip_on_the_wire() {
        let e = Enriched::new(quote("Telco", 80.0, 1), "hot".into());
        let wire = WireObvent::encode(&e).unwrap();
        let back: Enriched = wire.decode_exact().unwrap();
        assert_eq!(back, e);
    }
}

mod wire {
    use super::*;

    #[test]
    fn decode_as_supertype_yields_fresh_clone() {
        let q = quote("Telco", 80.0, 10);
        let wire = WireObvent::encode(&q).unwrap();
        assert_eq!(wire.kind_id(), StockQuote::kind_id());

        let as_base: StockObvent = wire.decode_as().unwrap();
        assert_eq!(as_base.company(), "Telco");
        let as_self: StockQuote = wire.decode_as().unwrap();
        assert_eq!(as_self, q);

        // Uniqueness: every decode is a distinct value (clone semantics).
        let c1: StockQuote = wire.decode_as().unwrap();
        let c2: StockQuote = wire.decode_as().unwrap();
        assert_eq!(c1, c2);
    }

    #[test]
    fn decode_as_unrelated_type_is_rejected() {
        let q = quote("Telco", 80.0, 10);
        let wire = WireObvent::encode(&q).unwrap();
        let err = wire.decode_as::<StockRequest>().unwrap_err();
        assert!(matches!(err, ObventError::NotASubtype { .. }));
        // decode_exact requires the precise dynamic type.
        assert!(matches!(
            wire.decode_exact::<StockObvent>(),
            Err(ObventError::NotASubtype { .. })
        ));
    }

    #[test]
    fn unknown_kind_is_reported() {
        let wire = WireObvent::from_parts(KindId::from_name("no.such.Kind"), vec![]);
        assert!(matches!(
            wire.decode_as::<StockObvent>(),
            Err(ObventError::UnknownKind(_))
        ));
        assert!(matches!(wire.view(), Err(ObventError::NoDecoder(_))));
    }

    #[test]
    fn corrupt_payload_is_a_codec_error() {
        let q = quote("Telco", 80.0, 10);
        let mut wire = WireObvent::encode(&q).unwrap();
        wire = WireObvent::from_parts(wire.kind_id(), wire.payload()[..2].to_vec());
        assert!(matches!(
            wire.decode_as::<StockQuote>(),
            Err(ObventError::Codec(_))
        ));
    }

    #[test]
    fn views_carry_kind_and_properties() {
        let q = quote("Telco", 80.0, 10);
        let wire = WireObvent::encode(&q).unwrap();
        let view = wire.view().unwrap();
        assert_eq!(view.kind_id(), StockQuote::kind_id());
        assert!(view.is_instance_of(StockObvent::kind_id()));
        assert_eq!(view.number_at("price"), Some(80.0));
        assert_eq!(view.string_at("company"), Some("Telco".into()));
        assert_eq!(view.string_at("missing"), None);
    }

    #[test]
    fn wire_obvent_itself_roundtrips_through_codec() {
        let q = quote("Telco", 80.0, 10);
        let wire = WireObvent::encode(&q).unwrap();
        let bytes = psc_codec::to_bytes(&wire).unwrap();
        let back: WireObvent = psc_codec::from_bytes(&bytes).unwrap();
        assert_eq!(back, wire);
        let decoded: StockQuote = back.decode_as().unwrap();
        assert_eq!(decoded, q);
    }
}

mod qos_lattice {
    use super::*;

    declare_obvent_model! {
        pub class PlainEvent { n: u32 }
    }
    declare_obvent_model! {
        pub class ReliableEvent implements [Reliable] { n: u32 }
    }
    declare_obvent_model! {
        pub class CertifiedEvent implements [Certified] { n: u32 }
    }
    declare_obvent_model! {
        pub class FifoEvent implements [FifoOrder] { n: u32 }
    }
    declare_obvent_model! {
        pub class CausalEvent implements [CausalOrder] { n: u32 }
    }
    declare_obvent_model! {
        pub class TotalEvent implements [TotalOrder] { n: u32 }
    }
    declare_obvent_model! {
        /// Paper: "obvents can be certified and totally ordered at the same
        /// time".
        pub class CertifiedTotalEvent implements [Certified, TotalOrder] { n: u32 }
    }
    declare_obvent_model! {
        pub class TimelyEvent implements [Timely] {
            n: u32,
            ttl_ms: u64,
            birth_ms: u64,
        }
    }
    declare_obvent_model! {
        pub class PriorityEvent implements [Prioritary] {
            n: u32,
            priority: i32,
        }
    }
    declare_obvent_model! {
        /// Conflict: reliable + timely — reliability must win (Fig. 4).
        pub class ReliableTimelyEvent implements [Reliable, Timely] {
            n: u32,
            ttl_ms: u64,
            birth_ms: u64,
        }
    }
    declare_obvent_model! {
        /// Conflict: ordered + prioritized — ordering must win (Fig. 4).
        pub class FifoPriorityEvent implements [FifoOrder, Prioritary] {
            n: u32,
            priority: i32,
        }
    }

    #[test]
    fn default_is_unreliable_unordered() {
        let qos = PlainEvent::kind().qos();
        assert_eq!(qos.delivery, Delivery::Unreliable);
        assert_eq!(qos.ordering, Ordering::None);
        assert!(qos.is_default());
    }

    #[test]
    fn delivery_ladder() {
        assert_eq!(ReliableEvent::kind().qos().delivery, Delivery::Reliable);
        assert_eq!(CertifiedEvent::kind().qos().delivery, Delivery::Certified);
        // Certified extends Reliable in the marker hierarchy itself.
        assert!(builtin::certified_kind().is_subtype_of(builtin::reliable_kind().id()));
    }

    #[test]
    fn ordering_ladder_and_reliability_implication() {
        assert_eq!(FifoEvent::kind().qos().ordering, Ordering::Fifo);
        assert_eq!(CausalEvent::kind().qos().ordering, Ordering::Causal);
        assert_eq!(TotalEvent::kind().qos().ordering, Ordering::Total);
        // Fig. 3: the order markers extend Reliable, so ordered kinds are
        // at least reliable.
        assert_eq!(FifoEvent::kind().qos().delivery, Delivery::Reliable);
        assert_eq!(CausalEvent::kind().qos().delivery, Delivery::Reliable);
        assert_eq!(TotalEvent::kind().qos().delivery, Delivery::Reliable);
        // CausalOrder extends FIFOOrder.
        assert!(builtin::causal_order_kind().is_subtype_of(builtin::fifo_order_kind().id()));
    }

    #[test]
    fn semantics_compose() {
        let qos = CertifiedTotalEvent::kind().qos();
        assert_eq!(qos.delivery, Delivery::Certified);
        assert_eq!(qos.ordering, Ordering::Total);
        assert!(qos.conflicts.is_empty());
    }

    #[test]
    fn transmission_semantics() {
        assert!(TimelyEvent::kind().qos().transmission.timely);
        assert!(PriorityEvent::kind().qos().transmission.prioritary);
    }

    #[test]
    fn reliability_beats_timeliness() {
        let qos = ReliableTimelyEvent::kind().qos();
        assert_eq!(qos.delivery, Delivery::Reliable);
        assert!(!qos.transmission.timely);
        assert!(qos
            .conflicts
            .contains(&QosConflict::TimelinessSuppressedByReliability));
    }

    #[test]
    fn ordering_beats_priority() {
        let qos = FifoPriorityEvent::kind().qos();
        assert_eq!(qos.ordering, Ordering::Fifo);
        assert!(!qos.transmission.prioritary);
        assert!(qos
            .conflicts
            .contains(&QosConflict::PrioritySuppressedByOrdering));
    }

    #[test]
    fn is_at_least_follows_fig4_arrows() {
        let certified_total = CertifiedTotalEvent::kind().qos();
        let reliable = ReliableEvent::kind().qos();
        let fifo = FifoEvent::kind().qos();
        let causal = CausalEvent::kind().qos();
        assert!(certified_total.is_at_least(reliable));
        assert!(causal.is_at_least(fifo));
        assert!(!fifo.is_at_least(causal));
        assert!(!reliable.is_at_least(certified_total));
    }

    proptest! {
        /// Resolution is monotone: adding markers never weakens delivery.
        #[test]
        fn prop_resolution_monotone_in_markers(
            base_markers in proptest::sample::subsequence(
                vec!["reliable", "certified", "fifo", "causal", "total"], 0..3),
            extra in proptest::sample::select(
                vec!["reliable", "certified", "fifo", "causal", "total"]),
        ) {
            fn ancestry_for(markers: &[&str]) -> Vec<KindId> {
                let mut ids = vec![builtin::obvent_kind().id()];
                for m in markers {
                    let kind = match *m {
                        "reliable" => builtin::reliable_kind(),
                        "certified" => builtin::certified_kind(),
                        "fifo" => builtin::fifo_order_kind(),
                        "causal" => builtin::causal_order_kind(),
                        "total" => builtin::total_order_kind(),
                        _ => unreachable!(),
                    };
                    for anc in kind.ancestry() {
                        if !ids.contains(anc) {
                            ids.push(*anc);
                        }
                    }
                }
                ids
            }
            let base: Vec<&str> = base_markers.clone();
            let mut extended = base.clone();
            extended.push(extra);
            let q1 = QosSpec::resolve(&ancestry_for(&base));
            let q2 = QosSpec::resolve(&ancestry_for(&extended));
            prop_assert!(q2.delivery >= q1.delivery);
        }
    }
}

mod interfaces {
    use super::*;

    declare_obvent_interface! {
        /// Application-defined abstract obvent type.
        pub interface Alerting;
    }
    declare_obvent_interface! {
        pub interface CriticalAlerting extends [Alerting, Reliable];
    }
    declare_obvent_model! {
        pub class DiskFullAlert implements [CriticalAlerting] {
            host: String,
        }
    }

    #[test]
    fn interface_hierarchies_compose() {
        assert!(CriticalAlerting::kind().is_subtype_of(Alerting::kind().id()));
        assert!(DiskFullAlert::kind().is_subtype_of(Alerting::kind().id()));
        assert!(DiskFullAlert::kind().is_subtype_of(builtin::reliable_kind().id()));
        assert_eq!(DiskFullAlert::kind().qos().delivery, Delivery::Reliable);
    }

    #[test]
    fn interface_instances_reach_views() {
        let alert = DiskFullAlert::new("node-7".into());
        let wire = WireObvent::encode(&alert).unwrap();
        let view = wire.view().unwrap();
        assert!(view.is_instance_of(Alerting::kind().id()));
        assert_eq!(view.string_at("host"), Some("node-7".into()));
    }
}

mod proptests {
    use super::*;

    proptest! {
        #[test]
        fn prop_wire_roundtrip(company in ".{0,12}", price: f64, amount: u32) {
            let q = quote(&company, price, amount);
            let wire = WireObvent::encode(&q).unwrap();
            let back: StockQuote = wire.decode_as().unwrap();
            // NaN-tolerant comparison.
            prop_assert_eq!(back.company(), q.company());
            prop_assert_eq!(back.price().to_bits(), q.price().to_bits());
            prop_assert_eq!(back.amount(), q.amount());
        }

        /// Prefix decoding as the supertype agrees with the subtype's own
        /// inherited fields — the coherence law behind §2.1.3.
        #[test]
        fn prop_supertype_decode_coherent(company in ".{0,12}", price: f64, amount: u32, broker in ".{0,8}") {
            let req = StockRequest::new(
                StockObvent::new(company, price, amount),
                broker,
            );
            let wire = WireObvent::encode(&req).unwrap();
            let base: StockObvent = wire.decode_as().unwrap();
            prop_assert_eq!(base.company(), req.company());
            prop_assert_eq!(base.price().to_bits(), req.price().to_bits());
            prop_assert_eq!(base.amount(), req.amount());
        }
    }
}

mod edge_shapes {
    use super::*;

    declare_obvent_model! {
        /// A field-less obvent: pure signal.
        pub class Heartbeat {}
    }

    declare_obvent_model! {
        pub class L1 { a: u32 }
    }
    declare_obvent_model! {
        pub class L2 extends L1 { b: u32 }
    }
    declare_obvent_model! {
        pub class L3 extends L2 { c: u32 }
    }
    declare_obvent_model! {
        pub class L4 extends L3 { d: u32 }
    }

    #[test]
    fn field_less_obvents_work() {
        let hb = Heartbeat::new();
        let wire = WireObvent::encode(&hb).unwrap();
        let back: Heartbeat = wire.decode_exact().unwrap();
        assert_eq!(back, hb);
        assert!(Heartbeat::kind().is_subtype_of(builtin::obvent_kind().id()));
        assert_eq!(
            PropertySource::property(&hb, &PropPath::parse("anything")),
            None
        );
    }

    #[test]
    fn four_level_hierarchy_prefix_decodes_at_every_level() {
        let leaf = L4::new(L3::new(L2::new(L1::new(1), 2), 3), 4);
        // Deref chains all the way down.
        assert_eq!(*leaf.a(), 1);
        assert_eq!(*leaf.b(), 2);
        assert_eq!(*leaf.c(), 3);
        assert_eq!(*leaf.d(), 4);
        let wire = WireObvent::encode(&leaf).unwrap();
        let l1: L1 = wire.decode_as().unwrap();
        assert_eq!(*l1.a(), 1);
        let l2: L2 = wire.decode_as().unwrap();
        assert_eq!((*l2.a(), *l2.b()), (1, 2));
        let l3: L3 = wire.decode_as().unwrap();
        assert_eq!(*l3.c(), 3);
        for kind in [L1::kind_id(), L2::kind_id(), L3::kind_id()] {
            assert!(L4::kind().is_subtype_of(kind));
        }
    }

    declare_obvent_model! {
        /// Optional and collection fields exercise the IntoValue impls.
        pub class RichFields {
            note: String,
            maybe: Option<u32>,
            tags: Vec<String>,
        }
    }

    #[test]
    fn optional_and_vector_fields_expose_properties() {
        let r = RichFields::new("x".into(), Some(5), vec!["a".into(), "b".into()]);
        assert_eq!(
            r.property_at("maybe"),
            Some(psc_filter::Value::UInt(5))
        );
        let none = RichFields::new("x".into(), None, vec![]);
        assert_eq!(none.property_at("maybe"), Some(psc_filter::Value::Unit));
        let f = psc_filter::rfilter!(tags contains "a");
        assert!(f.matches(&r));
        assert!(!f.matches(&none));
        // Wire roundtrip with the richer field types.
        let wire = WireObvent::encode(&r).unwrap();
        let back: RichFields = wire.decode_exact().unwrap();
        assert_eq!(back, r);
    }
}
