//! Obvent type descriptors.
//!
//! Rust has no subtype relation between struct types, so the paper's
//! "subscription scheme = type scheme" is reproduced with explicit runtime
//! type descriptors: every obvent class or interface owns an [`ObventKind`]
//! recording its name, direct supertypes and resolved QoS. Descriptors are
//! registered once per process in the global [`registry`](crate::registry)
//! and handed out as `&'static` references.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::qos::QosSpec;

/// Stable identifier of an obvent kind: the FNV-1a hash of its fully
/// qualified name. Identical across processes, so it can travel on the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct KindId(u64);

impl KindId {
    /// Computes the id for a kind name.
    pub const fn from_name(name: &str) -> KindId {
        // FNV-1a, 64-bit.
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        let bytes = name.as_bytes();
        let mut i = 0;
        while i < bytes.len() {
            hash ^= bytes[i] as u64;
            hash = hash.wrapping_mul(0x1000_0000_01b3);
            i += 1;
        }
        KindId(hash)
    }

    /// The raw hash value.
    pub const fn as_u64(self) -> u64 {
        self.0
    }

    /// Reconstructs a kind id from its raw hash (wire/control traffic).
    pub const fn from_raw(raw: u64) -> KindId {
        KindId(raw)
    }
}

impl fmt::Display for KindId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

/// Whether a kind is a stateful class or a stateless marker interface.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum KindRole {
    /// A concrete obvent class: carries fields, can be instantiated and
    /// published; single inheritance (paper §2.2 "implicit declaration").
    Class,
    /// An abstract obvent type: no state, multiple subtyping (paper §2.2
    /// "explicit declaration" — Java interfaces).
    Interface,
}

/// Runtime descriptor of one obvent type.
///
/// Obtain instances from the generated `T::kind()` methods or from
/// [`registry::lookup`]; they are interned for the process lifetime.
#[derive(Debug)]
pub struct ObventKind {
    name: &'static str,
    id: KindId,
    role: KindRole,
    /// Direct supertypes: at most one class plus any number of interfaces.
    supers: Vec<KindId>,
    /// Transitive supertype closure, including `self.id` and the root
    /// `Obvent` kind; computed at registration.
    ancestry: Vec<KindId>,
    qos: QosSpec,
}

impl ObventKind {
    pub(crate) fn new(
        name: &'static str,
        role: KindRole,
        supers: Vec<KindId>,
        ancestry: Vec<KindId>,
        qos: QosSpec,
    ) -> Self {
        ObventKind {
            name,
            id: KindId::from_name(name),
            role,
            supers,
            ancestry,
            qos,
        }
    }

    /// The kind's fully qualified name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// The kind's stable id.
    pub fn id(&self) -> KindId {
        self.id
    }

    /// Class or interface.
    pub fn role(&self) -> KindRole {
        self.role
    }

    /// Direct supertypes (declared `extends` / `implements`).
    pub fn supers(&self) -> &[KindId] {
        &self.supers
    }

    /// Transitive supertype closure (includes the kind itself and the root
    /// `Obvent` interface).
    pub fn ancestry(&self) -> &[KindId] {
        &self.ancestry
    }

    /// The QoS resolved from the kind's marker interfaces along the paper's
    /// Fig. 4 lattice.
    pub fn qos(&self) -> &QosSpec {
        &self.qos
    }

    /// True if this kind is `other` or a (transitive) subtype of it — the
    /// test deciding whether an instance reaches a subscription on `other`.
    ///
    /// ```
    /// use psc_obvent::{builtin, Obvent};
    /// let reliable = builtin::reliable_kind();
    /// assert!(builtin::certified_kind().is_subtype_of(reliable.id()));
    /// ```
    pub fn is_subtype_of(&self, other: KindId) -> bool {
        self.ancestry.contains(&other)
    }
}

impl fmt::Display for ObventKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name)
    }
}

impl PartialEq for ObventKind {
    fn eq(&self, other: &Self) -> bool {
        self.id == other.id
    }
}

impl Eq for ObventKind {}
