#![warn(missing_docs)]

//! # psc-obvent — events as first-class objects ("obvents")
//!
//! The paper's core idea (§2.1) is to view events as *specific
//! application-defined objects* — obvents — and to subscribe to them by
//! **type**, so that "the type scheme of the programming language is used as
//! subscription scheme" (LP1) and event design is free of imposed choices
//! (LP3). This crate is the Rust rendition of that model:
//!
//! - [`ObventKind`] / [`KindId`] / [`registry`] — runtime type descriptors
//!   forming the obvent type hierarchy: single-inheritance *classes* carrying
//!   state and multiple-subtyped marker *interfaces* (paper §2.2's reading of
//!   Java's class/interface split);
//! - [`Obvent`] — the trait of publishable event objects: serializable
//!   (LM1, via `psc-codec`), property-exposing (for content filters, LP2),
//!   and type-identified;
//! - [`qos`] — the composable obvent semantics of §3.1.2 (Fig. 3/4):
//!   delivery (unreliable / reliable / certified), ordering (FIFO / causal /
//!   total), and transmission (priority, time-to-live) semantics expressed by
//!   subtyping marker interfaces (LM2), resolved along the paper's
//!   dependency lattice with its precedence rules;
//! - [`WireObvent`] — a serialized obvent in transit; decoding it *as a
//!   supertype* yields a fresh clone per subscriber (§2.1.2's global/local
//!   uniqueness), implemented by prefix decoding;
//! - [`ObventView`] — the dynamic, self-describing view used for interface
//!   subscriptions and reflection-style filters (§5.5.1);
//! - [`declare_obvent_model!`](crate::declare_obvent_model) — the
//!   model-generation half of the reproduction's "precompiler" (the
//!   `pubsub-core` crate wraps it into the full `obvent!` macro that also
//!   emits typed adapters).
//!
//! ```
//! use psc_obvent::{declare_obvent_model, builtin, Obvent, WireObvent};
//!
//! declare_obvent_model! {
//!     /// Base class of the stock-trade example (paper Fig. 2).
//!     pub class StockObvent {
//!         company: String,
//!         price: f64,
//!         amount: u32,
//!     }
//! }
//!
//! declare_obvent_model! {
//!     /// Stock quotes extend the base class.
//!     pub class StockQuote extends StockObvent {}
//! }
//!
//! let q = StockQuote::new(StockObvent::new("Telco Mobiles".into(), 80.0, 10));
//! assert_eq!(q.company(), "Telco Mobiles"); // inherited accessor
//! let wire = WireObvent::encode(&q).unwrap();
//! // Decode as the supertype: a fresh StockObvent clone.
//! let base: StockObvent = wire.decode_as().unwrap();
//! assert_eq!(base.price(), &80.0);
//! assert!(StockQuote::kind().is_subtype_of(StockObvent::kind_id()));
//! assert!(StockQuote::kind().is_subtype_of(builtin::obvent_kind().id()));
//! ```

pub mod builtin;
mod kind;
mod macros;
mod obvent;
pub mod qos;
pub mod registry;
mod view;
mod wire;

pub use kind::{KindId, KindRole, ObventKind};
pub use obvent::{Obvent, ObventError};
pub use view::ObventView;
pub use wire::WireObvent;

// Re-exported for macro-generated code; not part of the public API surface.
#[doc(hidden)]
pub mod __private {
    pub use psc_codec;
    pub use psc_filter;
    pub use psc_paste;
    pub use serde;
}

#[cfg(test)]
mod tests;
