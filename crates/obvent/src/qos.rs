//! Composable obvent semantics (paper §3.1.2, Figs. 3 and 4).
//!
//! The paper attaches quality-of-service to obvents by **subtyping marker
//! interfaces** (LM2/LP4): `Reliable`, `Certified`, `TotalOrder`,
//! `FIFOOrder`, `CausalOrder` for delivery/ordering, `Timely` and
//! `Prioritary` for transmission. Semantics compose, subject to the Fig. 4
//! dependency lattice and two precedence rules:
//!
//! - reliability contradicts timeliness: "contradictions reside for instance
//!   between reliable and simultaneously timely limited obvents … the first
//!   type takes precedence";
//! - ordering contradicts priorities: "between total, fifo or causal order
//!   and priorities … the first type takes precedence".
//!
//! [`QosSpec::resolve`] computes the effective semantics from the set of
//! marker interfaces in a kind's ancestry, recording which requested
//! semantics were suppressed.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::builtin;
use crate::KindId;

/// Delivery guarantee, strongest-last (paper §3.1.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default)]
pub enum Delivery {
    /// Best-effort: "there is only a best-effort attempt to deliver it.
    /// This is assumed by default."
    #[default]
    Unreliable,
    /// Received by every notifiable that is "up for long enough".
    Reliable,
    /// Survives subscriber disconnection and failure: delivered after
    /// recovery.
    Certified,
}

/// Ordering guarantee across deliveries (paper §3.1.2).
///
/// `Causal` implies FIFO (the paper declares `CausalOrder extends
/// FIFOOrder`); `Total` is the subscriber-side order and, in this
/// implementation, is provided by a fixed sequencer reached over FIFO links,
/// so it also preserves per-publisher order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default)]
pub enum Ordering {
    /// No ordering constraint.
    #[default]
    None,
    /// Publisher-side order: obvents from one publisher arrive in publish
    /// order.
    Fifo,
    /// Happens-before order across publishers [Lam78].
    Causal,
    /// Subscriber-side order: all notifiables deliver in one global order.
    Total,
}

/// Transmission semantics (paper §3.1.2: `Prioritary`, `Timely`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub struct Transmission {
    /// Whether instances carry a `priority` property that in-transit queues
    /// honour (higher first).
    pub prioritary: bool,
    /// Whether instances carry `ttl_ms`/`birth_ms` properties after which
    /// they expire in transit.
    pub timely: bool,
}

/// A warning emitted while resolving composed semantics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum QosConflict {
    /// `Timely` was requested together with `Reliable`/`Certified`;
    /// reliability takes precedence and expiry is ignored.
    TimelinessSuppressedByReliability,
    /// `Prioritary` was requested together with an ordering; ordering takes
    /// precedence and priorities are ignored.
    PrioritySuppressedByOrdering,
}

impl fmt::Display for QosConflict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QosConflict::TimelinessSuppressedByReliability => {
                write!(f, "timeliness suppressed: reliable delivery takes precedence")
            }
            QosConflict::PrioritySuppressedByOrdering => {
                write!(f, "priority suppressed: ordered delivery takes precedence")
            }
        }
    }
}

/// The effective, resolved semantics of an obvent kind.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct QosSpec {
    /// Effective delivery guarantee.
    pub delivery: Delivery,
    /// Effective ordering guarantee.
    pub ordering: Ordering,
    /// Effective transmission semantics (after precedence rules).
    pub transmission: Transmission,
    /// Precedence rules that fired during resolution.
    pub conflicts: Vec<QosConflict>,
}

impl QosSpec {
    /// Resolves the effective semantics from the marker interfaces present
    /// in `ancestry` (a kind's transitive supertype closure).
    ///
    /// The lattice of Fig. 4: `Certified ≻ Reliable ≻ Unreliable`;
    /// `CausalOrder ≻ FIFOOrder`; `TotalOrder` and the order markers imply
    /// `Reliable` (they extend it in Fig. 3, so that implication arrives
    /// through the ancestry itself); `Timely`/`Prioritary` are orthogonal
    /// until the precedence rules fire.
    pub fn resolve(ancestry: &[KindId]) -> QosSpec {
        let has = |id: KindId| ancestry.contains(&id);

        // Marker ids are computed from the (stable) names rather than by
        // touching the registry: `resolve` runs *during* the registration
        // of the builtin kinds themselves, and consulting the registry
        // there would re-enter its initialization.
        let delivery = if has(builtin::CERTIFIED_ID) {
            Delivery::Certified
        } else if has(builtin::RELIABLE_ID) {
            Delivery::Reliable
        } else {
            Delivery::Unreliable
        };

        let ordering = if has(builtin::TOTAL_ORDER_ID) {
            Ordering::Total
        } else if has(builtin::CAUSAL_ORDER_ID) {
            Ordering::Causal
        } else if has(builtin::FIFO_ORDER_ID) {
            Ordering::Fifo
        } else {
            Ordering::None
        };

        let wants_timely = has(builtin::TIMELY_ID);
        let wants_priority = has(builtin::PRIORITARY_ID);

        let mut conflicts = Vec::new();
        let timely = if wants_timely && delivery != Delivery::Unreliable {
            conflicts.push(QosConflict::TimelinessSuppressedByReliability);
            false
        } else {
            wants_timely
        };
        let prioritary = if wants_priority && ordering != Ordering::None {
            conflicts.push(QosConflict::PrioritySuppressedByOrdering);
            false
        } else {
            wants_priority
        };

        QosSpec {
            delivery,
            ordering,
            transmission: Transmission { prioritary, timely },
            conflicts,
        }
    }

    /// True when the spec demands more than best-effort unordered delivery.
    pub fn is_default(&self) -> bool {
        self.delivery == Delivery::Unreliable
            && self.ordering == Ordering::None
            && self.transmission == Transmission::default()
    }

    /// Comparison along the Fig. 4 "B is stronger than A" arrows: true when
    /// `self` guarantees at least everything `other` does, for delivery and
    /// ordering.
    pub fn is_at_least(&self, other: &QosSpec) -> bool {
        let ord_ok = match other.ordering {
            Ordering::None => true,
            Ordering::Fifo => matches!(self.ordering, Ordering::Fifo | Ordering::Causal | Ordering::Total),
            Ordering::Causal => self.ordering == Ordering::Causal,
            Ordering::Total => self.ordering == Ordering::Total,
        };
        self.delivery >= other.delivery && ord_ok
    }
}

impl fmt::Display for QosSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}/{:?}", self.delivery, self.ordering)?;
        if self.transmission.prioritary {
            write!(f, "+priority")?;
        }
        if self.transmission.timely {
            write!(f, "+timely")?;
        }
        Ok(())
    }
}
