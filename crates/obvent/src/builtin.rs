//! The built-in obvent interfaces of `java.pubsub` (paper Fig. 3).
//!
//! ```java
//! public interface Obvent extends Serializable {...}
//! public interface Reliable extends Obvent {}
//! public interface Certified extends Reliable {}
//! public interface TotalOrder extends Reliable {}
//! public interface FIFOOrder extends Reliable {}
//! public interface CausalOrder extends FIFOOrder {}
//! public interface Timely extends Obvent { ... }
//! public interface Prioritary extends Obvent { ... }
//! ```
//!
//! Each interface is a marker unit type whose `kind()` returns the interned
//! descriptor; obvent classes compose semantics by listing the markers in
//! their `implements [...]` clause (LM2). `Timely` instances are expected to
//! expose `ttl_ms` and `birth_ms` properties and `Prioritary` instances a
//! `priority` property — the property-based rendition of the interfaces'
//! `getTimeToLive()` / `getBirth()` / `getPriority()` methods.

use std::sync::Once;

use crate::kind::{KindId, KindRole, ObventKind};
use crate::registry;

/// Name of the root obvent interface.
pub const OBVENT_NAME: &str = "pubsub.Obvent";
/// Kind id of the root obvent interface.
pub const OBVENT_ID: KindId = KindId::from_name(OBVENT_NAME);
/// Kind id of the `Reliable` marker.
pub const RELIABLE_ID: KindId = KindId::from_name("pubsub.Reliable");
/// Kind id of the `Certified` marker.
pub const CERTIFIED_ID: KindId = KindId::from_name("pubsub.Certified");
/// Kind id of the `TotalOrder` marker.
pub const TOTAL_ORDER_ID: KindId = KindId::from_name("pubsub.TotalOrder");
/// Kind id of the `FIFOOrder` marker.
pub const FIFO_ORDER_ID: KindId = KindId::from_name("pubsub.FIFOOrder");
/// Kind id of the `CausalOrder` marker.
pub const CAUSAL_ORDER_ID: KindId = KindId::from_name("pubsub.CausalOrder");
/// Kind id of the `Timely` marker.
pub const TIMELY_ID: KindId = KindId::from_name("pubsub.Timely");
/// Kind id of the `Prioritary` marker.
pub const PRIORITARY_ID: KindId = KindId::from_name("pubsub.Prioritary");
/// Property read from `Timely` obvents for their time-to-live (ms).
pub const TTL_PROPERTY: &str = "ttl_ms";
/// Property read from `Timely` obvents for their publication time (ms).
pub const BIRTH_PROPERTY: &str = "birth_ms";
/// Property read from `Prioritary` obvents for their priority (higher
/// first).
pub const PRIORITY_PROPERTY: &str = "priority";

/// Registers all built-in kinds exactly once. Called automatically by
/// [`registry::register`]; exposed for tests and early initialization.
pub fn ensure_registered() {
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let obvent = registry::register_raw(OBVENT_NAME, KindRole::Interface, &[]);
        let reliable =
            registry::register_raw("pubsub.Reliable", KindRole::Interface, &[obvent.id()]);
        registry::register_raw("pubsub.Certified", KindRole::Interface, &[reliable.id()]);
        registry::register_raw("pubsub.TotalOrder", KindRole::Interface, &[reliable.id()]);
        let fifo =
            registry::register_raw("pubsub.FIFOOrder", KindRole::Interface, &[reliable.id()]);
        registry::register_raw("pubsub.CausalOrder", KindRole::Interface, &[fifo.id()]);
        registry::register_raw("pubsub.Timely", KindRole::Interface, &[obvent.id()]);
        registry::register_raw("pubsub.Prioritary", KindRole::Interface, &[obvent.id()]);
    });
}

fn builtin(name: &'static str) -> &'static ObventKind {
    ensure_registered();
    registry::lookup(KindId::from_name(name)).expect("builtin kind registered")
}

/// The root `Obvent` interface kind: every obvent type is a subtype.
pub fn obvent_kind() -> &'static ObventKind {
    builtin(OBVENT_NAME)
}

/// Reliable-delivery marker kind.
pub fn reliable_kind() -> &'static ObventKind {
    builtin("pubsub.Reliable")
}

/// Certified-delivery marker kind.
pub fn certified_kind() -> &'static ObventKind {
    builtin("pubsub.Certified")
}

/// Total-order marker kind.
pub fn total_order_kind() -> &'static ObventKind {
    builtin("pubsub.TotalOrder")
}

/// FIFO-order marker kind.
pub fn fifo_order_kind() -> &'static ObventKind {
    builtin("pubsub.FIFOOrder")
}

/// Causal-order marker kind.
pub fn causal_order_kind() -> &'static ObventKind {
    builtin("pubsub.CausalOrder")
}

/// Timeliness marker kind.
pub fn timely_kind() -> &'static ObventKind {
    builtin("pubsub.Timely")
}

/// Priority marker kind.
pub fn prioritary_kind() -> &'static ObventKind {
    builtin("pubsub.Prioritary")
}

macro_rules! marker_type {
    ($(#[$meta:meta])* $name:ident => $getter:ident) => {
        $(#[$meta])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
        pub struct $name;

        impl $name {
            /// The interned kind descriptor of this marker interface.
            pub fn kind() -> &'static ObventKind {
                $getter()
            }
        }
    };
}

marker_type!(
    /// Marker: reliable delivery (`public interface Reliable extends Obvent`).
    Reliable => reliable_kind
);
marker_type!(
    /// Marker: certified delivery — survives subscriber failure
    /// (`public interface Certified extends Reliable`).
    Certified => certified_kind
);
marker_type!(
    /// Marker: total (subscriber-side) order
    /// (`public interface TotalOrder extends Reliable`).
    TotalOrder => total_order_kind
);
marker_type!(
    /// Marker: FIFO (publisher-side) order
    /// (`public interface FIFOOrder extends Reliable`).
    FifoOrder => fifo_order_kind
);
marker_type!(
    /// Marker: causal (happens-before) order
    /// (`public interface CausalOrder extends FIFOOrder`).
    CausalOrder => causal_order_kind
);
marker_type!(
    /// Marker: timely transmission; instances expose `ttl_ms` and `birth_ms`
    /// properties (`public interface Timely extends Obvent`).
    Timely => timely_kind
);
marker_type!(
    /// Marker: prioritized transmission; instances expose a `priority`
    /// property (`public interface Prioritary extends Obvent`).
    Prioritary => prioritary_kind
);
