//! The model half of the reproduction's "precompiler".
//!
//! The paper's `psc` transforms obvent class declarations into classes plus
//! generated artifacts (typed adapters, notifiables, reified filters).
//! [`declare_obvent_model!`] performs the model part of that generation for a
//! Java-flavoured class grammar:
//!
//! ```text
//! pub class Name [extends Super] [implements [Marker, …]] { field: Type, … }
//! ```
//!
//! Generated per class:
//!
//! - the struct itself, with the superclass embedded as its **first field**
//!   (so the codec's field-order layout makes the superclass image a prefix
//!   of the subclass image — the basis of supertype decoding);
//! - `new`, per-field accessors, and `Deref` to the superclass for
//!   Java-style inherited member access (a deliberate deviation from the
//!   smart-pointer-only `Deref` guideline, documented in `DESIGN.md`);
//! - `kind()` — lazy registration of the [`ObventKind`] descriptor
//!   (superclass first, then marker interfaces), plus the view decoder;
//! - [`Obvent`], [`PropertySource`] and `IntoValue` implementations (the
//!   latter lets obvents nest inside other obvents, §2.1.1);
//! - a typed filter schema `NameSchema` whose accessor methods return
//!   [`Prop<T>`] handles — the statically checked filter surface (LP1).
//!
//! [`declare_obvent_interface!`] declares application-defined abstract
//! obvent types (markers), e.g. groupings like the paper's `StockObvent`
//! could be if modelled as an interface.
//!
//! [`ObventKind`]: crate::ObventKind
//! [`Obvent`]: crate::Obvent
//! [`PropertySource`]: psc_filter::PropertySource
//! [`Prop<T>`]: psc_filter::typed::Prop

/// Declares an obvent class (see the module docs for the grammar).
///
/// The superclass, if any, must be named by a bare identifier in scope (not
/// a path) because the generated schema derives its name from it. Marker
/// interfaces may be arbitrary paths to types exposing `fn kind()`.
///
/// ```
/// use psc_obvent::{declare_obvent_model, builtin, Obvent};
/// use psc_obvent::qos::{Delivery, Ordering};
///
/// declare_obvent_model! {
///     /// Paper Fig. 2 base class.
///     pub class StockObvent {
///         company: String,
///         price: f64,
///         amount: u32,
///     }
/// }
/// declare_obvent_model! {
///     pub class StockQuote extends StockObvent
///         implements [psc_obvent::builtin::Reliable, psc_obvent::builtin::FifoOrder]
///     {
///         venue: String,
///     }
/// }
///
/// let q = StockQuote::new(
///     StockObvent::new("Telco".into(), 80.0, 10),
///     "ZRH".into(),
/// );
/// assert_eq!(q.venue(), "ZRH");
/// assert_eq!(q.company(), "Telco"); // inherited via Deref
/// let qos = StockQuote::kind().qos();
/// assert_eq!(qos.delivery, Delivery::Reliable);
/// assert_eq!(qos.ordering, Ordering::Fifo);
/// ```
#[macro_export]
macro_rules! declare_obvent_model {
    // class Name { ... }
    (
        $(#[$meta:meta])*
        $vis:vis class $name:ident {
            $($(#[$fmeta:meta])* $fname:ident : $fty:ty),* $(,)?
        }
    ) => {
        $crate::__declare_obvent_class! {
            meta [$($meta)*] vis [$vis] name [$name]
            super []
            ifaces []
            fields [$($(#[$fmeta])* $fname : $fty),*]
        }
    };
    // class Name extends Super { ... }
    (
        $(#[$meta:meta])*
        $vis:vis class $name:ident extends $super_:ident {
            $($(#[$fmeta:meta])* $fname:ident : $fty:ty),* $(,)?
        }
    ) => {
        $crate::__declare_obvent_class! {
            meta [$($meta)*] vis [$vis] name [$name]
            super [$super_]
            ifaces []
            fields [$($(#[$fmeta])* $fname : $fty),*]
        }
    };
    // class Name implements [I, ...] { ... }
    (
        $(#[$meta:meta])*
        $vis:vis class $name:ident implements [$($iface:ty),* $(,)?] {
            $($(#[$fmeta:meta])* $fname:ident : $fty:ty),* $(,)?
        }
    ) => {
        $crate::__declare_obvent_class! {
            meta [$($meta)*] vis [$vis] name [$name]
            super []
            ifaces [$($iface),*]
            fields [$($(#[$fmeta])* $fname : $fty),*]
        }
    };
    // class Name extends Super implements [I, ...] { ... }
    (
        $(#[$meta:meta])*
        $vis:vis class $name:ident extends $super_:ident implements [$($iface:ty),* $(,)?] {
            $($(#[$fmeta:meta])* $fname:ident : $fty:ty),* $(,)?
        }
    ) => {
        $crate::__declare_obvent_class! {
            meta [$($meta)*] vis [$vis] name [$name]
            super [$super_]
            ifaces [$($iface),*]
            fields [$($(#[$fmeta])* $fname : $fty),*]
        }
    };
}

/// Internal expansion of [`declare_obvent_model!`]; not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __declare_obvent_class {
    // ----- subclass: embedded superclass -----
    (
        meta [$($meta:meta)*] vis [$vis:vis] name [$name:ident]
        super [$super_:ident]
        ifaces [$($iface:ty),*]
        fields [$($(#[$fmeta:meta])* $fname:ident : $fty:ty),*]
    ) => {
        $crate::__private::psc_paste::paste! {
            $(#[$meta])*
            #[derive(Clone, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
            $vis struct $name {
                __super: $super_,
                $($(#[$fmeta])* $fname : $fty,)*
            }

            impl $name {
                /// Creates a new obvent from its superclass part and own
                /// fields (the Rust spelling of a `super(...)` call).
                #[allow(clippy::too_many_arguments, dead_code)]
                $vis fn new(superclass: $super_ $(, $fname: $fty)*) -> Self {
                    Self { __super: superclass $(, $fname)* }
                }

                $(
                    /// Returns this property (generated accessor).
                    #[allow(dead_code)]
                    $vis fn $fname(&self) -> &$fty {
                        &self.$fname
                    }
                )*

                /// Borrows the superclass part explicitly.
                #[allow(dead_code)]
                $vis fn superclass(&self) -> &$super_ {
                    &self.__super
                }

                /// The interned kind descriptor; registers the class (and
                /// its view decoder) on first use.
                $vis fn kind() -> &'static $crate::ObventKind {
                    static KIND: ::std::sync::OnceLock<&'static $crate::ObventKind> =
                        ::std::sync::OnceLock::new();
                    KIND.get_or_init(|| {
                        #[allow(unused_mut)]
                        let mut supers: ::std::vec::Vec<$crate::KindId> =
                            ::std::vec![<$super_ as $crate::Obvent>::kind().id()];
                        $(supers.push(<$iface>::kind().id());)*
                        let kind = $crate::registry::register(
                            ::std::concat!(::std::module_path!(), "::", ::std::stringify!($name)),
                            $crate::registry::KIND_ROLE_CLASS,
                            &supers,
                        );
                        $crate::registry::register_decoder(kind.id(), |payload| {
                            let value: $name =
                                $crate::__private::psc_codec::from_bytes(payload)
                                    .map_err($crate::ObventError::from)?;
                            ::std::result::Result::Ok($crate::Obvent::view(&value))
                        });
                        kind
                    })
                }

                /// The typed filter schema for this class (LP1).
                #[allow(dead_code)]
                $vis fn schema() -> [<$name Schema>] {
                    [<$name Schema>]
                }
            }

            // Java-style inherited member access; deliberate deviation from
            // C-DEREF, see DESIGN.md.
            impl ::std::ops::Deref for $name {
                type Target = $super_;

                fn deref(&self) -> &$super_ {
                    &self.__super
                }
            }

            impl $crate::Obvent for $name {
                fn kind() -> &'static $crate::ObventKind {
                    $name::kind()
                }

                fn properties(&self) -> $crate::__private::psc_filter::Value {
                    #[allow(unused_mut)]
                    let mut record = match $crate::Obvent::properties(&self.__super) {
                        $crate::__private::psc_filter::Value::Record(map) => map,
                        _ => ::std::collections::BTreeMap::new(),
                    };
                    $(
                        record.insert(
                            ::std::stringify!($fname).to_string(),
                            $crate::__private::psc_filter::IntoValue::to_value(&self.$fname),
                        );
                    )*
                    $crate::__private::psc_filter::Value::Record(record)
                }
            }

            impl $crate::__private::psc_filter::PropertySource for $name {
                #[allow(unused_variables)]
                fn property(
                    &self,
                    path: &$crate::__private::psc_filter::PropPath,
                ) -> ::std::option::Option<$crate::__private::psc_filter::Value> {
                    let (first, rest) = path.split_first()?;
                    match first {
                        $(
                            ::std::stringify!($fname) => {
                                let value =
                                    $crate::__private::psc_filter::IntoValue::to_value(&self.$fname);
                                if rest.is_empty() {
                                    ::std::option::Option::Some(value)
                                } else {
                                    $crate::__private::psc_filter::PropertySource::property(
                                        &value, &rest,
                                    )
                                }
                            }
                        )*
                        _ => $crate::__private::psc_filter::PropertySource::property(
                            &self.__super,
                            path,
                        ),
                    }
                }
            }

            impl $crate::__private::psc_filter::IntoValue for $name {
                fn to_value(&self) -> $crate::__private::psc_filter::Value {
                    $crate::Obvent::properties(self)
                }
            }

            #[doc = ::std::concat!(
                "Typed filter schema for [`", ::std::stringify!($name),
                "`]; accessor methods return typed property handles."
            )]
            #[derive(Debug, Clone, Copy, Default)]
            $vis struct [<$name Schema>];

            #[allow(dead_code)]
            impl [<$name Schema>] {
                $(
                    /// Typed handle on this property for filter construction.
                    $vis fn $fname(&self) -> $crate::__private::psc_filter::typed::Prop<$fty> {
                        $crate::__private::psc_filter::typed::prop(::std::stringify!($fname))
                    }
                )*
            }

            impl ::std::ops::Deref for [<$name Schema>] {
                type Target = [<$super_ Schema>];

                fn deref(&self) -> &[<$super_ Schema>] {
                    static SUPER_SCHEMA: [<$super_ Schema>] = [<$super_ Schema>];
                    &SUPER_SCHEMA
                }
            }
        }
    };
    // ----- root class: no superclass -----
    (
        meta [$($meta:meta)*] vis [$vis:vis] name [$name:ident]
        super []
        ifaces [$($iface:ty),*]
        fields [$($(#[$fmeta:meta])* $fname:ident : $fty:ty),*]
    ) => {
        $crate::__private::psc_paste::paste! {
            $(#[$meta])*
            #[derive(Clone, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
            $vis struct $name {
                $($(#[$fmeta])* $fname : $fty,)*
            }

            impl $name {
                /// Creates a new obvent.
                #[allow(clippy::too_many_arguments, dead_code)]
                $vis fn new($($fname: $fty),*) -> Self {
                    Self { $($fname),* }
                }

                $(
                    /// Returns this property (generated accessor).
                    #[allow(dead_code)]
                    $vis fn $fname(&self) -> &$fty {
                        &self.$fname
                    }
                )*

                /// The interned kind descriptor; registers the class (and
                /// its view decoder) on first use.
                $vis fn kind() -> &'static $crate::ObventKind {
                    static KIND: ::std::sync::OnceLock<&'static $crate::ObventKind> =
                        ::std::sync::OnceLock::new();
                    KIND.get_or_init(|| {
                        #[allow(unused_mut)]
                        let mut supers: ::std::vec::Vec<$crate::KindId> =
                            ::std::vec![$crate::builtin::obvent_kind().id()];
                        $(supers.push(<$iface>::kind().id());)*
                        let kind = $crate::registry::register(
                            ::std::concat!(::std::module_path!(), "::", ::std::stringify!($name)),
                            $crate::registry::KIND_ROLE_CLASS,
                            &supers,
                        );
                        $crate::registry::register_decoder(kind.id(), |payload| {
                            let value: $name =
                                $crate::__private::psc_codec::from_bytes(payload)
                                    .map_err($crate::ObventError::from)?;
                            ::std::result::Result::Ok($crate::Obvent::view(&value))
                        });
                        kind
                    })
                }

                /// The typed filter schema for this class (LP1).
                #[allow(dead_code)]
                $vis fn schema() -> [<$name Schema>] {
                    [<$name Schema>]
                }
            }

            impl $crate::Obvent for $name {
                fn kind() -> &'static $crate::ObventKind {
                    $name::kind()
                }

                fn properties(&self) -> $crate::__private::psc_filter::Value {
                    #[allow(unused_mut)]
                    let mut record = ::std::collections::BTreeMap::new();
                    $(
                        record.insert(
                            ::std::stringify!($fname).to_string(),
                            $crate::__private::psc_filter::IntoValue::to_value(&self.$fname),
                        );
                    )*
                    $crate::__private::psc_filter::Value::Record(record)
                }
            }

            impl $crate::__private::psc_filter::PropertySource for $name {
                #[allow(unused_variables)]
                fn property(
                    &self,
                    path: &$crate::__private::psc_filter::PropPath,
                ) -> ::std::option::Option<$crate::__private::psc_filter::Value> {
                    let (first, rest) = path.split_first()?;
                    match first {
                        $(
                            ::std::stringify!($fname) => {
                                let value =
                                    $crate::__private::psc_filter::IntoValue::to_value(&self.$fname);
                                if rest.is_empty() {
                                    ::std::option::Option::Some(value)
                                } else {
                                    $crate::__private::psc_filter::PropertySource::property(
                                        &value, &rest,
                                    )
                                }
                            }
                        )*
                        _ => ::std::option::Option::None,
                    }
                }
            }

            impl $crate::__private::psc_filter::IntoValue for $name {
                fn to_value(&self) -> $crate::__private::psc_filter::Value {
                    $crate::Obvent::properties(self)
                }
            }

            #[doc = ::std::concat!(
                "Typed filter schema for [`", ::std::stringify!($name),
                "`]; accessor methods return typed property handles."
            )]
            #[derive(Debug, Clone, Copy, Default)]
            $vis struct [<$name Schema>];

            #[allow(dead_code)]
            impl [<$name Schema>] {
                $(
                    /// Typed handle on this property for filter construction.
                    $vis fn $fname(&self) -> $crate::__private::psc_filter::typed::Prop<$fty> {
                        $crate::__private::psc_filter::typed::prop(::std::stringify!($fname))
                    }
                )*
            }
        }
    };
}

/// Declares an application-defined abstract obvent type (interface): a
/// stateless marker participating in multiple subtyping (LM2).
///
/// ```
/// use psc_obvent::{declare_obvent_interface, declare_obvent_model, Obvent};
///
/// declare_obvent_interface! {
///     /// All market-data obvents.
///     pub interface MarketData;
/// }
/// declare_obvent_interface! {
///     /// Reliable market data.
///     pub interface ReliableMarketData extends [MarketData, psc_obvent::builtin::Reliable];
/// }
/// declare_obvent_model! {
///     pub class IndexTick implements [ReliableMarketData] { value: f64 }
/// }
///
/// assert!(IndexTick::kind().is_subtype_of(MarketData::kind().id()));
/// ```
#[macro_export]
macro_rules! declare_obvent_interface {
    (
        $(#[$meta:meta])*
        $vis:vis interface $name:ident;
    ) => {
        $crate::declare_obvent_interface! {
            $(#[$meta])*
            $vis interface $name extends [];
        }
    };
    (
        $(#[$meta:meta])*
        $vis:vis interface $name:ident extends [$($sup:ty),* $(,)?];
    ) => {
        $(#[$meta])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
        $vis struct $name;

        impl $name {
            /// The interned kind descriptor; registers the interface on
            /// first use.
            $vis fn kind() -> &'static $crate::ObventKind {
                static KIND: ::std::sync::OnceLock<&'static $crate::ObventKind> =
                    ::std::sync::OnceLock::new();
                KIND.get_or_init(|| {
                    #[allow(unused_mut)]
                    let mut supers: ::std::vec::Vec<$crate::KindId> = ::std::vec::Vec::new();
                    $(supers.push(<$sup>::kind().id());)*
                    if supers.is_empty() {
                        supers.push($crate::builtin::obvent_kind().id());
                    }
                    $crate::registry::register(
                        ::std::concat!(::std::module_path!(), "::", ::std::stringify!($name)),
                        $crate::registry::KIND_ROLE_INTERFACE,
                        &supers,
                    )
                })
            }
        }
    };
}
