//! The process-wide kind registry.
//!
//! Every obvent class or interface registers its [`ObventKind`] descriptor
//! here on first use (the generated `T::kind()` methods do this lazily, with
//! supertypes registered first). The registry answers the two questions the
//! dissemination layer keeps asking:
//!
//! - *is kind `D` a subtype of kind `K`?* — deciding whether an instance
//!   reaches a subscription (paper §2.1.3);
//! - *which registered kinds are subtypes of `K`?* — deciding which
//!   multicast classes a subscription to `K` must join (paper §4.2's
//!   class-based dissemination).
//!
//! In the paper every address space maintains this knowledge and learns
//! about new classes through advertisement obvents; in this reproduction all
//! simulated address spaces live in one OS process, so a single registry is
//! shared — the *protocol-level* advertisement still happens in `psc-dace`,
//! and this registry plays the role of each JVM's loaded-classes table.

use std::collections::HashMap;
use std::sync::RwLock;

use std::sync::OnceLock;

use crate::kind::{KindId, ObventKind};
use crate::qos::QosSpec;
use crate::view::ObventView;
use crate::ObventError;

pub use crate::kind::KindRole;

/// [`KindRole::Class`] spelled as a constant for macro-generated code.
pub const KIND_ROLE_CLASS: KindRole = KindRole::Class;
/// [`KindRole::Interface`] spelled as a constant for macro-generated code.
pub const KIND_ROLE_INTERFACE: KindRole = KindRole::Interface;

/// A registered deserializer producing the dynamic view of a concrete
/// obvent class (used for interface subscriptions, §5.5.1-style filters and
/// diagnostics).
pub type ViewDecoder = fn(&[u8]) -> Result<ObventView, ObventError>;

#[derive(Default)]
struct Inner {
    kinds: HashMap<KindId, &'static ObventKind>,
    decoders: HashMap<KindId, ViewDecoder>,
}

fn registry() -> &'static RwLock<Inner> {
    static REGISTRY: OnceLock<RwLock<Inner>> = OnceLock::new();
    REGISTRY.get_or_init(|| RwLock::new(Inner::default()))
}

/// Registers (or finds) a kind. Invoked by generated `kind()` methods —
/// direct supertypes must already be registered, which the generated code
/// guarantees by touching them first.
///
/// # Panics
///
/// Panics on a kind-name hash collision with differing declarations, or if a
/// direct supertype has not been registered (both are programming errors in
/// hand-written registrations; generated code cannot trigger them).
pub fn register(name: &'static str, role: KindRole, supers: &[KindId]) -> &'static ObventKind {
    crate::builtin::ensure_registered();
    register_raw(name, role, supers)
}

pub(crate) fn register_raw(
    name: &'static str,
    role: KindRole,
    supers: &[KindId],
) -> &'static ObventKind {
    let id = KindId::from_name(name);

    // Fast path: already registered.
    if let Some(existing) = lookup(id) {
        assert_eq!(
            existing.name(),
            name,
            "kind id collision: {name} vs {}",
            existing.name()
        );
        assert_eq!(
            existing.supers(),
            supers,
            "kind {name} re-registered with different supertypes"
        );
        return existing;
    }

    // Compute the ancestry closure outside the lock.
    let mut ancestry = vec![id];
    {
        let inner = registry().read().expect("kind registry poisoned");
        for sup in supers {
            let sup_kind = inner
                .kinds
                .get(sup)
                .unwrap_or_else(|| panic!("supertype {sup} of {name} not registered"));
            for anc in sup_kind.ancestry() {
                if !ancestry.contains(anc) {
                    ancestry.push(*anc);
                }
            }
        }
    }
    let qos = QosSpec::resolve(&ancestry);
    let kind: &'static ObventKind = Box::leak(Box::new(ObventKind::new(
        name,
        role,
        supers.to_vec(),
        ancestry,
        qos,
    )));

    let mut inner = registry().write().expect("kind registry poisoned");
    // Another thread may have won the race; keep the first registration.
    inner.kinds.entry(id).or_insert(kind)
}

/// Looks up a kind by id.
pub fn lookup(id: KindId) -> Option<&'static ObventKind> {
    registry()
        .read()
        .expect("kind registry poisoned")
        .kinds
        .get(&id)
        .copied()
}

/// True if `sub` is registered and is `sup` or one of its subtypes.
pub fn is_subtype(sub: KindId, sup: KindId) -> bool {
    lookup(sub).is_some_and(|k| k.is_subtype_of(sup))
}

/// All registered kinds that are subtypes of `id` (including `id` itself if
/// registered). Order is unspecified.
pub fn subtypes_of(id: KindId) -> Vec<&'static ObventKind> {
    registry()
        .read()
        .expect("kind registry poisoned")
        .kinds
        .values()
        .filter(|k| k.is_subtype_of(id))
        .copied()
        .collect()
}

/// All registered kinds. Order is unspecified.
pub fn all_kinds() -> Vec<&'static ObventKind> {
    registry()
        .read()
        .expect("kind registry poisoned")
        .kinds
        .values()
        .copied()
        .collect()
}

/// Registers the view decoder for a concrete class (generated code calls
/// this alongside kind registration).
pub fn register_decoder(id: KindId, decoder: ViewDecoder) {
    registry()
        .write()
        .expect("kind registry poisoned")
        .decoders
        .entry(id)
        .or_insert(decoder);
}

/// Decodes a serialized obvent of kind `id` into its dynamic view.
///
/// # Errors
///
/// [`ObventError::NoDecoder`] if no concrete class with that id registered a
/// decoder in this process; any decoding error from the payload.
pub fn decode_view(id: KindId, payload: &[u8]) -> Result<ObventView, ObventError> {
    let decoder = registry()
        .read()
        .expect("kind registry poisoned")
        .decoders
        .get(&id)
        .copied()
        .ok_or(ObventError::NoDecoder(id))?;
    decoder(payload)
}
