//! Sharded parallel broker hot path.
//!
//! Everything downstream of a publish is per-channel independent — routing,
//! indexed matching, group-protocol stepping, and fan-out never cross
//! channel boundaries — so channel ownership can be partitioned across a
//! worker pool while the node stays a deterministic state machine:
//!
//! - [`ShardRouter`] assigns every [`KindId`] to one of N shards with a
//!   seed-stable hash: a pure function of `(kind, shards, shard_seed)`,
//!   identical on every node and across runs.
//! - [`ShardPool`] spawns one OS thread per shard. Each worker **owns** its
//!   shard's [`Channel`] structs (filter index, group-protocol state,
//!   membership) plus a private storage fragment and RNG stream, so the
//!   matching and encode path runs without any lock.
//! - Deterministic merge: the node stages [`WorkItem`]s tagged with a
//!   global sequence number, dispatches one batch per shard, and blocks on
//!   all replies (a barrier). Every worker returns its effects in item
//!   order; the merge sorts the union by sequence number, so the `Ctx`
//!   observes one canonical effect order regardless of how the worker
//!   threads actually interleaved. With `shards = 1` the engine is never
//!   constructed and the inline path is bit-for-bit unchanged.
//!
//! Worker-side mutations that must survive crashes (e.g. certified-delivery
//! logs) are captured by the storage journal ([`StorageOp`]) and replayed
//! onto the node's authoritative storage during the merge; a rebuilt
//! engine re-seeds each worker's fragment from that storage, so recovery
//! semantics match the inline path.

use std::collections::HashMap;
use std::sync::mpsc::{Receiver, SyncSender};
use std::sync::Arc;
use std::thread::JoinHandle;

use psc_codec::WireBytes;
use psc_filter::{IndexStats, RemoteFilter, Value};
use psc_group::{GroupIo, TimerToken};
use psc_obvent::{KindId, WireObvent};
use psc_simnet::{Duration, NodeId, ScopedStorage, SimTime, Storage, StorageOp};
use psc_snapshot::ProtoCapture;
use psc_telemetry::Registry;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::config::DaceConfig;
use crate::node::{encode_node_msg, kind_name, make_proto, Channel, NodeMsg};

/// The shard index a kind maps to: a pure, seed-stable function of
/// `(kind, shards, seed)` (splitmix64-style finalizer), so every node with
/// the same configuration routes a kind to the same worker and replays
/// identically across runs. `shards <= 1` always yields shard 0.
pub fn shard_assignment(kind: u64, shards: u64, seed: u64) -> u64 {
    if shards <= 1 {
        return 0;
    }
    let mut x = kind ^ seed.rotate_left(17) ^ 0x9e37_79b9_7f4a_7c15;
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^= x >> 31;
    x % shards
}

/// Deterministic kind → shard mapping (see [`shard_assignment`]).
#[derive(Debug, Clone, Copy)]
pub struct ShardRouter {
    shards: usize,
    seed: u64,
}

impl ShardRouter {
    /// A router over `shards` shards mixing `seed` into the hash.
    pub fn new(shards: usize, seed: u64) -> ShardRouter {
        ShardRouter {
            shards: shards.max(1),
            seed,
        }
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The shard owning `kind`.
    pub fn shard_of(&self, kind: KindId) -> usize {
        shard_assignment(kind.as_u64(), self.shards as u64, self.seed) as usize
    }
}

/// One unit of channel work routed to the owning shard.
pub(crate) enum WorkItem {
    /// Create the channel if absent (seeding the worker's storage fragment
    /// with the channel's persisted keys) and run the protocol's
    /// `on_start`.
    Ensure {
        kind: KindId,
        seed_kvs: Vec<(String, Vec<u8>)>,
    },
    Subscribe {
        kind: KindId,
        node: u64,
        sub: u64,
        filter: Option<RemoteFilter>,
    },
    Unsubscribe {
        kind: KindId,
        node: u64,
        sub: u64,
    },
    /// Group-protocol broadcast of an encoded obvent.
    Broadcast { kind: KindId, bytes: WireBytes },
    /// Group-protocol message from a peer.
    OnMessage {
        kind: KindId,
        from: NodeId,
        bytes: WireBytes,
    },
    /// Group-protocol timer expiry.
    OnTimer { kind: KindId, token: TimerToken },
    /// Best-effort path: evaluate destinations (placement + filter index)
    /// and pre-encode the `Direct` envelope once for all remote
    /// destinations.
    Match {
        kind: KindId,
        wire: WireObvent,
        deadline_us: Option<u64>,
    },
}

/// Destinations and the shared pre-encoded envelope of one `Match` item.
pub(crate) struct MatchOutcome {
    pub(crate) destinations: Vec<NodeId>,
    /// Encoded `NodeMsg::Direct`, present iff some destination is remote
    /// (serialize-once fan-out, now computed off the main thread).
    pub(crate) encoded: Option<WireBytes>,
}

/// Everything one [`WorkItem`] emitted, in the exact order the inline path
/// would have applied it: sends during the protocol callback, then timers,
/// then local deliveries.
pub(crate) struct ItemEffects {
    pub(crate) seq: u64,
    pub(crate) storage: Vec<StorageOp>,
    pub(crate) sends: Vec<(NodeId, WireBytes)>,
    pub(crate) timers: Vec<(Duration, TimerToken)>,
    pub(crate) delivered: Vec<(NodeId, WireBytes)>,
    pub(crate) matched: Option<MatchOutcome>,
}

impl ItemEffects {
    fn empty(seq: u64) -> ItemEffects {
        ItemEffects {
            seq,
            storage: Vec::new(),
            sends: Vec::new(),
            timers: Vec::new(),
            delivered: Vec::new(),
            matched: None,
        }
    }
}

/// Read-only probe of worker-owned state (depths, inspect, oracle); only
/// valid between batches, when no work is staged.
pub(crate) enum Query {
    QueueDepths,
    Channels,
    FilterOracle(Value),
    /// Snapshot capture of every protocol channel on this shard (a pure
    /// read; the worker discards any incidental journal).
    Capture { now: SimTime },
}

pub(crate) enum QueryReply {
    QueueDepths(Vec<(KindId, Vec<(&'static str, u64)>)>),
    Channels(Vec<ChannelSnapshot>),
    FilterOracle(Vec<(KindId, Vec<String>)>),
    Capture(Vec<(KindId, Vec<u64>, ProtoCapture)>),
}

/// The observable state of one channel, rendered identically by the inline
/// and sharded `Inspect` paths.
pub(crate) struct ChannelSnapshot {
    pub(crate) kind: KindId,
    pub(crate) proto: Option<&'static str>,
    pub(crate) members: Vec<NodeId>,
    pub(crate) stats: IndexStats,
    pub(crate) depths: Vec<(&'static str, u64)>,
}

enum ToWorker {
    Batch {
        now: SimTime,
        /// The node's snapshot wave at dispatch, tagged onto every `Data`
        /// frame the batch emits (Lai–Yang colouring; see `SnapPlane`).
        snap: u64,
        items: Vec<(u64, WorkItem)>,
    },
    Query(Query),
    Shutdown,
}

enum FromWorker {
    Batch(Vec<ItemEffects>),
    Query(QueryReply),
}

/// One shard's state, owned by its worker thread: the channels hashed to
/// this shard, a journaled storage fragment, and a private RNG stream.
struct Worker {
    shard: usize,
    self_id: NodeId,
    config: DaceConfig,
    telemetry: Arc<Registry>,
    channels: HashMap<KindId, Channel>,
    storage: Storage,
    rng: StdRng,
}

impl Worker {
    fn new(shard: usize, self_id: NodeId, config: DaceConfig, telemetry: Arc<Registry>) -> Worker {
        // Distinct deterministic stream per (seed, node, shard) so two
        // shards (or two nodes) never share randomness.
        let stream = shard_assignment(self_id.0, u64::MAX, config.shard_seed)
            ^ shard_assignment(shard as u64 + 1, u64::MAX, config.shard_seed.rotate_left(31));
        Worker {
            shard,
            self_id,
            config,
            telemetry,
            channels: HashMap::new(),
            storage: {
                let mut s = Storage::new();
                s.enable_journal();
                s
            },
            rng: StdRng::seed_from_u64(stream),
        }
    }

    fn run(mut self, rx: Receiver<ToWorker>, tx: SyncSender<FromWorker>) {
        let _ = self.shard;
        loop {
            match rx.recv() {
                Ok(ToWorker::Batch { now, snap, items }) => {
                    let effects: Vec<ItemEffects> = items
                        .into_iter()
                        .map(|(seq, item)| self.run_item(now, snap, seq, item))
                        .collect();
                    if tx.send(FromWorker::Batch(effects)).is_err() {
                        break;
                    }
                }
                Ok(ToWorker::Query(query)) => {
                    if tx.send(FromWorker::Query(self.answer(query))).is_err() {
                        break;
                    }
                }
                Ok(ToWorker::Shutdown) | Err(_) => break,
            }
        }
    }

    fn run_item(&mut self, now: SimTime, snap: u64, seq: u64, item: WorkItem) -> ItemEffects {
        let mut fx = ItemEffects::empty(seq);
        match item {
            WorkItem::Ensure { kind, seed_kvs } => {
                if !self.channels.contains_key(&kind) {
                    // Seed without journaling: these keys already live in
                    // the authoritative store, and mirroring them back
                    // would re-append them to the node's WAL only in
                    // sharded runs.
                    for (key, value) in seed_kvs {
                        self.storage.seed_raw(key, value);
                    }
                    let qos = psc_obvent::registry::lookup(kind)
                        .map(|k| k.qos().clone())
                        .unwrap_or_default();
                    let proto = make_proto(&qos, &self.config);
                    let has_proto = proto.is_some();
                    self.channels.insert(kind, Channel::new(proto));
                    if has_proto {
                        self.with_proto(now, snap, kind, &mut fx, |proto, io| proto.on_start(io));
                    }
                }
            }
            WorkItem::Subscribe {
                kind,
                node,
                sub,
                filter,
            } => {
                if let Some(ch) = self.channels.get_mut(&kind) {
                    ch.subscribe(node, sub, filter);
                }
            }
            WorkItem::Unsubscribe { kind, node, sub } => {
                if let Some(ch) = self.channels.get_mut(&kind) {
                    ch.unsubscribe(node, sub);
                }
            }
            WorkItem::Broadcast { kind, bytes } => {
                self.with_proto(now, snap, kind, &mut fx, |proto, io| proto.broadcast(io, bytes));
            }
            WorkItem::OnMessage { kind, from, bytes } => {
                self.with_proto(now, snap, kind, &mut fx, |proto, io| {
                    proto.on_message(io, from, &bytes)
                });
            }
            WorkItem::OnTimer { kind, token } => {
                self.with_proto(now, snap, kind, &mut fx, |proto, io| proto.on_timer(io, token));
            }
            WorkItem::Match {
                kind,
                wire,
                deadline_us,
            } => {
                if let Some(ch) = self.channels.get(&kind) {
                    let destinations = match self.config.placement {
                        crate::config::Placement::Subscriber => ch.members.clone(),
                        _ => ch.filtered_destinations(&wire),
                    };
                    let remote = destinations.iter().any(|&d| d != self.self_id);
                    let encoded = remote.then(|| {
                        encode_node_msg(&NodeMsg::Direct {
                            wire: wire.clone(),
                            deadline: deadline_us,
                        })
                    });
                    fx.matched = Some(MatchOutcome {
                        destinations,
                        encoded,
                    });
                } else {
                    fx.matched = Some(MatchOutcome {
                        destinations: Vec::new(),
                        encoded: None,
                    });
                }
            }
        }
        fx.storage = self.storage.take_journal();
        fx
    }

    /// Runs a closure over a channel's protocol exactly like the inline
    /// `with_channel_proto`, but buffering effects into `fx` instead of the
    /// live `Ctx`.
    fn with_proto(
        &mut self,
        now: SimTime,
        snap: u64,
        kind: KindId,
        fx: &mut ItemEffects,
        f: impl FnOnce(&mut dyn psc_group::Multicast, &mut dyn GroupIo),
    ) {
        let Some(channel) = self.channels.get_mut(&kind) else {
            return;
        };
        let Channel { proto, members, .. } = channel;
        if let Some(proto) = proto.as_mut() {
            let mut io = WorkerIo {
                kind,
                self_id: self.self_id,
                now,
                snap,
                members,
                storage: &mut self.storage,
                rng: &mut self.rng,
                telemetry: &self.telemetry,
                sends: &mut fx.sends,
                timers: &mut fx.timers,
                delivered: &mut fx.delivered,
                last_encoded: None,
            };
            f(proto.as_mut(), &mut io);
        }
    }

    fn sorted_kinds(&self) -> Vec<KindId> {
        let mut kinds: Vec<KindId> = self.channels.keys().copied().collect();
        kinds.sort();
        kinds
    }

    fn answer(&mut self, query: Query) -> QueryReply {
        match query {
            Query::Capture { now } => {
                let mut out: Vec<(KindId, Vec<u64>, ProtoCapture)> = Vec::new();
                for kind in self.sorted_kinds() {
                    if self.channels[&kind].proto.is_none() {
                        continue;
                    }
                    let members: Vec<u64> =
                        self.channels[&kind].members.iter().map(|n| n.0).collect();
                    let mut fx = ItemEffects::empty(0);
                    let mut capture = None;
                    // Capture runs with the wave tag 0: it is a pure read
                    // and must emit no sends; the throwaway effects and any
                    // incidental journal are discarded below.
                    self.with_proto(now, 0, kind, &mut fx, |proto, io| {
                        capture = Some(proto.capture(io))
                    });
                    let _ = self.storage.take_journal();
                    debug_assert!(
                        fx.sends.is_empty() && fx.delivered.is_empty(),
                        "capture must be a pure read"
                    );
                    if let Some(capture) = capture {
                        out.push((kind, members, capture));
                    }
                }
                QueryReply::Capture(out)
            }
            Query::QueueDepths => QueryReply::QueueDepths(
                self.sorted_kinds()
                    .into_iter()
                    .filter_map(|kind| {
                        self.channels[&kind]
                            .proto
                            .as_ref()
                            .map(|p| (kind, p.queue_depths()))
                    })
                    .collect(),
            ),
            Query::Channels => QueryReply::Channels(
                self.sorted_kinds()
                    .into_iter()
                    .map(|kind| {
                        let ch = &self.channels[&kind];
                        ChannelSnapshot {
                            kind,
                            proto: ch.proto.as_ref().map(|p| p.proto_name()),
                            members: ch.members.clone(),
                            stats: ch.index.stats(),
                            depths: ch
                                .proto
                                .as_ref()
                                .map(|p| p.queue_depths())
                                .unwrap_or_default(),
                        }
                    })
                    .collect(),
            ),
            Query::FilterOracle(probe) => QueryReply::FilterOracle(
                self.sorted_kinds()
                    .into_iter()
                    .map(|kind| {
                        let ch = &self.channels[&kind];
                        let mut findings = Vec::new();
                        if let Err(err) = ch.index.check_consistency() {
                            findings.push(format!(
                                "channel {}: index audit failed: {err}",
                                kind_name(kind)
                            ));
                        }
                        let indexed = ch.index.matching(&probe);
                        let naive = ch.index.naive_matching(&probe);
                        if indexed != naive {
                            findings.push(format!(
                                "channel {}: indexed matching diverged from naive: {:?} vs {:?}",
                                kind_name(kind),
                                indexed,
                                naive
                            ));
                        }
                        (kind, findings)
                    })
                    .collect(),
            ),
        }
    }
}

/// The worker-side [`GroupIo`]: protocol effects go into the item's ordered
/// buffers, storage into the shard's journaled fragment, randomness into the
/// shard's private stream. Mirrors the inline `ChannelIo` (including the
/// encode memo) so protocol behavior is identical in both modes.
struct WorkerIo<'a> {
    kind: KindId,
    self_id: NodeId,
    now: SimTime,
    /// The node's snapshot wave, tagged onto every outgoing `Data` frame.
    snap: u64,
    members: &'a [NodeId],
    storage: &'a mut Storage,
    rng: &'a mut StdRng,
    telemetry: &'a Registry,
    sends: &'a mut Vec<(NodeId, WireBytes)>,
    timers: &'a mut Vec<(Duration, TimerToken)>,
    delivered: &'a mut Vec<(NodeId, WireBytes)>,
    /// Memo of the last protocol buffer → encoded `NodeMsg::Data` pair
    /// (serialize-once fan-out across back-to-back member sends).
    last_encoded: Option<(WireBytes, WireBytes)>,
}

impl GroupIo for WorkerIo<'_> {
    fn self_id(&self) -> NodeId {
        self.self_id
    }

    fn members(&self) -> &[NodeId] {
        self.members
    }

    fn now(&self) -> SimTime {
        self.now
    }

    fn send(&mut self, to: NodeId, bytes: WireBytes) {
        if let Some((prev, encoded)) = &self.last_encoded {
            if prev.ptr_eq(&bytes) {
                let encoded = encoded.clone();
                self.sends.push((to, encoded));
                return;
            }
        }
        let encoded = encode_node_msg(&NodeMsg::Data {
            channel: self.kind,
            snap: self.snap,
            bytes: bytes.clone(),
        });
        self.sends.push((to, encoded.clone()));
        self.last_encoded = Some((bytes, encoded));
    }

    fn deliver(&mut self, origin: NodeId, payload: WireBytes) {
        self.telemetry.bump("group.delivered", 1);
        self.delivered.push((origin, payload));
    }

    fn set_timer(&mut self, after: Duration, token: TimerToken) {
        self.timers.push((after, token));
    }

    fn storage(&mut self) -> ScopedStorage<'_> {
        self.storage.scoped(format!("ch/{}/", self.kind))
    }

    fn rng(&mut self) -> &mut dyn rand::RngCore {
        self.rng
    }

    fn metric(&mut self, name: &'static str, delta: u64) {
        if self.telemetry.is_enabled() {
            self.telemetry.bump(&format!("group.{name}"), delta);
        }
    }
}

struct WorkerHandle {
    tx: SyncSender<ToWorker>,
    rx: Receiver<FromWorker>,
    thread: Option<JoinHandle<()>>,
}

/// One OS thread per shard, each owning its [`Worker`] state, driven in
/// strict lockstep: the node sends at most one batch (or query) per worker
/// and blocks on the reply, so the channels stay bounded and the merge is a
/// barrier.
pub(crate) struct ShardPool {
    workers: Vec<WorkerHandle>,
}

impl ShardPool {
    fn spawn(shards: usize, node: NodeId, config: &DaceConfig, telemetry: &Arc<Registry>) -> ShardPool {
        let workers = (0..shards)
            .map(|idx| {
                // Lockstep request/response: ≤1 batch in flight plus a
                // final shutdown, so tiny bounds suffice (backpressure by
                // construction, crossbeam-style).
                let (tx, worker_rx) = std::sync::mpsc::sync_channel::<ToWorker>(2);
                let (worker_tx, rx) = std::sync::mpsc::sync_channel::<FromWorker>(1);
                let worker = Worker::new(idx, node, config.clone(), Arc::clone(telemetry));
                let thread = std::thread::Builder::new()
                    .name(format!("psc-dace-shard-n{}-s{idx}", node.0))
                    .spawn(move || worker.run(worker_rx, worker_tx))
                    .expect("spawn shard worker");
                WorkerHandle {
                    tx,
                    rx,
                    thread: Some(thread),
                }
            })
            .collect();
        ShardPool { workers }
    }
}

impl Drop for ShardPool {
    fn drop(&mut self) {
        for worker in &self.workers {
            let _ = worker.tx.send(ToWorker::Shutdown);
        }
        for worker in &mut self.workers {
            if let Some(thread) = worker.thread.take() {
                let _ = thread.join();
            }
        }
    }
}

/// What the node must do with one staged item's effects at merge time.
pub(crate) enum PendingAction {
    /// Protocol/membership item: apply storage, sends, timers, deliveries.
    Proto,
    /// A `Match` item: route `wire` to the returned destinations with the
    /// captured transmission parameters.
    Direct {
        wire: WireObvent,
        priority: i64,
        deadline: Option<SimTime>,
    },
}

/// One staged item awaiting its worker's effects.
pub(crate) struct PendingItem {
    pub(crate) seq: u64,
    pub(crate) kind: KindId,
    pub(crate) action: PendingAction,
}

/// The node-side face of the pool: routes staged work, dispatches batches,
/// and merges the replies back into one canonical (sequence-ordered)
/// effect stream.
pub(crate) struct ShardEngine {
    router: ShardRouter,
    pool: ShardPool,
    /// Kinds whose `Ensure` has been staged (the sharded twin of
    /// `channels.contains_key`).
    pub(crate) ensured: std::collections::HashSet<KindId>,
    /// Whether each ensured kind runs a group protocol — derivable on the
    /// main thread because `make_proto` is a pure function of the QoS and
    /// config.
    pub(crate) has_proto: HashMap<KindId, bool>,
    staged: Vec<Vec<(u64, WorkItem)>>,
    pending: Vec<PendingItem>,
    next_seq: u64,
    /// High-water staged depth per shard since the last watchdog sweep.
    peak_depth: Vec<u64>,
}

impl ShardEngine {
    pub(crate) fn new(
        shards: usize,
        node: NodeId,
        config: &DaceConfig,
        telemetry: &Arc<Registry>,
    ) -> ShardEngine {
        let shards = shards.max(1);
        ShardEngine {
            router: ShardRouter::new(shards, config.shard_seed),
            pool: ShardPool::spawn(shards, node, config, telemetry),
            ensured: std::collections::HashSet::new(),
            has_proto: HashMap::new(),
            staged: (0..shards).map(|_| Vec::new()).collect(),
            pending: Vec::new(),
            next_seq: 0,
            peak_depth: vec![0; shards],
        }
    }

    pub(crate) fn has_pending(&self) -> bool {
        !self.pending.is_empty()
    }

    /// Routes one item to its kind's shard, tagging it with the global
    /// sequence number that fixes its place in the merged effect order.
    pub(crate) fn stage(&mut self, kind: KindId, item: WorkItem, action: PendingAction) {
        self.next_seq += 1;
        let seq = self.next_seq;
        let shard = self.router.shard_of(kind);
        self.staged[shard].push((seq, item));
        self.pending.push(PendingItem { seq, kind, action });
    }

    /// Sends every shard its batch, blocks until all replies arrive (the
    /// merge barrier), and returns the staged items zipped with their
    /// effects in ascending sequence order.
    pub(crate) fn dispatch(
        &mut self,
        now: SimTime,
        snap: u64,
        telemetry: &Registry,
    ) -> (Vec<PendingItem>, Vec<ItemEffects>) {
        let depths: Vec<u64> = self.staged.iter().map(|s| s.len() as u64).collect();
        let active = depths.iter().filter(|&&d| d > 0).count() as u64;
        if telemetry.is_enabled() {
            let max = depths.iter().copied().max().unwrap_or(0);
            let min = depths.iter().copied().min().unwrap_or(0);
            telemetry.bump("shard.batches", active);
            telemetry.bump("shard.items", depths.iter().sum());
            telemetry.bump("shard.imbalance", max - min);
            if active > 1 {
                // The merge barrier had to wait on more than one shard.
                telemetry.bump("shard.merge.waits", 1);
            }
            for (idx, depth) in depths.iter().enumerate() {
                telemetry.gauge(&format!("shard.{idx}.depth")).set(*depth as i64);
            }
        }
        for (idx, depth) in depths.iter().enumerate() {
            if *depth > self.peak_depth[idx] {
                self.peak_depth[idx] = *depth;
            }
        }
        let mut dispatched: Vec<usize> = Vec::new();
        for (idx, items) in self.staged.iter_mut().enumerate() {
            if items.is_empty() {
                continue;
            }
            let batch = std::mem::take(items);
            self.pool.workers[idx]
                .tx
                .send(ToWorker::Batch {
                    now,
                    snap,
                    items: batch,
                })
                .expect("shard worker alive");
            dispatched.push(idx);
        }
        let mut effects: Vec<ItemEffects> = Vec::with_capacity(self.pending.len());
        for idx in dispatched {
            match self.pool.workers[idx].rx.recv().expect("shard worker reply") {
                FromWorker::Batch(fx) => effects.extend(fx),
                FromWorker::Query(_) => unreachable!("no query in flight during dispatch"),
            }
        }
        effects.sort_by_key(|fx| fx.seq);
        let pending = std::mem::take(&mut self.pending);
        debug_assert_eq!(pending.len(), effects.len());
        (pending, effects)
    }

    fn query_all(&self, query: impl Fn() -> Query) -> Vec<QueryReply> {
        debug_assert!(self.pending.is_empty(), "queries only run between batches");
        for worker in &self.pool.workers {
            worker
                .tx
                .send(ToWorker::Query(query()))
                .expect("shard worker alive");
        }
        self.pool
            .workers
            .iter()
            .map(|w| match w.rx.recv().expect("shard worker reply") {
                FromWorker::Query(reply) => reply,
                FromWorker::Batch(_) => unreachable!("no batch in flight during query"),
            })
            .collect()
    }

    /// Per-channel protocol queue depths across all shards, sorted by kind.
    pub(crate) fn queue_depths(&self) -> Vec<(KindId, Vec<(&'static str, u64)>)> {
        let mut merged: Vec<(KindId, Vec<(&'static str, u64)>)> = self
            .query_all(|| Query::QueueDepths)
            .into_iter()
            .flat_map(|reply| match reply {
                QueryReply::QueueDepths(depths) => depths,
                _ => unreachable!("queue-depths reply"),
            })
            .collect();
        merged.sort_by_key(|(kind, _)| *kind);
        merged
    }

    /// Channel state snapshots across all shards, sorted by kind.
    pub(crate) fn channel_snapshots(&self) -> Vec<ChannelSnapshot> {
        let mut merged: Vec<ChannelSnapshot> = self
            .query_all(|| Query::Channels)
            .into_iter()
            .flat_map(|reply| match reply {
                QueryReply::Channels(snaps) => snaps,
                _ => unreachable!("channels reply"),
            })
            .collect();
        merged.sort_by_key(|snap| snap.kind);
        merged
    }

    /// Runs the filter-oracle audit on every shard, merged sorted by kind.
    pub(crate) fn filter_oracle(&self, probe: &Value) -> Vec<String> {
        let mut merged: Vec<(KindId, Vec<String>)> = self
            .query_all(|| Query::FilterOracle(probe.clone()))
            .into_iter()
            .flat_map(|reply| match reply {
                QueryReply::FilterOracle(findings) => findings,
                _ => unreachable!("filter-oracle reply"),
            })
            .collect();
        merged.sort_by_key(|(kind, _)| *kind);
        merged.into_iter().flat_map(|(_, f)| f).collect()
    }

    /// Snapshot captures of every protocol channel across all shards,
    /// merged sorted by kind; each entry carries the channel's members as
    /// raw node ids (what `ChannelFrag` records).
    pub(crate) fn capture_channels(&self, now: SimTime) -> Vec<(KindId, Vec<u64>, ProtoCapture)> {
        let mut merged: Vec<(KindId, Vec<u64>, ProtoCapture)> = self
            .query_all(|| Query::Capture { now })
            .into_iter()
            .flat_map(|reply| match reply {
                QueryReply::Capture(caps) => caps,
                _ => unreachable!("capture reply"),
            })
            .collect();
        merged.sort_by_key(|(kind, _, _)| *kind);
        merged
    }

    /// Drains the per-shard high-water staged depths (for watchdog sweeps).
    pub(crate) fn take_peak_depths(&mut self) -> Vec<u64> {
        let peaks = self.peak_depth.clone();
        for d in &mut self.peak_depth {
            *d = 0;
        }
        peaks
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn assignment_is_stable_and_in_range() {
        for kind in 0..1000u64 {
            for shards in 1..=8u64 {
                let a = shard_assignment(kind, shards, 42);
                let b = shard_assignment(kind, shards, 42);
                assert_eq!(a, b);
                assert!(a < shards);
            }
        }
    }

    #[test]
    fn assignment_pinned_values() {
        // Seed-stability contract: these exact values must never change, or
        // recorded runs stop replaying.
        assert_eq!(shard_assignment(0, 4, 0), 3);
        assert_eq!(shard_assignment(1, 4, 0), 0);
        assert_eq!(shard_assignment(2, 4, 0), 2);
        assert_eq!(shard_assignment(7, 4, 0), 1);
        assert_eq!(shard_assignment(42, 4, 0), 1);
        assert_eq!(shard_assignment(42, 4, 7), 2);
        assert_eq!(shard_assignment(7, 1, 9), 0);
        let spread: std::collections::HashSet<u64> =
            (0..64).map(|k| shard_assignment(k, 4, 0)).collect();
        assert_eq!(spread.len(), 4, "64 kinds must reach all 4 shards");
    }
}
