//! Node-side state of the Chandy–Lamport snapshot plane.
//!
//! `psc-snapshot` owns the cut *data model* (fragments, clocks, the
//! assembled [`ClusterCut`]); this module owns one node's *participation
//! state* in a wave: the wave id, its own captured fragment, the per-link
//! in-flight recordings, and (on the initiator) the cut under assembly.
//! The protocol driving it lives in `node.rs` — markers and fragments are
//! [`NodeMsg`](crate::node) variants, and every other transport message
//! carries a wave tag so the capture-before-processing rule works over
//! the non-FIFO simulated network (Lai–Yang-style colouring: a receiver
//! seeing a higher wave captures its state *before* processing the
//! message, so no post-cut send can land in a pre-cut state).
//!
//! Liveness under loss, partitions and crashes comes from two timers
//! folded into one retry tick ([`DaceTimer::SnapRetry`](crate::node)):
//! every node re-floods its marker while the wave is open, and after
//! [`FORCE_CLOSE_TICKS`] ticks a node force-closes recordings whose
//! marker never arrived (partitioned or crashed peer) so its fragment —
//! and therefore the cut — still completes.

use std::collections::BTreeMap;

use psc_codec::WireBytes;
use psc_snapshot::{ClusterCut, InFlightObvent, InFlightRec, MsgRef, NodeFrag, VClock};

/// Sentinel initiator id for waves joined via a tagged message before any
/// marker arrived: the tag carries only the wave id, so the participant
/// captures immediately and learns where to send its fragment from the
/// (retransmitted) marker.
pub(crate) const UNKNOWN_INITIATOR: u64 = u64::MAX;

/// Per-link cap on individually identified in-flight obvents; messages
/// recorded past it are counted in [`InFlightRec::others`] instead.
pub(crate) const INFLIGHT_CAP: usize = 64;

/// Retry ticks before recordings without a marker are force-closed.
pub(crate) const FORCE_CLOSE_TICKS: u64 = 8;

/// One node's snapshot-plane state: the causal clock it stamps into every
/// publish, and its participation in (at most) one snapshot wave at a
/// time — a newer wave supersedes an unfinished older one.
#[derive(Default)]
pub(crate) struct SnapPlane {
    /// Highest wave this node has participated in (0 = never).
    pub(crate) wave: u64,
    /// Initiator of the current wave ([`UNKNOWN_INITIATOR`] until learned).
    pub(crate) initiator: u64,
    /// Whether this node initiated the current wave.
    pub(crate) initiating: bool,
    /// This node's vector clock: ticked on publish, merged from the wire
    /// stamp on delivery.
    pub(crate) clock: VClock,
    /// Whether this incarnation went through crash recovery (its fragment
    /// is exempt from clock-based cut checks: the in-memory clock
    /// restarted).
    pub(crate) recovered: bool,
    /// Own fragment, captured at wave start; taken when finalized.
    pub(crate) frag: Option<NodeFrag>,
    /// Whether the own fragment is finalized (inserted into the cut on
    /// the initiator, sent to the initiator otherwise).
    pub(crate) frag_done: bool,
    /// The encoded `SnapFrag` message, kept to re-send on a duplicate
    /// initiator marker (fragment-loss recovery).
    pub(crate) frag_msg: Option<WireBytes>,
    /// Per-incoming-link in-flight recording, keyed by peer.
    pub(crate) recording: BTreeMap<u64, InFlightRec>,
    /// Recordings were force-closed by the retry timer (the fragment may
    /// undercount in-flight traffic from dead peers).
    pub(crate) forced: bool,
    /// Initiator-side cut under assembly.
    pub(crate) cut: Option<ClusterCut>,
    /// The last completed cut (initiator only).
    pub(crate) completed: Option<ClusterCut>,
    /// Retry ticks elapsed in the current wave.
    pub(crate) retry_ticks: u64,
    /// Whether a `SnapRetry` timer is armed.
    pub(crate) retry_armed: bool,
}

impl SnapPlane {
    /// Enters wave `wave`: resets per-wave state and opens one in-flight
    /// recording per peer. The caller captures the fragment first (capture
    /// strictly precedes any processing of wave-tagged traffic).
    pub(crate) fn begin(
        &mut self,
        wave: u64,
        initiator: u64,
        initiating: bool,
        peers: &[u64],
        frag: NodeFrag,
    ) {
        self.wave = wave;
        self.initiator = initiator;
        self.initiating = initiating;
        self.frag = Some(frag);
        self.frag_done = false;
        self.frag_msg = None;
        self.forced = false;
        self.retry_ticks = 0;
        self.recording = peers
            .iter()
            .map(|&p| {
                (
                    p,
                    InFlightRec {
                        from: p,
                        ..InFlightRec::default()
                    },
                )
            })
            .collect();
        self.cut = None;
        // A new wave supersedes the previous cut regardless of role — an
        // initiator re-initiating must not let the stale cut satisfy the
        // completion check of the new wave.
        self.completed = None;
    }

    /// Closes the recording of the link from `peer` (its marker arrived).
    pub(crate) fn close_link(&mut self, peer: u64) {
        if let Some(rec) = self.recording.get_mut(&peer) {
            rec.closed = true;
        }
    }

    /// Records one pre-cut message from `peer` into the link's open
    /// recording. Returns `true` when an identified obvent was recorded
    /// (as opposed to counted or ignored).
    pub(crate) fn record(
        &mut self,
        peer: u64,
        channel: u64,
        id: Option<MsgRef>,
        len: u64,
    ) -> bool {
        if self.frag_done {
            return false; // recordings already folded into the fragment
        }
        let Some(rec) = self.recording.get_mut(&peer) else {
            return false;
        };
        if rec.closed {
            return false;
        }
        rec.bytes += len;
        match id {
            Some(id) if rec.obvents.len() < INFLIGHT_CAP => {
                rec.obvents.push(InFlightObvent { channel, id });
                true
            }
            _ => {
                rec.others += 1;
                false
            }
        }
    }

    /// Number of recordings still awaiting their link's marker.
    pub(crate) fn open_links(&self) -> usize {
        self.recording.values().filter(|r| !r.closed).count()
    }

    /// Whether the own fragment can be finalized: every link's marker has
    /// arrived (or the retry timer gave up on the stragglers), and — for
    /// participants — the initiator's identity is known.
    pub(crate) fn frag_ready(&self) -> bool {
        if self.wave == 0 || self.frag_done {
            return false;
        }
        if self.open_links() > 0 && !self.forced {
            return false;
        }
        self.initiating || self.initiator != UNKNOWN_INITIATOR
    }

    /// Whether this node still has work outstanding in the current wave
    /// (drives marker re-floods and force-close ticks).
    pub(crate) fn in_progress(&self) -> bool {
        if self.wave == 0 {
            return false;
        }
        if self.initiating {
            self.completed.is_none()
        } else {
            !self.frag_done
        }
    }
}
