//! DACE deployment configuration.

use psc_group::LpbcastConfig;
use psc_simnet::{Duration, NodeId};

/// Where remote (migratable) filters are evaluated (paper §3.3.3: "it is
/// interesting to apply filters on foreign hosts, which are possibly
/// entirely dedicated to filtering").
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum Placement {
    /// Filters are factored at each publisher: obvents are sent only to
    /// nodes with at least one matching subscription (default).
    #[default]
    Publisher,
    /// Publishers send once to a dedicated filtering host, whose compound
    /// index fans out to matching subscribers.
    Broker(NodeId),
    /// No upstream filtering: obvents go to every type-interested node and
    /// filters run subscriber-side only (the baseline E2 compares against).
    Subscriber,
}

/// Configuration of a DACE node.
#[derive(Debug, Clone, PartialEq)]
pub struct DaceConfig {
    /// Remote-filter placement for best-effort channels.
    pub placement: Placement,
    /// When set, best-effort channels use gossip (lpbcast) instead of
    /// direct per-subscriber sends — the scalable substrate of §4.2.
    pub gossip: Option<LpbcastConfig>,
    /// Serialization interval of the bandwidth-limited transmit queue
    /// (one direct obvent leaves the node per interval; this is what makes
    /// priorities observable).
    pub transmit_interval: Duration,
    /// Period of the reflexive control re-announcements (subscriptions and
    /// published kinds), providing anti-entropy under loss and for late
    /// joiners.
    pub announce_interval: Duration,
    /// Stall-watchdog sweep period. `None` (the default) disables the
    /// watchdog and leaves the simulator's event schedule untouched; when
    /// set, the node periodically feeds its transmit/parked/channel queue
    /// depths into a health monitor that emits `health.*` metrics.
    pub watchdog: Option<Duration>,
    /// Number of channel shards. `1` (the default) keeps today's inline
    /// single-threaded hot path bit-for-bit unchanged; `N > 1` spawns a
    /// worker pool where each worker owns the `Channel` state (filter
    /// index, group protocol, membership) of the kinds hashed to its
    /// shard, and per-publish matching/encoding runs concurrently with a
    /// deterministic (shard, sequence) effect merge.
    pub shards: usize,
    /// Seed mixed into the shard-assignment hash and the per-shard RNG
    /// streams. Shard assignment is a pure function of
    /// `(KindId, shards, shard_seed)`, so two nodes with the same config
    /// route a kind to the same shard index.
    pub shard_seed: u64,
    /// Write-ahead logging of durable channel state (default on). Along
    /// the paper's Fig. 4 lattice, `Certified` delivery implies durability:
    /// every persisted key of a certified channel — plus durable
    /// subscriptions and parked obvents — is also appended (CRC-framed) to
    /// a per-channel append-only log, and recovery replays the log before
    /// reading anything. Volatile kinds opt out by not being certified.
    pub wal: bool,
    /// Issue an fsync barrier after every commit (default on). Turning
    /// this off deliberately models a broken disk discipline: under a
    /// disk-fault crash the un-fsynced log suffix is lost, and the
    /// harness's durability oracle must catch the resulting ghost/dup.
    pub wal_sync: bool,
    /// Rotate a log's active segment once it exceeds this many bytes.
    pub wal_segment_bytes: usize,
    /// Compact a log (checkpoint the live keyspace into a fresh segment,
    /// drop the older ones) once its total size exceeds this many bytes.
    pub wal_compact_threshold: usize,
    /// Retry period of the snapshot plane: the initiator retransmits
    /// markers to nodes whose fragment is still missing, and participants
    /// use the same tick to force-close in-flight recordings whose marker
    /// never arrives (partitioned or crashed peers), keeping the wave live
    /// under loss.
    pub snapshot_retry: Duration,
    /// Deliberately broken marker discipline for oracle validation: a
    /// receiver seeing a message tagged with a newer snapshot wave
    /// *processes it first* and only then captures — the classic
    /// Chandy–Lamport bug that lets a post-cut send slip into the
    /// receiver's pre-cut state. The harness's `broken::SkewedMarkers`
    /// deployment turns this on to prove the snapshot oracles can see the
    /// resulting ghost.
    pub snapshot_skew: bool,
}

impl Default for DaceConfig {
    fn default() -> Self {
        DaceConfig {
            placement: Placement::Publisher,
            gossip: None,
            transmit_interval: Duration::from_micros(100),
            announce_interval: Duration::from_millis(200),
            watchdog: None,
            shards: 1,
            shard_seed: 0,
            wal: true,
            wal_sync: true,
            wal_segment_bytes: 16 * 1024,
            wal_compact_threshold: 64 * 1024,
            snapshot_retry: Duration::from_millis(25),
            snapshot_skew: false,
        }
    }
}
