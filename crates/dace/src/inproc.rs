//! The live (threaded) deployment: an in-process bus.
//!
//! The deterministic simulator hosts the full DACE engine; the runnable
//! examples want real threads and blocking handlers instead. [`Bus`] wires
//! any number of [`Domain`]s together inside one OS process: a publish on
//! any member domain reaches every member's matching subscriptions (kind
//! conformance, remote and local filters, thread policies all apply — they
//! are implemented by `pubsub-core`'s dispatch). Delivery between domains
//! is a reliable in-memory hop, i.e. the bus behaves like a loss-free LAN.

use std::sync::{Arc, RwLock, Weak};

use psc_obvent::WireObvent;
use pubsub_core::{
    DeliverySink, Dissemination, Domain, ExecMode, PublishError, SubId, SubscribeError,
    SubscriptionRecord, UnsubscribeError,
};

#[derive(Default)]
struct BusInner {
    sinks: RwLock<Vec<DeliverySink>>,
}

/// An in-process pub/sub bus connecting several domains.
///
/// ```
/// use psc_dace::inproc::Bus;
/// use pubsub_core::{obvent, publish, FilterSpec};
///
/// obvent! { pub class Ping { n: u32 } }
///
/// let bus = Bus::new();
/// let publisher = bus.domain(2);
/// let subscriber = bus.domain(2);
/// let sub = subscriber.subscribe(FilterSpec::accept_all(), |p: Ping| {
///     assert_eq!(*p.n(), 1);
/// });
/// sub.activate().unwrap();
/// publish!(publisher, Ping::new(1)).unwrap();
/// publisher.drain();
/// subscriber.drain();
/// ```
#[derive(Clone, Default)]
pub struct Bus {
    inner: Arc<BusInner>,
}

struct BusBackend {
    bus: Weak<BusInner>,
}

impl Dissemination for BusBackend {
    fn publish(&self, wire: WireObvent) -> Result<(), PublishError> {
        let Some(bus) = self.bus.upgrade() else {
            return Err(PublishError::Backend("bus is gone".into()));
        };
        // Snapshot the membership, then deliver with the lock released:
        // sinks are cheap `Weak` handles, and `deliver` runs inline-mode
        // handlers synchronously — holding the read guard across them would
        // let one slow (or bus-reentrant) handler stall every concurrent
        // `domain`/`prune` that needs the write lock.
        let sinks: Vec<DeliverySink> = bus
            .sinks
            .read()
            .expect("bus sinks poisoned")
            .clone();
        drop(bus);
        for sink in &sinks {
            sink.deliver(&wire);
        }
        Ok(())
    }

    fn subscribe(&self, _record: SubscriptionRecord) -> Result<(), SubscribeError> {
        Ok(())
    }

    fn unsubscribe(&self, _id: SubId) -> Result<(), UnsubscribeError> {
        Ok(())
    }
}

impl Bus {
    /// Creates an empty bus.
    pub fn new() -> Bus {
        Bus::default()
    }

    /// Creates a new member domain whose handlers run on a pool of
    /// `threads` workers (so thread policies are observable). Use
    /// [`Bus::domain_inline`] for synchronous dispatch.
    pub fn domain(&self, threads: usize) -> Domain {
        self.make_domain(ExecMode::Pool { threads })
    }

    /// Creates a new member domain with inline (synchronous) dispatch.
    pub fn domain_inline(&self) -> Domain {
        self.make_domain(ExecMode::Inline)
    }

    fn make_domain(&self, mode: ExecMode) -> Domain {
        let bus = Arc::downgrade(&self.inner);
        let domain = Domain::with_backend(mode, move |_sink| Box::new(BusBackend { bus }));
        self.inner
            .sinks
            .write()
            .expect("bus sinks poisoned")
            .push(domain.sink());
        domain
    }

    /// Number of member domains still alive.
    pub fn member_count(&self) -> usize {
        self.inner
            .sinks
            .read()
            .expect("bus sinks poisoned")
            .iter()
            .filter(|s| s.is_alive())
            .count()
    }

    /// Drops sinks of domains that no longer exist.
    pub fn prune(&self) {
        self.inner
            .sinks
            .write()
            .expect("bus sinks poisoned")
            .retain(|s| s.is_alive());
    }
}

impl std::fmt::Debug for Bus {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Bus")
            .field("members", &self.member_count())
            .finish()
    }
}
