use std::sync::{Arc, Mutex};

use psc_group::LpbcastConfig;
use psc_obvent::builtin::{Certified, FifoOrder, Prioritary, Reliable, Timely, TotalOrder};
use psc_obvent::declare_obvent_model;
use psc_simnet::{Duration, NodeId, SimConfig, SimNet, SimTime};
use pubsub_core::FilterSpec;

use crate::{DaceConfig, DaceNode, Placement};

declare_obvent_model! {
    pub class PlainTick { tag: String, n: u64 }
}
declare_obvent_model! {
    pub class FancyTick extends PlainTick { extra: String }
}
declare_obvent_model! {
    pub class ReliableTick implements [Reliable] { n: u64 }
}
declare_obvent_model! {
    pub class FifoTick implements [FifoOrder] { n: u64 }
}
declare_obvent_model! {
    pub class TotalTick implements [TotalOrder] { n: u64 }
}
declare_obvent_model! {
    pub class CertifiedTick implements [Certified] { n: u64 }
}
declare_obvent_model! {
    pub class UrgentTick implements [Prioritary] { n: u64, priority: i32 }
}
declare_obvent_model! {
    pub class FreshTick implements [Timely] { n: u64, ttl_ms: u64, birth_ms: u64 }
}

type Seen<T> = Arc<Mutex<Vec<T>>>;

fn cluster(n: usize, sim_config: SimConfig, dace_config: DaceConfig) -> (SimNet, Vec<NodeId>) {
    let mut sim = SimNet::new(sim_config);
    // Ids are assigned sequentially from 0; precompute the cluster list.
    let ids: Vec<NodeId> = (0..n as u64).map(NodeId).collect();
    for i in 0..n {
        let factory = DaceNode::factory(ids.clone(), dace_config.clone());
        let id = sim.add_node(format!("dace{i}"), factory);
        assert_eq!(id, ids[i]);
    }
    (sim, ids)
}

/// Subscribes `node` to `PlainTick`s (and subtypes) recording tags.
fn subscribe_plain(sim: &mut SimNet, node: NodeId, filter: FilterSpec<PlainTick>) -> Seen<String> {
    let seen: Seen<String> = Arc::new(Mutex::new(Vec::new()));
    let sink = seen.clone();
    DaceNode::drive(sim, node, move |domain| {
        let sub = domain.subscribe(filter, move |t: PlainTick| {
            sink.lock().unwrap().push(t.tag().clone());
        });
        sub.activate().unwrap();
        sub.detach();
    });
    seen
}

fn settle(sim: &mut SimNet, ms: u64) {
    let deadline = sim.now() + Duration::from_millis(ms);
    sim.run_until(deadline);
}

#[test]
fn cross_node_delivery_with_publisher_side_filtering() {
    let (mut sim, ids) = cluster(3, SimConfig::default(), DaceConfig::default());
    let cheap = subscribe_plain(
        &mut sim,
        ids[1],
        FilterSpec::remote(psc_filter::rfilter!(n < 10)),
    );
    let expensive = subscribe_plain(
        &mut sim,
        ids[2],
        FilterSpec::remote(psc_filter::rfilter!(n >= 10)),
    );
    settle(&mut sim, 10);
    sim.reset_stats();

    DaceNode::publish_from(&mut sim, ids[0], PlainTick::new("low".into(), 5));
    DaceNode::publish_from(&mut sim, ids[0], PlainTick::new("high".into(), 50));
    settle(&mut sim, 50);

    assert_eq!(*cheap.lock().unwrap(), vec!["low".to_string()]);
    assert_eq!(*expensive.lock().unwrap(), vec!["high".to_string()]);
}

#[test]
fn publisher_side_filtering_saves_messages_vs_subscriber_side() {
    let run = |placement: Placement| {
        let config = DaceConfig {
            placement,
            ..DaceConfig::default()
        };
        let (mut sim, ids) = cluster(6, SimConfig::default(), config);
        // Five subscribers, all with highly selective filters (match none).
        for &id in &ids[1..] {
            subscribe_plain(
                &mut sim,
                id,
                FilterSpec::remote(psc_filter::rfilter!(n > 1000)),
            );
        }
        settle(&mut sim, 10);
        sim.reset_stats();
        for i in 0..20u64 {
            DaceNode::publish_from(&mut sim, ids[0], PlainTick::new("x".into(), i));
        }
        settle(&mut sim, 100);
        sim.stats().sent
    };
    let publisher_side = run(Placement::Publisher);
    let subscriber_side = run(Placement::Subscriber);
    assert!(
        publisher_side < subscriber_side / 2,
        "publisher-side filtering ({publisher_side} msgs) should send far less \
         than subscriber-side ({subscriber_side} msgs)"
    );
}

#[test]
fn local_delivery_reaches_collocated_subscribers() {
    let (mut sim, ids) = cluster(2, SimConfig::default(), DaceConfig::default());
    let local = subscribe_plain(&mut sim, ids[0], FilterSpec::accept_all());
    let remote = subscribe_plain(&mut sim, ids[1], FilterSpec::accept_all());
    settle(&mut sim, 10);
    DaceNode::publish_from(&mut sim, ids[0], PlainTick::new("t".into(), 1));
    settle(&mut sim, 50);
    assert_eq!(local.lock().unwrap().len(), 1, "publisher-local subscriber");
    assert_eq!(remote.lock().unwrap().len(), 1, "remote subscriber");
}

#[test]
fn supertype_subscription_catches_later_advertised_subtype() {
    let (mut sim, ids) = cluster(2, SimConfig::default(), DaceConfig::default());
    // Subscribe to the base class before FancyTick was ever published.
    let seen = subscribe_plain(&mut sim, ids[1], FilterSpec::accept_all());
    settle(&mut sim, 10);
    // First publish triggers the advertisement; a subsequent one must be
    // routed (space/time decoupling, not retroactive delivery).
    DaceNode::publish_from(
        &mut sim,
        ids[0],
        FancyTick::new(PlainTick::new("first".into(), 1), "e".into()),
    );
    settle(&mut sim, 300);
    DaceNode::publish_from(
        &mut sim,
        ids[0],
        FancyTick::new(PlainTick::new("second".into(), 2), "e".into()),
    );
    settle(&mut sim, 300);
    let got = seen.lock().unwrap().clone();
    assert!(
        got.contains(&"second".to_string()),
        "subscriber must have joined the subtype channel, got {got:?}"
    );
}

#[test]
fn unsubscribe_stops_cross_node_delivery() {
    let (mut sim, ids) = cluster(2, SimConfig::default(), DaceConfig::default());
    let seen: Seen<String> = Arc::new(Mutex::new(Vec::new()));
    let sink = seen.clone();
    let handle: Arc<Mutex<Option<pubsub_core::Subscription>>> = Arc::new(Mutex::new(None));
    let slot = handle.clone();
    DaceNode::drive(&mut sim, ids[1], move |domain| {
        let sub = domain.subscribe(FilterSpec::accept_all(), move |t: PlainTick| {
            sink.lock().unwrap().push(t.tag().clone());
        });
        sub.activate().unwrap();
        *slot.lock().unwrap() = Some(sub);
    });
    settle(&mut sim, 10);
    DaceNode::publish_from(&mut sim, ids[0], PlainTick::new("before".into(), 1));
    settle(&mut sim, 50);
    DaceNode::drive(&mut sim, ids[1], move |_domain| {
        let guard = handle.lock().unwrap();
        guard.as_ref().unwrap().deactivate().unwrap();
    });
    settle(&mut sim, 50);
    DaceNode::publish_from(&mut sim, ids[0], PlainTick::new("after".into(), 2));
    settle(&mut sim, 50);
    assert_eq!(*seen.lock().unwrap(), vec!["before".to_string()]);
}

#[test]
fn reliable_obvents_survive_loss() {
    let (mut sim, ids) = cluster(5, SimConfig::with_loss(0.3), DaceConfig::default());
    let seens: Vec<Seen<u64>> = ids[1..]
        .iter()
        .map(|&id| {
            let seen: Seen<u64> = Arc::new(Mutex::new(Vec::new()));
            let sink = seen.clone();
            DaceNode::drive(&mut sim, id, move |domain| {
                let sub = domain.subscribe(FilterSpec::accept_all(), move |t: ReliableTick| {
                    sink.lock().unwrap().push(*t.n());
                });
                sub.activate().unwrap();
                sub.detach();
            });
            seen
        })
        .collect();
    // Let control traffic (subject to the same loss) converge via
    // re-announcements.
    settle(&mut sim, 700);
    for i in 0..5u64 {
        DaceNode::publish_from(&mut sim, ids[0], ReliableTick::new(i));
    }
    settle(&mut sim, 500);
    for (i, seen) in seens.iter().enumerate() {
        let mut got = seen.lock().unwrap().clone();
        got.sort_unstable();
        assert_eq!(got, vec![0, 1, 2, 3, 4], "subscriber {i}");
    }
}

#[test]
fn fifo_obvents_arrive_in_publish_order() {
    let (mut sim, ids) = cluster(3, SimConfig::with_seed(23), DaceConfig::default());
    let seen: Seen<u64> = Arc::new(Mutex::new(Vec::new()));
    let sink = seen.clone();
    DaceNode::drive(&mut sim, ids[1], move |domain| {
        let sub = domain.subscribe(FilterSpec::accept_all(), move |t: FifoTick| {
            sink.lock().unwrap().push(*t.n());
        });
        sub.activate().unwrap();
        sub.detach();
    });
    settle(&mut sim, 10);
    for i in 0..25u64 {
        DaceNode::publish_from(&mut sim, ids[0], FifoTick::new(i));
    }
    settle(&mut sim, 500);
    let got = seen.lock().unwrap().clone();
    assert_eq!(got, (0..25).collect::<Vec<u64>>());
}

#[test]
fn total_order_obvents_agree_across_subscribers() {
    let (mut sim, ids) = cluster(4, SimConfig::with_seed(31), DaceConfig::default());
    let mut seens = Vec::new();
    for &id in &ids[2..] {
        let seen: Seen<u64> = Arc::new(Mutex::new(Vec::new()));
        let sink = seen.clone();
        DaceNode::drive(&mut sim, id, move |domain| {
            let sub = domain.subscribe(FilterSpec::accept_all(), move |t: TotalTick| {
                sink.lock().unwrap().push(*t.n());
            });
            sub.activate().unwrap();
            sub.detach();
        });
        seens.push(seen);
    }
    settle(&mut sim, 10);
    // Two concurrent publishers.
    for i in 0..10u64 {
        DaceNode::publish_from(&mut sim, ids[0], TotalTick::new(i));
        DaceNode::publish_from(&mut sim, ids[1], TotalTick::new(100 + i));
    }
    settle(&mut sim, 1_000);
    let a = seens[0].lock().unwrap().clone();
    let b = seens[1].lock().unwrap().clone();
    assert_eq!(a.len(), 20);
    assert_eq!(a, b, "total order must agree at all subscribers");
}

#[test]
fn certified_obvents_reach_a_crashed_subscriber_after_recovery() {
    let (mut sim, ids) = cluster(2, SimConfig::default(), DaceConfig::default());
    let seen = {
        let seen: Seen<u64> = Arc::new(Mutex::new(Vec::new()));
        let sink = seen.clone();
        DaceNode::drive(&mut sim, ids[1], move |domain| {
            let sub = domain.subscribe(FilterSpec::accept_all(), move |t: CertifiedTick| {
                sink.lock().unwrap().push(*t.n());
            });
            sub.activate_with_id(9_001).unwrap();
            sub.detach();
        });
        seen
    };
    settle(&mut sim, 10);
    // Deliver one normally.
    DaceNode::publish_from(&mut sim, ids[0], CertifiedTick::new(1));
    settle(&mut sim, 100);
    assert_eq!(*seen.lock().unwrap(), vec![1]);

    // Crash the subscriber, publish while it is down.
    sim.crash(ids[1]);
    DaceNode::publish_from(&mut sim, ids[0], CertifiedTick::new(2));
    settle(&mut sim, 300);

    // Recover and re-attach the durable subscription (paper §3.4.1).
    sim.recover(ids[1]);
    let seen2: Seen<u64> = Arc::new(Mutex::new(Vec::new()));
    let sink = seen2.clone();
    DaceNode::drive(&mut sim, ids[1], move |domain| {
        let sub = domain.subscribe(FilterSpec::accept_all(), move |t: CertifiedTick| {
            sink.lock().unwrap().push(*t.n());
        });
        sub.activate_with_id(9_001).unwrap();
        sub.detach();
    });
    settle(&mut sim, 2_000);
    assert_eq!(
        *seen2.lock().unwrap(),
        vec![2],
        "the certified obvent published during the crash must arrive after recovery"
    );
}

#[test]
fn priorities_reorder_the_transmit_queue() {
    // A slow uplink (5 ms per message) creates a backlog; the prioritary
    // obvent published last must arrive first.
    let config = DaceConfig {
        transmit_interval: Duration::from_millis(5),
        ..DaceConfig::default()
    };
    let (mut sim, ids) = cluster(2, SimConfig::default(), config);
    let seen: Seen<u64> = Arc::new(Mutex::new(Vec::new()));
    let sink = seen.clone();
    DaceNode::drive(&mut sim, ids[1], move |domain| {
        let sub = domain.subscribe(FilterSpec::accept_all(), move |t: UrgentTick| {
            sink.lock().unwrap().push(*t.n());
        });
        sub.activate().unwrap();
        sub.detach();
    });
    settle(&mut sim, 10);
    // Publish 5 low-priority then 1 high-priority in one action burst.
    DaceNode::drive(&mut sim, ids[0], |domain| {
        for i in 0..5u64 {
            domain.publish(UrgentTick::new(i, 0)).unwrap();
        }
        domain.publish(UrgentTick::new(99, 10)).unwrap();
    });
    settle(&mut sim, 200);
    let got = seen.lock().unwrap().clone();
    assert_eq!(got.len(), 6);
    assert_eq!(got[0], 99, "the high-priority obvent must overtake, got {got:?}");
}

#[test]
fn timely_obvents_expire_in_a_backlogged_queue() {
    let config = DaceConfig {
        transmit_interval: Duration::from_millis(20),
        ..DaceConfig::default()
    };
    let (mut sim, ids) = cluster(2, SimConfig::default(), config);
    let seen: Seen<u64> = Arc::new(Mutex::new(Vec::new()));
    let sink = seen.clone();
    DaceNode::drive(&mut sim, ids[1], move |domain| {
        let sub = domain.subscribe(FilterSpec::accept_all(), move |t: FreshTick| {
            sink.lock().unwrap().push(*t.n());
        });
        sub.activate().unwrap();
        sub.detach();
    });
    settle(&mut sim, 10);
    // 6 obvents with a 30 ms TTL over a 20 ms-per-message uplink: the tail
    // of the queue must expire.
    DaceNode::drive(&mut sim, ids[0], |domain| {
        for i in 0..6u64 {
            domain.publish(FreshTick::new(i, 30, 0)).unwrap();
        }
    });
    settle(&mut sim, 500);
    let delivered = seen.lock().unwrap().len();
    assert!(
        (1..6).contains(&delivered),
        "expected partial expiry, delivered {delivered}"
    );
    let stats = DaceNode::stats_of(&mut sim, ids[0]);
    assert_eq!(stats.expired as usize, 6 - delivered);
}

#[test]
fn broker_placement_routes_through_the_filtering_host() {
    let config = DaceConfig {
        placement: Placement::Broker(NodeId(1)),
        ..DaceConfig::default()
    };
    let (mut sim, ids) = cluster(4, SimConfig::default(), config);
    let matching = subscribe_plain(
        &mut sim,
        ids[2],
        FilterSpec::remote(psc_filter::rfilter!(n < 10)),
    );
    let non_matching = subscribe_plain(
        &mut sim,
        ids[3],
        FilterSpec::remote(psc_filter::rfilter!(n > 1000)),
    );
    settle(&mut sim, 10);
    DaceNode::publish_from(&mut sim, ids[0], PlainTick::new("via-broker".into(), 5));
    settle(&mut sim, 100);
    assert_eq!(*matching.lock().unwrap(), vec!["via-broker".to_string()]);
    assert!(non_matching.lock().unwrap().is_empty());
}

#[test]
fn gossip_mode_disseminates_unreliable_obvents() {
    let config = DaceConfig {
        gossip: Some(LpbcastConfig {
            fanout: 4,
            ..LpbcastConfig::default()
        }),
        ..DaceConfig::default()
    };
    let (mut sim, ids) = cluster(16, SimConfig::with_seed(3), config);
    let seens: Vec<Seen<String>> = ids[1..]
        .iter()
        .map(|&id| subscribe_plain(&mut sim, id, FilterSpec::accept_all()))
        .collect();
    settle(&mut sim, 20);
    DaceNode::publish_from(&mut sim, ids[0], PlainTick::new("rumor".into(), 1));
    sim.run_until(SimTime::from_millis(800));
    let reached = seens
        .iter()
        .filter(|seen| !seen.lock().unwrap().is_empty())
        .count();
    assert_eq!(reached, 15, "gossip with fanout 4 should reach all 15 subscribers");
}

mod inproc_bus {
    use super::*;
    use crate::inproc::Bus;

    #[test]
    fn bus_routes_between_live_domains() {
        let bus = Bus::new();
        let publisher = bus.domain_inline();
        let subscriber = bus.domain_inline();
        let seen: Seen<u64> = Arc::new(Mutex::new(Vec::new()));
        let sink = seen.clone();
        let sub = subscriber.subscribe(FilterSpec::accept_all(), move |t: PlainTick| {
            sink.lock().unwrap().push(*t.n());
        });
        sub.activate().unwrap();
        publisher.publish(PlainTick::new("x".into(), 7)).unwrap();
        assert_eq!(*seen.lock().unwrap(), vec![7]);
        assert_eq!(bus.member_count(), 2);
    }

    #[test]
    fn bus_members_prune_when_dropped() {
        let bus = Bus::new();
        let a = bus.domain_inline();
        {
            let _b = bus.domain_inline();
        }
        bus.prune();
        assert_eq!(bus.member_count(), 1);
        drop(a);
    }

    /// Regression: delivery must not hold the `sinks` read guard across
    /// handler execution. An inline handler that re-enters the bus (here:
    /// pruning, which needs the write lock) deadlocked before the sink
    /// list was cloned out of the lock.
    #[test]
    fn delivery_releases_the_sink_lock_before_running_handlers() {
        let bus = Bus::new();
        let publisher = bus.domain_inline();
        let subscriber = bus.domain_inline();
        let reentrant = bus.clone();
        let seen: Seen<u64> = Arc::new(Mutex::new(Vec::new()));
        let sink = seen.clone();
        let sub = subscriber.subscribe(FilterSpec::accept_all(), move |t: PlainTick| {
            reentrant.prune(); // write-locks `sinks` mid-delivery
            sink.lock().unwrap().push(*t.n());
        });
        sub.activate().unwrap();
        // Run the publish on a helper thread so a regression fails the
        // test instead of hanging the suite.
        let (done_tx, done_rx) = std::sync::mpsc::channel();
        let publish_thread = std::thread::spawn(move || {
            publisher.publish(PlainTick::new("x".into(), 3)).unwrap();
            done_tx.send(()).unwrap();
        });
        done_rx
            .recv_timeout(std::time::Duration::from_secs(10))
            .expect("publish deadlocked: sink lock held across handler dispatch");
        publish_thread.join().unwrap();
        assert_eq!(*seen.lock().unwrap(), vec![3]);
    }
}

mod failure_injection {
    use super::*;

    /// A partition separates publisher and subscriber; reliable obvents
    /// published during the partition are lost (links dropped), but the
    /// anti-entropy control plane re-converges after healing and later
    /// obvents flow again.
    #[test]
    fn partition_and_heal_reconverges() {
        let (mut sim, ids) = cluster(3, SimConfig::default(), DaceConfig::default());
        let seen: Seen<u64> = Arc::new(Mutex::new(Vec::new()));
        let sink = seen.clone();
        DaceNode::drive(&mut sim, ids[2], move |domain| {
            let sub = domain.subscribe(FilterSpec::accept_all(), move |t: ReliableTick| {
                sink.lock().unwrap().push(*t.n());
            });
            sub.activate().unwrap();
            sub.detach();
        });
        settle(&mut sim, 10);
        DaceNode::publish_from(&mut sim, ids[0], ReliableTick::new(1));
        settle(&mut sim, 100);
        assert_eq!(*seen.lock().unwrap(), vec![1]);

        // Publisher side isolated from the subscriber.
        sim.partition(&[&[ids[0], ids[1]], &[ids[2]]]);
        DaceNode::publish_from(&mut sim, ids[0], ReliableTick::new(2));
        settle(&mut sim, 300);
        assert_eq!(*seen.lock().unwrap(), vec![1], "partitioned: nothing arrives");

        sim.heal_partition();
        // Reliable retransmission (volatile, but the publisher never saw an
        // ack from n2) resumes across the healed link.
        settle(&mut sim, 1_000);
        assert_eq!(
            *seen.lock().unwrap(),
            vec![1, 2],
            "retransmission must cross the healed partition"
        );
        DaceNode::publish_from(&mut sim, ids[0], ReliableTick::new(3));
        settle(&mut sim, 500);
        assert_eq!(*seen.lock().unwrap(), vec![1, 2, 3]);
    }

    /// Subscriptions installed while the control plane is lossy still
    /// converge via periodic re-announcement.
    #[test]
    fn subscription_announcements_survive_control_loss() {
        let config = DaceConfig {
            announce_interval: Duration::from_millis(100),
            ..DaceConfig::default()
        };
        let (mut sim, ids) = cluster(2, SimConfig::with_loss(0.6), config);
        let seen = subscribe_plain(&mut sim, ids[1], FilterSpec::accept_all());
        // With 60% loss the first announcement probably died; anti-entropy
        // re-floods every 100 ms.
        settle(&mut sim, 2_000);
        for i in 0..30u64 {
            DaceNode::publish_from(&mut sim, ids[0], PlainTick::new(format!("m{i}"), i));
        }
        settle(&mut sim, 2_000);
        let got = seen.lock().unwrap().len();
        assert!(
            got > 0,
            "after control-plane convergence some best-effort obvents must land"
        );
    }

    /// Gossip keeps disseminating while nodes crash and recover mid-rumor.
    #[test]
    fn gossip_survives_node_churn() {
        let config = DaceConfig {
            gossip: Some(LpbcastConfig {
                fanout: 5,
                rounds: 12,
                ..LpbcastConfig::default()
            }),
            ..DaceConfig::default()
        };
        let (mut sim, ids) = cluster(12, SimConfig::with_seed(8), config);
        let seens: Vec<Seen<String>> = ids[1..]
            .iter()
            .map(|&id| subscribe_plain(&mut sim, id, FilterSpec::accept_all()))
            .collect();
        settle(&mut sim, 20);
        // Crash a third of the cluster, publish, recover them mid-gossip.
        for &id in &ids[9..] {
            sim.crash(id);
        }
        DaceNode::publish_from(&mut sim, ids[0], PlainTick::new("churn".into(), 1));
        settle(&mut sim, 60);
        for &id in &ids[9..] {
            sim.recover(id);
        }
        settle(&mut sim, 1_500);
        // Every node that stayed up must have the rumor.
        let up_reached = seens[..8]
            .iter()
            .filter(|seen| !seen.lock().unwrap().is_empty())
            .count();
        assert_eq!(up_reached, 8, "all surviving nodes must receive the rumor");
    }
}

mod properties {
    use super::*;
    use proptest::prelude::*;

    /// Subscribes `node` to `FancyTick` (the subtype) recording tags.
    fn subscribe_fancy(sim: &mut SimNet, node: NodeId) -> Seen<String> {
        let seen: Seen<String> = Arc::new(Mutex::new(Vec::new()));
        let sink = seen.clone();
        DaceNode::drive(sim, node, move |domain| {
            let sub = domain.subscribe(FilterSpec::accept_all(), move |t: FancyTick| {
                sink.lock().unwrap().push(t.tag().clone());
            });
            sub.activate().unwrap();
            sub.detach();
        });
        seen
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// §3.2 subtyping: a kind subscription receives every publication
        /// whose class is a subtype of the subscribed kind — and a subtype
        /// subscription never sees supertype-only publications.
        #[test]
        fn kind_subscription_receives_all_subtype_publications(
            seed in 0u64..1_000,
            classes in proptest::collection::vec(0usize..2, 1..10),
        ) {
            let (mut sim, ids) = cluster(3, SimConfig::with_seed(seed), DaceConfig::default());
            let base_sub = subscribe_plain(&mut sim, ids[1], FilterSpec::accept_all());
            let fancy_sub = subscribe_fancy(&mut sim, ids[2]);
            settle(&mut sim, 10);

            // First publication of each class advertises it; publish one
            // throwaway of each so later routing is converged.
            DaceNode::publish_from(&mut sim, ids[0], PlainTick::new("warm-p".into(), 0));
            DaceNode::publish_from(
                &mut sim,
                ids[0],
                FancyTick::new(PlainTick::new("warm-f".into(), 0), "e".into()),
            );
            settle(&mut sim, 500);
            base_sub.lock().unwrap().clear();
            fancy_sub.lock().unwrap().clear();

            for (i, &class) in classes.iter().enumerate() {
                let tag = format!("m{i}");
                match class {
                    0 => DaceNode::publish_from(
                        &mut sim,
                        ids[0],
                        PlainTick::new(tag, i as u64),
                    ),
                    _ => DaceNode::publish_from(
                        &mut sim,
                        ids[0],
                        FancyTick::new(PlainTick::new(tag, i as u64), "x".into()),
                    ),
                }
                settle(&mut sim, 20);
            }
            settle(&mut sim, 500);

            let all: Vec<String> = (0..classes.len()).map(|i| format!("m{i}")).collect();
            let fancies: Vec<String> = classes
                .iter()
                .enumerate()
                .filter(|(_, &c)| c != 0)
                .map(|(i, _)| format!("m{i}"))
                .collect();
            prop_assert_eq!(
                base_sub.lock().unwrap().clone(),
                all,
                "supertype subscriber must see every publication, in order"
            );
            prop_assert_eq!(
                fancy_sub.lock().unwrap().clone(),
                fancies,
                "subtype subscriber must see exactly the subtype publications"
            );
        }
    }
}

mod durable_subscriptions {
    use super::*;

    /// §3.4.1: durable subscriptions outlive the process. Obvents arriving
    /// in the window between recovery and `activate_with_id` re-attachment
    /// are parked — and the durable subscription's *filter* governs what is
    /// parked.
    #[test]
    fn parking_respects_the_durable_filter() {
        let (mut sim, ids) = cluster(2, SimConfig::default(), DaceConfig::default());
        let install = |sim: &mut SimNet, sink: Seen<u64>| {
            DaceNode::drive(sim, NodeId(1), move |domain| {
                let sub = domain.subscribe(
                    FilterSpec::remote(psc_filter::rfilter!(n < 10)),
                    move |t: CertifiedTick| {
                        sink.lock().unwrap().push(*t.n());
                    },
                );
                sub.activate_with_id(77).unwrap();
                sub.detach();
            });
        };
        let first: Seen<u64> = Arc::new(Mutex::new(Vec::new()));
        install(&mut sim, first.clone());
        settle(&mut sim, 10);

        sim.crash(ids[1]);
        sim.recover(ids[1]);
        // Retransmissions arrive before the app re-attaches: one matching
        // (n=5), one filtered out (n=50).
        DaceNode::publish_from(&mut sim, ids[0], CertifiedTick::new(5));
        DaceNode::publish_from(&mut sim, ids[0], CertifiedTick::new(50));
        settle(&mut sim, 500);

        let second: Seen<u64> = Arc::new(Mutex::new(Vec::new()));
        install(&mut sim, second.clone());
        settle(&mut sim, 1_000);
        assert_eq!(*first.lock().unwrap(), Vec::<u64>::new());
        assert_eq!(
            *second.lock().unwrap(),
            vec![5],
            "only the filter-matching obvent must be parked and replayed"
        );
    }

    /// Explicit deactivation ends the durable lifetime: nothing is parked
    /// afterwards.
    #[test]
    fn explicit_deactivation_removes_the_durable_record() {
        let (mut sim, ids) = cluster(2, SimConfig::default(), DaceConfig::default());
        let seen: Seen<u64> = Arc::new(Mutex::new(Vec::new()));
        let sink = seen.clone();
        let handle: Arc<Mutex<Option<pubsub_core::Subscription>>> = Arc::new(Mutex::new(None));
        let slot = handle.clone();
        DaceNode::drive(&mut sim, ids[1], move |domain| {
            let sub = domain.subscribe(FilterSpec::accept_all(), move |t: CertifiedTick| {
                sink.lock().unwrap().push(*t.n());
            });
            sub.activate_with_id(88).unwrap();
            *slot.lock().unwrap() = Some(sub);
        });
        settle(&mut sim, 10);
        DaceNode::drive(&mut sim, ids[1], move |_domain| {
            handle.lock().unwrap().as_ref().unwrap().deactivate().unwrap();
        });
        settle(&mut sim, 10);
        // The durable record is gone from stable storage.
        assert_eq!(
            sim.storage(ids[1]).unwrap().keys_with_prefix("dursub/").count(),
            0
        );
        sim.crash(ids[1]);
        sim.recover(ids[1]);
        DaceNode::publish_from(&mut sim, ids[0], CertifiedTick::new(9));
        settle(&mut sim, 500);
        // Nothing parked, nothing delivered: the subscription truly ended.
        assert!(seen.lock().unwrap().is_empty());
    }
}

mod sharded {
    //! The sharded hot path must behave observably like the inline path:
    //! same deliveries, same ordering guarantees, same crash recovery —
    //! only the execution is partitioned across the worker pool.

    use super::*;
    use crate::shard_assignment;

    fn sharded(shards: usize) -> DaceConfig {
        DaceConfig {
            shards,
            ..DaceConfig::default()
        }
    }

    #[test]
    fn cross_node_delivery_with_publisher_side_filtering_at_4_shards() {
        let (mut sim, ids) = cluster(3, SimConfig::default(), sharded(4));
        let cheap = subscribe_plain(
            &mut sim,
            ids[1],
            FilterSpec::remote(psc_filter::rfilter!(n < 10)),
        );
        let expensive = subscribe_plain(
            &mut sim,
            ids[2],
            FilterSpec::remote(psc_filter::rfilter!(n >= 10)),
        );
        settle(&mut sim, 10);
        DaceNode::publish_from(&mut sim, ids[0], PlainTick::new("low".into(), 5));
        DaceNode::publish_from(&mut sim, ids[0], PlainTick::new("high".into(), 50));
        settle(&mut sim, 50);
        assert_eq!(*cheap.lock().unwrap(), vec!["low".to_string()]);
        assert_eq!(*expensive.lock().unwrap(), vec!["high".to_string()]);
    }

    #[test]
    fn total_order_agrees_across_subscribers_at_4_shards() {
        let (mut sim, ids) = cluster(4, SimConfig::with_seed(31), sharded(4));
        let mut seens = Vec::new();
        for &id in &ids[2..] {
            let seen: Seen<u64> = Arc::new(Mutex::new(Vec::new()));
            let sink = seen.clone();
            DaceNode::drive(&mut sim, id, move |domain| {
                let sub = domain.subscribe(FilterSpec::accept_all(), move |t: TotalTick| {
                    sink.lock().unwrap().push(*t.n());
                });
                sub.activate().unwrap();
                sub.detach();
            });
            seens.push(seen);
        }
        settle(&mut sim, 10);
        for i in 0..10u64 {
            DaceNode::publish_from(&mut sim, ids[0], TotalTick::new(i));
            DaceNode::publish_from(&mut sim, ids[1], TotalTick::new(100 + i));
        }
        settle(&mut sim, 1_000);
        let a = seens[0].lock().unwrap().clone();
        let b = seens[1].lock().unwrap().clone();
        assert_eq!(a.len(), 20);
        assert_eq!(a, b, "total order must agree at all subscribers");
    }

    #[test]
    fn certified_survives_crash_and_pool_rebuild_at_4_shards() {
        // The certified log lives in the worker's storage fragment; the
        // journal mirror must land it in authoritative storage so a rebuilt
        // pool (fresh workers, re-seeded fragments) still certifies.
        let (mut sim, ids) = cluster(2, SimConfig::default(), sharded(4));
        let seen = {
            let seen: Seen<u64> = Arc::new(Mutex::new(Vec::new()));
            let sink = seen.clone();
            DaceNode::drive(&mut sim, ids[1], move |domain| {
                let sub = domain.subscribe(FilterSpec::accept_all(), move |t: CertifiedTick| {
                    sink.lock().unwrap().push(*t.n());
                });
                sub.activate_with_id(9_001).unwrap();
                sub.detach();
            });
            seen
        };
        settle(&mut sim, 10);
        DaceNode::publish_from(&mut sim, ids[0], CertifiedTick::new(1));
        settle(&mut sim, 100);
        assert_eq!(*seen.lock().unwrap(), vec![1]);

        sim.crash(ids[1]);
        DaceNode::publish_from(&mut sim, ids[0], CertifiedTick::new(2));
        settle(&mut sim, 300);

        sim.recover(ids[1]);
        let seen2: Seen<u64> = Arc::new(Mutex::new(Vec::new()));
        let sink = seen2.clone();
        DaceNode::drive(&mut sim, ids[1], move |domain| {
            let sub = domain.subscribe(FilterSpec::accept_all(), move |t: CertifiedTick| {
                sink.lock().unwrap().push(*t.n());
            });
            sub.activate_with_id(9_001).unwrap();
            sub.detach();
        });
        settle(&mut sim, 2_000);
        assert_eq!(
            *seen2.lock().unwrap(),
            vec![2],
            "certified delivery must survive a crash that rebuilds the shard pool"
        );
    }

    #[test]
    fn sharded_inspect_matches_inline_inspect() {
        // The report plane must render byte-identically whichever side of
        // the channel map the state lives on.
        let render = |shards: usize| {
            let (mut sim, ids) = cluster(2, SimConfig::default(), sharded(shards));
            subscribe_plain(
                &mut sim,
                ids[1],
                FilterSpec::remote(psc_filter::rfilter!(n < 10)),
            );
            settle(&mut sim, 10);
            DaceNode::publish_from(&mut sim, ids[0], PlainTick::new("x".into(), 5));
            settle(&mut sim, 50);
            DaceNode::inspect_of(&mut sim, ids[1]).expect("node up")
        };
        assert_eq!(render(1), render(4));
    }

    mod proptests {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// Shard assignment is a pure function of (kind, shards, seed),
            /// always in range, and `shards = 1` always maps to shard 0.
            #[test]
            fn assignment_is_pure_and_in_range(
                kind in 0u64..u64::MAX,
                shards in 1u64..17,
                seed in 0u64..u64::MAX,
            ) {
                let a = shard_assignment(kind, shards, seed);
                prop_assert!(a < shards);
                prop_assert_eq!(a, shard_assignment(kind, shards, seed));
                prop_assert_eq!(shard_assignment(kind, 1, seed), 0);
            }
        }
    }
}

mod durable_wal {
    //! The per-channel write-ahead log (`DaceConfig::wal`): a disk-fault
    //! crash wipes the key–value map, so everything the next incarnation
    //! knows was replayed from fsynced log segments — and the certified
    //! stream must still resume exactly-once.

    use super::*;
    use psc_simnet::DiskFault;

    fn install_certified(sim: &mut SimNet, node: NodeId, durable_id: u64, sink: Seen<u64>) {
        DaceNode::drive(sim, node, move |domain| {
            let sub = domain.subscribe(FilterSpec::accept_all(), move |t: CertifiedTick| {
                sink.lock().unwrap().push(*t.n());
            });
            sub.activate_with_id(durable_id).unwrap();
            sub.detach();
        });
    }

    #[test]
    fn certified_stream_resumes_exactly_once_across_a_disk_fault_restart() {
        let (mut sim, ids) = cluster(2, SimConfig::default(), DaceConfig::default());
        let first: Seen<u64> = Arc::new(Mutex::new(Vec::new()));
        install_certified(&mut sim, ids[1], 42, first.clone());
        settle(&mut sim, 10);
        DaceNode::publish_from(&mut sim, ids[0], CertifiedTick::new(1));
        settle(&mut sim, 100);
        assert_eq!(*first.lock().unwrap(), vec![1]);

        // Power loss: only fsynced WAL bytes survive; the kv map is gone.
        sim.crash_with_fault(ids[1], DiskFault::LoseUnsynced);
        DaceNode::publish_from(&mut sim, ids[0], CertifiedTick::new(2));
        settle(&mut sim, 300);

        sim.recover(ids[1]);
        let second: Seen<u64> = Arc::new(Mutex::new(Vec::new()));
        install_certified(&mut sim, ids[1], 42, second.clone());
        settle(&mut sim, 2_000);
        assert_eq!(
            *first.lock().unwrap(),
            vec![1],
            "the pre-crash handler must not fire again"
        );
        assert_eq!(
            *second.lock().unwrap(),
            vec![2],
            "resume must deliver the missed obvent once and never re-deliver the acked one"
        );
    }

    #[test]
    fn parked_obvents_survive_a_disk_fault() {
        let (mut sim, ids) = cluster(2, SimConfig::default(), DaceConfig::default());
        let first: Seen<u64> = Arc::new(Mutex::new(Vec::new()));
        install_certified(&mut sim, ids[1], 7, first.clone());
        settle(&mut sim, 10);

        // Detach via a plain crash; the durable record parks what arrives.
        sim.crash(ids[1]);
        sim.recover(ids[1]);
        DaceNode::publish_from(&mut sim, ids[0], CertifiedTick::new(5));
        settle(&mut sim, 500);

        // Now the disk fault: the parked obvent was already acked back to
        // the publisher, so only its park/<seq> WAL record can save it.
        sim.crash_with_fault(ids[1], DiskFault::LoseUnsynced);
        sim.recover(ids[1]);
        let second: Seen<u64> = Arc::new(Mutex::new(Vec::new()));
        install_certified(&mut sim, ids[1], 7, second.clone());
        settle(&mut sim, 2_000);
        assert_eq!(*first.lock().unwrap(), Vec::<u64>::new());
        assert_eq!(
            *second.lock().unwrap(),
            vec![5],
            "a parked-then-acked obvent is owed to the subscriber across a disk fault"
        );
    }

    #[test]
    fn broken_sync_discipline_loses_an_acked_parked_obvent() {
        // wal_sync: false deliberately models a broken disk discipline.
        // A parked obvent is acked back to the publisher (certified
        // semantics satisfied from its side) and then exists only in the
        // park/<seq> WAL record — which a disk fault destroys when it was
        // never fsynced. The subscriber silently loses a delivery the
        // publisher believes is certified: exactly the violation the
        // harness's durability oracle exists to catch.
        let config = DaceConfig {
            wal_sync: false,
            ..DaceConfig::default()
        };
        let (mut sim, ids) = cluster(2, SimConfig::default(), config);
        let first: Seen<u64> = Arc::new(Mutex::new(Vec::new()));
        install_certified(&mut sim, ids[1], 9, first.clone());
        settle(&mut sim, 10);

        sim.crash(ids[1]);
        sim.recover(ids[1]);
        DaceNode::publish_from(&mut sim, ids[0], CertifiedTick::new(5));
        settle(&mut sim, 500);

        sim.crash_with_fault(ids[1], DiskFault::LoseUnsynced);
        sim.recover(ids[1]);
        let second: Seen<u64> = Arc::new(Mutex::new(Vec::new()));
        install_certified(&mut sim, ids[1], 9, second.clone());
        settle(&mut sim, 2_000);
        assert_eq!(
            *second.lock().unwrap(),
            Vec::<u64>::new(),
            "without fsync the parked obvent must be lost (the wal-correct twin of this \
             scenario, parked_obvents_survive_a_disk_fault, delivers it)"
        );
    }

    #[test]
    fn recovery_is_exact_after_segment_rotation_and_compaction() {
        // Tiny thresholds force many rotations and checkpoint compactions;
        // replay must still reconstruct the exact delivered-set.
        let config = DaceConfig {
            wal_segment_bytes: 256,
            wal_compact_threshold: 1024,
            ..DaceConfig::default()
        };
        let (mut sim, ids) = cluster(2, SimConfig::default(), config);
        let first: Seen<u64> = Arc::new(Mutex::new(Vec::new()));
        install_certified(&mut sim, ids[1], 11, first.clone());
        settle(&mut sim, 10);
        for i in 0..20u64 {
            DaceNode::publish_from(&mut sim, ids[0], CertifiedTick::new(i));
        }
        settle(&mut sim, 1_000);
        assert_eq!(first.lock().unwrap().len(), 20);

        sim.crash_with_fault(ids[1], DiskFault::LoseUnsynced);
        sim.recover(ids[1]);
        let second: Seen<u64> = Arc::new(Mutex::new(Vec::new()));
        install_certified(&mut sim, ids[1], 11, second.clone());
        DaceNode::publish_from(&mut sim, ids[0], CertifiedTick::new(100));
        settle(&mut sim, 2_000);
        assert_eq!(
            *second.lock().unwrap(),
            vec![100],
            "after rotation+compaction, replay must not lose or re-deliver anything"
        );
    }

    #[test]
    fn sharded_wal_recovers_exactly_once_like_inline() {
        // WAL bytes differ across shard counts (protocol msg-ids draw from
        // per-worker RNG streams), but the guarantee must not: either way,
        // a disk-fault restart resumes the certified stream exactly-once,
        // and the same logs exist (journal mirroring captures shard-worker
        // writes as if they were inline).
        for shards in [1usize, 4] {
            let config = DaceConfig {
                shards,
                ..DaceConfig::default()
            };
            let (mut sim, ids) = cluster(2, SimConfig::default(), config);
            let seen: Seen<u64> = Arc::new(Mutex::new(Vec::new()));
            install_certified(&mut sim, ids[1], 21, seen.clone());
            settle(&mut sim, 10);
            for i in 0..5u64 {
                DaceNode::publish_from(&mut sim, ids[0], CertifiedTick::new(i));
            }
            settle(&mut sim, 1_000);
            assert_eq!(seen.lock().unwrap().len(), 5, "shards={shards}");
            let logs = sim.storage(ids[1]).unwrap().wal_logs();
            assert!(
                logs.iter().any(|l| l.starts_with("ch/")) && logs.iter().any(|l| l == "node"),
                "shards={shards}: expected channel + node logs, got {logs:?}"
            );

            sim.crash_with_fault(ids[1], DiskFault::LoseUnsynced);
            sim.recover(ids[1]);
            let second: Seen<u64> = Arc::new(Mutex::new(Vec::new()));
            install_certified(&mut sim, ids[1], 21, second.clone());
            DaceNode::publish_from(&mut sim, ids[0], CertifiedTick::new(100));
            settle(&mut sim, 2_000);
            assert_eq!(
                *second.lock().unwrap(),
                vec![100],
                "shards={shards}: disk-fault restart must resume exactly-once"
            );
        }
    }
}

mod snapshots {
    use super::*;

    fn subscribe_certified(sim: &mut SimNet, node: NodeId) -> Seen<u64> {
        let seen: Seen<u64> = Arc::new(Mutex::new(Vec::new()));
        let sink = seen.clone();
        DaceNode::drive(sim, node, move |domain| {
            let sub = domain.subscribe(FilterSpec::accept_all(), move |t: CertifiedTick| {
                sink.lock().unwrap().push(*t.n());
            });
            sub.activate().unwrap();
            sub.detach();
        });
        seen
    }

    /// One full run: warm up, publish a certified stream, snapshot from n0
    /// while more publishes are in flight, settle, and return the completed
    /// cut's byte-stable rendering.
    fn run_once(sim_config: SimConfig, dace_config: DaceConfig) -> String {
        let (mut sim, ids) = cluster(3, sim_config, dace_config);
        subscribe_certified(&mut sim, ids[1]);
        subscribe_certified(&mut sim, ids[2]);
        settle(&mut sim, 20);
        for i in 0..5u64 {
            DaceNode::publish_from(&mut sim, ids[0], CertifiedTick::new(i));
        }
        // Snapshot while the certified ack/retransmit machinery is hot,
        // with more traffic crossing the wave.
        DaceNode::snapshot_from(&mut sim, ids[0]);
        for i in 5..8u64 {
            DaceNode::publish_from(&mut sim, ids[0], CertifiedTick::new(i));
        }
        settle(&mut sim, 3_000);
        let cut = DaceNode::snapshot_cut_of(&mut sim, ids[0]).expect("cut must complete");
        assert_eq!(cut.snap, 1);
        assert_eq!(cut.initiator, ids[0].0);
        assert!(cut.complete(&[0, 1, 2]));
        assert_eq!(
            cut.consistency_violations(),
            Vec::<String>::new(),
            "a correctly disciplined run must produce a consistent cut"
        );
        cut.render()
    }

    #[test]
    fn snapshot_mid_traffic_completes_and_replays_byte_identically() {
        let a = run_once(SimConfig::with_seed(11), DaceConfig::default());
        let b = run_once(SimConfig::with_seed(11), DaceConfig::default());
        assert_eq!(a, b, "same seed must render the same cluster image");
        assert!(a.contains("cluster snapshot #1"), "{a}");
        for node in ["node n0", "node n1", "node n2"] {
            assert!(a.contains(node), "missing {node} in:\n{a}");
        }
        assert!(a.contains("proto=certified"), "{a}");
    }

    #[test]
    fn snapshot_completes_under_heavy_message_loss() {
        // Markers ride the same lossy links as everything else; liveness
        // comes from the SnapRetry re-floods.
        let render = run_once(SimConfig::with_loss(0.3), DaceConfig::default());
        assert!(render.contains("cluster snapshot #1"));
    }

    #[test]
    fn sharded_snapshot_matches_inline_snapshot() {
        let sharded = DaceConfig {
            shards: 4,
            ..DaceConfig::default()
        };
        let inline = run_once(SimConfig::with_seed(5), DaceConfig::default());
        let sharded = run_once(SimConfig::with_seed(5), sharded);
        // Shard interleaving perturbs timing, so in-flight recordings can
        // differ; the settled channel state (sequences, watermarks,
        // delivered sets) must agree line-for-line.
        let settled = |render: &str| -> Vec<String> {
            render
                .lines()
                .filter(|l| {
                    l.contains("epoch=") || l.contains("watermark") || l.contains("delivered=")
                })
                .map(str::to_string)
                .collect::<Vec<_>>()
        };
        assert_eq!(
            settled(&inline),
            settled(&sharded),
            "inline:\n{inline}\nsharded:\n{sharded}"
        );
    }

    #[test]
    fn second_wave_supersedes_the_first() {
        let (mut sim, ids) = cluster(3, SimConfig::default(), DaceConfig::default());
        subscribe_certified(&mut sim, ids[1]);
        settle(&mut sim, 20);
        DaceNode::publish_from(&mut sim, ids[0], CertifiedTick::new(1));
        DaceNode::snapshot_from(&mut sim, ids[0]);
        settle(&mut sim, 2_000);
        assert!(DaceNode::snapshot_cut_of(&mut sim, ids[0]).is_some());
        DaceNode::publish_from(&mut sim, ids[0], CertifiedTick::new(2));
        DaceNode::snapshot_from(&mut sim, ids[1]);
        settle(&mut sim, 2_000);
        let cut = DaceNode::snapshot_cut_of(&mut sim, ids[1]).expect("second wave completes");
        assert_eq!(cut.snap, 2, "wave ids are monotone across initiators");
        assert_eq!(cut.initiator, ids[1].0);
        // n0's completed cut of wave 1 is retired once it joins wave 2.
        assert!(DaceNode::snapshot_cut_of(&mut sim, ids[0]).is_none());
        let inspect = DaceNode::inspect_of(&mut sim, ids[2]).expect("node up");
        assert!(inspect.contains("snapshot wave=2"), "{inspect}");
    }

    #[test]
    fn reinitiating_node_retires_its_previous_cut_and_completes_again() {
        // Regression: the initiator's completed wave-1 cut must not
        // satisfy wave 2's completion check (it is retired at re-entry).
        let (mut sim, ids) = cluster(3, SimConfig::default(), DaceConfig::default());
        subscribe_certified(&mut sim, ids[1]);
        settle(&mut sim, 20);
        DaceNode::publish_from(&mut sim, ids[0], CertifiedTick::new(1));
        DaceNode::snapshot_from(&mut sim, ids[0]);
        settle(&mut sim, 2_000);
        assert_eq!(DaceNode::snapshot_cut_of(&mut sim, ids[0]).expect("wave 1").snap, 1);
        DaceNode::publish_from(&mut sim, ids[0], CertifiedTick::new(2));
        DaceNode::snapshot_from(&mut sim, ids[0]);
        settle(&mut sim, 2_000);
        let cut = DaceNode::snapshot_cut_of(&mut sim, ids[0]).expect("wave 2 completes");
        assert_eq!(cut.snap, 2, "the re-initiated wave must supersede the first cut");
    }

    #[test]
    fn snapshot_completes_while_a_peer_is_crashed() {
        let (mut sim, ids) = cluster(3, SimConfig::default(), DaceConfig::default());
        subscribe_certified(&mut sim, ids[1]);
        subscribe_certified(&mut sim, ids[2]);
        settle(&mut sim, 20);
        DaceNode::publish_from(&mut sim, ids[0], CertifiedTick::new(7));
        settle(&mut sim, 200);
        sim.crash(ids[2]);
        DaceNode::snapshot_from(&mut sim, ids[0]);
        settle(&mut sim, 1_000);
        // The dead peer cannot contribute a fragment, so the cut stays
        // open; recover it and the retry re-floods ignite its capture.
        assert!(DaceNode::snapshot_cut_of(&mut sim, ids[0]).is_none());
        sim.recover(ids[2]);
        settle(&mut sim, 3_000);
        let cut = DaceNode::snapshot_cut_of(&mut sim, ids[0]).expect("cut after recovery");
        assert!(cut.complete(&[0, 1, 2]));
        let frag = cut.frags.get(&ids[2].0).expect("recovered fragment");
        assert!(frag.recovered, "recovered node must flag its fragment");
        assert_eq!(cut.consistency_violations(), Vec::<String>::new());
    }
}
