#![warn(missing_docs)]

//! # psc-dace — the Distributed Asynchronous Computing Environment
//!
//! The paper's runtime substrate (§4.2): "every obvent class is mapped to a
//! dissemination channel, representing a multicast group, which we refer to
//! as **multicast class**. … such multicast classes are then implemented
//! with different multicast protocols", and control traffic is *reflexive*:
//! "we have adopted a reflexive approach, by using specific channels to
//! disseminate protocol messages, like subscription/unsubscription requests,
//! or the advertisement of the publishing of obvents. Such messages are
//! obvents themselves."
//!
//! This crate implements that architecture over the workspace's substrates:
//!
//! - **class-based dissemination** ([`node::DaceNode`]): one channel per
//!   concrete obvent kind; a subscription to kind `K` joins the channel of
//!   every known subtype of `K`, and joins later-advertised subtypes when
//!   their [`control`] advertisements arrive;
//! - **QoS-driven protocol selection**: each channel runs the `psc-group`
//!   protocol its kind's resolved QoS demands (best-effort / reliable /
//!   FIFO / causal / total / certified, optionally gossip for scalable
//!   best-effort);
//! - **filter placement** ([`config::Placement`]): remote filters are
//!   factored in a [`FilterIndex`](psc_filter::FilterIndex) either at the
//!   publisher, at a designated filtering host (broker), or applied at
//!   subscribers only — the trade-off experiment E2 measures;
//! - **transmission semantics**: on best-effort channels (the only place
//!   the Fig. 4 precedence rules allow them) obvents with a `priority`
//!   property jump the bandwidth-limited transmit queue and `Timely`
//!   obvents expire in it;
//! - **sharded execution** ([`shard`]): with [`DaceConfig::shards`] > 1,
//!   channel ownership is partitioned across a worker pool by a
//!   seed-stable hash ([`ShardRouter`]) and matching/protocol work runs
//!   concurrently under a deterministic (shard, sequence) effect merge;
//! - an **in-process bus** ([`inproc`]) wiring several live domains
//!   together for the runnable examples.
//!
//! The deterministic deployment is [`node::DaceNode`] inside `psc-simnet`;
//! every experiment in `EXPERIMENTS.md` drives that. The live deployment is
//! [`inproc::Bus`].

pub mod config;
pub mod control;
pub mod inproc;
pub mod node;
pub mod shard;
pub(crate) mod snapshot;

pub use config::{DaceConfig, Placement};
pub use node::{DaceNode, DaceStats};
pub use shard::{shard_assignment, ShardRouter};

#[cfg(test)]
mod tests;
