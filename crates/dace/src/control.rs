//! Reflexive control obvents (paper §4.2).
//!
//! "Such messages are obvents themselves, and allow distributed processes
//! to learn about other, possibly new, multicast classes." Subscription,
//! unsubscription and class advertisements are ordinary obvent classes
//! declared with the same macro applications use, serialized with the same
//! codec, and flooded on the control channel.

use psc_codec::WireBytes;
use psc_obvent::declare_obvent_model;

declare_obvent_model! {
    /// A node announces one subscription's interest in one multicast class.
    pub class SubscribeCtl {
        /// Subscriber node.
        node: u64,
        /// Domain-local subscription id at the subscriber.
        sub: u64,
        /// The multicast class (concrete kind) being joined.
        channel: u64,
        /// The declared subscription kind (may be a supertype/interface).
        declared: u64,
        /// Encoded `RemoteFilter`, empty when the subscription has no
        /// migratable filter part. Carried as a shared buffer so announce
        /// re-floods reuse one encode per subscription.
        filter: WireBytes,
    }
}

declare_obvent_model! {
    /// A node withdraws one subscription from one multicast class.
    pub class UnsubscribeCtl {
        /// Subscriber node.
        node: u64,
        /// Domain-local subscription id at the subscriber.
        sub: u64,
        /// The multicast class being left.
        channel: u64,
    }
}

declare_obvent_model! {
    /// A publisher advertises a (possibly new) multicast class, carrying
    /// enough of the type hierarchy for peers to join it on behalf of
    /// supertype subscriptions.
    pub class AdvertiseCtl {
        /// The concrete kind published on this class.
        adv_kind: u64,
        /// Fully qualified kind name (diagnostics).
        name: String,
        /// Transitive supertype closure of `kind` (kind ids).
        ancestry: Vec<u64>,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psc_obvent::{builtin, Obvent, WireObvent};

    #[test]
    fn control_messages_are_obvents() {
        // The reflexive property: control traffic subtypes the root Obvent
        // interface and round-trips through the ordinary wire path.
        assert!(SubscribeCtl::kind().is_subtype_of(builtin::obvent_kind().id()));
        let ctl = SubscribeCtl::new(3, 7, 0xdead, 0xbeef, vec![1, 2, 3].into());
        let wire = WireObvent::encode(&ctl).unwrap();
        let back: SubscribeCtl = wire.decode_exact().unwrap();
        assert_eq!(back, ctl);
    }

    #[test]
    fn advertisements_carry_the_ancestry() {
        let adv = AdvertiseCtl::new(1, "x.Y".into(), vec![1, 42]);
        assert_eq!(adv.ancestry(), &vec![1, 42]);
        let wire = WireObvent::encode(&adv).unwrap();
        assert_eq!(wire.kind_id(), AdvertiseCtl::kind_id());
    }
}
