//! The DACE engine as a simulated node.
//!
//! A [`DaceNode`] is one address space: it hosts a
//! [`Domain`](pubsub_core::Domain) (the application-facing pub/sub
//! endpoint) and implements the paper's class-based dissemination beneath
//! it — multicast classes, reflexive control traffic, QoS-driven protocol
//! selection, filter placement and transmission semantics. See the crate
//! docs for the architecture.

use std::any::Any;
use std::cmp::Ordering as CmpOrdering;
use std::collections::{BTreeMap, BinaryHeap, HashMap, HashSet, VecDeque};
use std::sync::{Arc, Mutex};

use psc_codec::WireBytes;
use psc_filter::{FilterId, FilterIndex, RemoteFilter, Value};
use psc_group::{
    Causal, Certified, Fifo, GroupIo, Lpbcast, Multicast, Reliable, TimerToken, Total,
};
use psc_obvent::qos::{Delivery, Ordering, QosSpec};
use psc_obvent::{builtin, KindId, KindRole, Obvent, WireObvent};
use psc_simnet::{Ctx, Node, NodeId, ScopedStorage, SimNet, SimTime, StorageOp, TimerId};
use psc_snapshot::{CausalStamp, ChannelFrag, ClusterCut, MsgRef, NodeFrag};
use psc_telemetry::{
    FlightRecorder, HealthMonitor, Inspect, Registry, ReportBuilder, TraceId, TraceStage, Tracer,
};
use pubsub_core::{
    DeliverySink, Dissemination, Domain, ExecMode, PublishError, SubId, SubscribeError,
    SubscriptionRecord, UnsubscribeError,
};
use serde::{Deserialize, Serialize};

use crate::config::{DaceConfig, Placement};
use crate::control::{AdvertiseCtl, SubscribeCtl, UnsubscribeCtl};
use crate::shard::{
    ChannelSnapshot, MatchOutcome, PendingAction, ShardEngine, WorkItem,
};
use crate::snapshot::{SnapPlane, FORCE_CLOSE_TICKS, UNKNOWN_INITIATOR};

/// Per-node traffic and delivery counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DaceStats {
    /// Obvents published from this node's domain.
    pub published: u64,
    /// Handler deliveries performed at this node.
    pub delivered: u64,
    /// Direct data messages sent (after publisher-side filtering).
    pub direct_sent: u64,
    /// Obvents dropped in the transmit queue or on arrival because their
    /// time-to-live expired.
    pub expired: u64,
    /// Control obvents flooded.
    pub control_sent: u64,
}

#[derive(Debug, Serialize, Deserialize)]
pub(crate) enum NodeMsg {
    /// A reflexive control obvent.
    Control(WireObvent),
    /// Protocol-internal bytes of one multicast class, tagged with the
    /// sender's snapshot wave at send time (Lai–Yang colouring: a receiver
    /// on a lower wave captures before processing; see [`SnapPlane`]).
    Data {
        channel: KindId,
        snap: u64,
        bytes: WireBytes,
    },
    /// A content-routed obvent on the direct (best-effort) path, with an
    /// optional expiry deadline (virtual µs). Its wave colour is the
    /// publisher's [`CausalStamp`] riding in the envelope.
    Direct {
        wire: WireObvent,
        deadline: Option<u64>,
    },
    /// An obvent sent to a filtering host for fan-out.
    Brokered(WireObvent),
    /// Several control envelopes to one destination, coalesced in one tick:
    /// frame-concatenated encoded [`NodeMsg`]s (see `flush_outbox`). The
    /// receiver splits the frames zero-copy and handles each in order.
    Batch(WireBytes),
    /// Chandy–Lamport snapshot marker: ignites capture at a receiver that
    /// has not joined wave `snap` yet, and closes the in-flight recording
    /// of the link it arrived on. `initiator` is where fragments are sent
    /// ([`UNKNOWN_INITIATOR`] from participants that joined via a tag).
    SnapMarker { snap: u64, initiator: u64 },
    /// One node's finalized [`NodeFrag`] (encoded), sent to the initiator.
    SnapFrag { snap: u64, bytes: WireBytes },
}

enum BackendOp {
    Publish(WireObvent),
    Subscribe(SubscriptionRecord),
    Unsubscribe(SubId),
}

/// The domain's fabric: queues operations for the node to execute with
/// network access (the node flushes the queue after every callback).
struct DaceBackend {
    ops: Arc<Mutex<VecDeque<BackendOp>>>,
}

impl Dissemination for DaceBackend {
    fn publish(&self, wire: WireObvent) -> Result<(), PublishError> {
        self.ops
            .lock()
            .expect("ops queue poisoned")
            .push_back(BackendOp::Publish(wire));
        Ok(())
    }

    fn subscribe(&self, record: SubscriptionRecord) -> Result<(), SubscribeError> {
        self.ops
            .lock()
            .expect("ops queue poisoned")
            .push_back(BackendOp::Subscribe(record));
        Ok(())
    }

    fn unsubscribe(&self, id: SubId) -> Result<(), UnsubscribeError> {
        self.ops
            .lock()
            .expect("ops queue poisoned")
            .push_back(BackendOp::Unsubscribe(id));
        Ok(())
    }
}

/// Persisted image of a durable subscription (paper §3.4.1: subscriptions
/// whose lifetime exceeds the hosting process). Stored in stable storage
/// under `dursub/<durable_id>`; on recovery, matching obvents are parked
/// until the application re-attaches with `activate_with_id`.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct DurableRecord {
    durable_id: u64,
    kind: u64,
    /// Encoded `RemoteFilter`, empty when unfiltered.
    filter: Vec<u8>,
}

impl DurableRecord {
    fn matches(&self, wire: &WireObvent) -> bool {
        if !psc_obvent::registry::is_subtype(wire.kind_id(), KindId::from_raw(self.kind)) {
            return false;
        }
        if self.filter.is_empty() {
            return true;
        }
        let Ok(filter) = psc_codec::from_bytes::<RemoteFilter>(&self.filter) else {
            return true; // corrupt filter: err on delivery
        };
        match wire.view() {
            Ok(view) => filter.matches(&view),
            Err(_) => true,
        }
    }
}

/// Upper bound on obvents parked for not-yet-re-attached durable
/// subscriptions (oldest dropped beyond this).
const MAX_PARKED: usize = 1024;

/// One record of a channel write-ahead log ([`DaceConfig::wal`]). Every
/// record is CRC-framed via `psc_codec::frame::encode_crc` before it hits
/// a segment, so recovery scans with `scan_crc_frames` and stops cleanly
/// at a torn tail instead of reading garbage.
#[derive(Debug, Serialize, Deserialize)]
enum WalRecord {
    /// A key–value write of the log's keyspace.
    Put { key: String, value: Vec<u8> },
    /// A key removal.
    Remove { key: String },
    /// A full snapshot of the log's live keyspace; always the first record
    /// of the oldest retained segment after compaction, so replay can
    /// start from it and apply the records that follow.
    Checkpoint { entries: Vec<(String, Vec<u8>)> },
}

/// Counters describing one node's WAL activity, mirrored into the
/// [`Inspect`] report (the report renders from `&self`, without storage
/// access, so the commit path maintains this copy).
#[derive(Debug, Default, Clone)]
struct WalReport {
    /// Per-log `(segments, total_bytes)` as of the last commit.
    logs: BTreeMap<String, (u64, u64)>,
    /// Records replayed during bootstrap.
    replayed: u64,
    /// Segments whose tail was torn (truncated mid-record) at replay.
    torn: u64,
    /// Records rejected by CRC/decoding at replay.
    corrupt: u64,
}

enum DaceTimer {
    Announce,
    Transmit,
    Channel(KindId, TimerToken),
    /// Periodic stall-watchdog sweep ([`DaceConfig::watchdog`]).
    Watchdog,
    /// Snapshot liveness tick ([`DaceConfig::snapshot_retry`]): re-floods
    /// markers while the wave is open and force-closes recordings whose
    /// marker never arrives.
    SnapRetry,
}

struct TransmitItem {
    priority: i64,
    seq: u64,
    to: NodeId,
    /// Pre-encoded `NodeMsg::Direct`, shared by every destination of the
    /// publish that enqueued it (serialize-once fan-out).
    encoded: WireBytes,
    /// Trace id of the carried obvent (for expiry attribution without
    /// re-decoding `encoded`).
    trace: TraceId,
    deadline: Option<SimTime>,
}

impl PartialEq for TransmitItem {
    fn eq(&self, other: &Self) -> bool {
        self.priority == other.priority && self.seq == other.seq
    }
}
impl Eq for TransmitItem {}
impl PartialOrd for TransmitItem {
    fn partial_cmp(&self, other: &Self) -> Option<CmpOrdering> {
        Some(self.cmp(other))
    }
}
impl Ord for TransmitItem {
    fn cmp(&self, other: &Self) -> CmpOrdering {
        // Max-heap: higher priority first; FIFO (lower seq) among equals.
        self.priority
            .cmp(&other.priority)
            .then(other.seq.cmp(&self.seq))
    }
}

pub(crate) struct Channel {
    pub(crate) proto: Option<Box<dyn Multicast>>,
    /// Subscriber nodes, sorted (gives every node the same sequencer).
    pub(crate) members: Vec<NodeId>,
    /// Compound filter over all remote-filtered subscriptions.
    pub(crate) index: FilterIndex,
    filter_owner: HashMap<FilterId, (u64, u64)>,
    /// (node, sub) → the filter it registered, or `None` if unfiltered.
    sub_entries: HashMap<(u64, u64), Option<FilterId>>,
    /// Count of unfiltered subscriptions per node.
    unfiltered: HashMap<u64, u32>,
}

impl Channel {
    pub(crate) fn new(proto: Option<Box<dyn Multicast>>) -> Channel {
        Channel {
            proto,
            members: Vec::new(),
            index: FilterIndex::new(),
            filter_owner: HashMap::new(),
            sub_entries: HashMap::new(),
            unfiltered: HashMap::new(),
        }
    }

    fn add_member(&mut self, node: NodeId) {
        if let Err(pos) = self.members.binary_search(&node) {
            self.members.insert(pos, node);
        }
    }

    fn node_has_subs(&self, node: u64) -> bool {
        self.sub_entries.keys().any(|&(n, _)| n == node)
    }

    pub(crate) fn subscribe(&mut self, node: u64, sub: u64, filter: Option<RemoteFilter>) {
        if self.sub_entries.contains_key(&(node, sub)) {
            return; // idempotent (periodic re-announcements)
        }
        let entry = match filter {
            Some(filter) => {
                let id = self.index.insert(filter);
                self.filter_owner.insert(id, (node, sub));
                Some(id)
            }
            None => {
                *self.unfiltered.entry(node).or_insert(0) += 1;
                None
            }
        };
        self.sub_entries.insert((node, sub), entry);
        self.add_member(NodeId(node));
    }

    pub(crate) fn unsubscribe(&mut self, node: u64, sub: u64) {
        let Some(entry) = self.sub_entries.remove(&(node, sub)) else {
            return;
        };
        match entry {
            Some(filter_id) => {
                self.index.remove(filter_id);
                self.filter_owner.remove(&filter_id);
            }
            None => {
                if let Some(count) = self.unfiltered.get_mut(&node) {
                    *count = count.saturating_sub(1);
                    if *count == 0 {
                        self.unfiltered.remove(&node);
                    }
                }
            }
        }
        if !self.node_has_subs(node) {
            self.members.retain(|m| m.0 != node);
        }
    }

    /// Destination nodes for `wire` with publisher/broker-side filtering.
    /// Takes `&self`: `FilterIndex::matching` keeps its scratch behind a
    /// `RefCell`, so the publish hot path never needs a mutable channel.
    pub(crate) fn filtered_destinations(&self, wire: &WireObvent) -> Vec<NodeId> {
        let mut nodes: HashSet<u64> = self.unfiltered.keys().copied().collect();
        if !self.filter_owner.is_empty() {
            match wire.view() {
                Ok(view) => {
                    for filter_id in self.index.matching(&view) {
                        if let Some(&(node, _sub)) = self.filter_owner.get(&filter_id) {
                            nodes.insert(node);
                        }
                    }
                }
                // Cannot evaluate content here: fall back to sending to
                // every filtered subscriber (they re-filter locally).
                Err(_) => {
                    nodes.extend(self.filter_owner.values().map(|&(node, _)| node));
                }
            }
        }
        let mut out: Vec<NodeId> = nodes.into_iter().map(NodeId).collect();
        out.sort();
        out
    }
}

struct LocalSub {
    record: Arc<SubscriptionRecord>,
    /// The subscription's remote filter, encoded exactly once; every
    /// join/announce flood clones the shared buffer instead of re-encoding
    /// (empty when unfiltered).
    filter_bytes: WireBytes,
    joined: HashSet<KindId>,
}

/// One DACE address space, deployable as a `psc-simnet` node.
pub struct DaceNode {
    id: Option<NodeId>,
    cluster: Vec<NodeId>,
    config: DaceConfig,
    domain: Domain,
    sink: DeliverySink,
    ops: Arc<Mutex<VecDeque<BackendOp>>>,
    local_subs: HashMap<u64, LocalSub>,
    published_kinds: HashSet<KindId>,
    known_kinds: HashSet<KindId>,
    channels: HashMap<KindId, Channel>,
    timer_map: HashMap<TimerId, DaceTimer>,
    transmit: BinaryHeap<TransmitItem>,
    transmit_seq: u64,
    transmit_armed: bool,
    /// Per-callback control outbox: messages queued per destination and
    /// coalesced into one [`NodeMsg::Batch`] frame on flush (announce storms
    /// fan many small control floods to the same peers in one tick).
    outbox: HashMap<NodeId, Vec<WireBytes>>,
    /// Destinations in first-queued order, for a deterministic flush.
    outbox_order: Vec<NodeId>,
    /// Durable subscriptions persisted but not yet re-attached (loaded on
    /// recovery), by durable id.
    durable_pending: HashMap<u64, DurableRecord>,
    /// Obvents held for pending durable subscriptions, with the stable
    /// `park/<seq>` storage key each is persisted under.
    parked: VecDeque<(u64, WireObvent)>,
    /// Next `park/<seq>` key suffix.
    park_seq: u64,
    /// Whether the WAL has been replayed and journaling armed (once per
    /// node incarnation, on the first callback).
    wal_bootstrapped: bool,
    /// Memo of `kind → durable?` (certified delivery ⇒ durable).
    wal_durable: HashMap<u64, bool>,
    /// WAL activity mirror for the [`Inspect`] report.
    wal_report: WalReport,
    stats: DaceStats,
    /// Metrics registry (`dace.*`, `group.*`); externally owned with
    /// [`DaceNode::factory_with_telemetry`] so counters survive crash
    /// rebuilds.
    telemetry: Arc<Registry>,
    /// Causal event recorder for wire-carried [`TraceId`]s.
    tracer: Arc<Tracer>,
    /// Per-node flight recorder (publishes, deliveries, expiries, health
    /// findings); externally owned so post-mortems survive crash rebuilds.
    recorder: Option<Arc<FlightRecorder>>,
    /// Stall-watchdog state machine, fed by [`DaceConfig::watchdog`]
    /// sweeps; externally owned so watermarks survive crash rebuilds.
    health: Option<Arc<HealthMonitor>>,
    /// Per-node publish counter minting deterministic trace ids.
    trace_seq: u64,
    /// Trace id of the most recent local publish (diagnostics).
    last_trace: TraceId,
    /// Snapshot plane: the causal clock stamped into every publish and
    /// this node's participation in the current Chandy–Lamport wave.
    snap: SnapPlane,
    /// Sharded channel execution (`DaceConfig::shards > 1`): channel state
    /// lives in worker threads and `channels` above stays empty; `None`
    /// keeps the single-threaded inline path untouched. Created lazily on
    /// the first callback (the worker seeds need the node id).
    engine: Option<ShardEngine>,
}

impl DaceNode {
    /// Creates a DACE node for a statically known cluster, with telemetry
    /// disabled (a private no-op registry and tracer).
    pub fn new(cluster: Vec<NodeId>, config: DaceConfig) -> DaceNode {
        let tracer = Tracer::default();
        tracer.set_enabled(false);
        DaceNode::with_telemetry(
            cluster,
            config,
            Arc::new(Registry::disabled()),
            Arc::new(tracer),
        )
    }

    /// Creates a DACE node recording into `telemetry` and `tracer`. Both are
    /// shared handles: pass clones of externally owned instances so metrics
    /// and traces accumulate across crash–recover rebuilds and can be
    /// snapshotted from outside the simulation.
    pub fn with_telemetry(
        cluster: Vec<NodeId>,
        config: DaceConfig,
        telemetry: Arc<Registry>,
        tracer: Arc<Tracer>,
    ) -> DaceNode {
        DaceNode::with_observability(cluster, config, telemetry, tracer, None, None)
    }

    /// Full observability wiring: in addition to the registry and tracer,
    /// an optional per-node [`FlightRecorder`] (post-mortem ring) and an
    /// optional [`HealthMonitor`] driven by the [`DaceConfig::watchdog`]
    /// sweep timer. All shared handles are externally owned so diagnosis
    /// state survives crash–recover rebuilds.
    pub fn with_observability(
        cluster: Vec<NodeId>,
        config: DaceConfig,
        telemetry: Arc<Registry>,
        tracer: Arc<Tracer>,
        recorder: Option<Arc<FlightRecorder>>,
        health: Option<Arc<HealthMonitor>>,
    ) -> DaceNode {
        let ops: Arc<Mutex<VecDeque<BackendOp>>> = Arc::new(Mutex::new(VecDeque::new()));
        let backend_ops = Arc::clone(&ops);
        let domain = Domain::with_backend(ExecMode::Inline, move |_sink| {
            Box::new(DaceBackend { ops: backend_ops })
        });
        domain.attach_telemetry(&telemetry);
        let sink = domain.sink();
        DaceNode {
            id: None,
            cluster,
            config,
            domain,
            sink,
            ops,
            local_subs: HashMap::new(),
            published_kinds: HashSet::new(),
            known_kinds: HashSet::new(),
            channels: HashMap::new(),
            timer_map: HashMap::new(),
            transmit: BinaryHeap::new(),
            transmit_seq: 0,
            transmit_armed: false,
            outbox: HashMap::new(),
            outbox_order: Vec::new(),
            durable_pending: HashMap::new(),
            parked: VecDeque::new(),
            park_seq: 0,
            wal_bootstrapped: false,
            wal_durable: HashMap::new(),
            wal_report: WalReport::default(),
            stats: DaceStats::default(),
            telemetry,
            tracer,
            recorder,
            health,
            trace_seq: 0,
            last_trace: TraceId::NONE,
            snap: SnapPlane::default(),
            engine: None,
        }
    }

    /// A boxed-node factory for [`SimNet::add_node`]; each (re)build gets a
    /// fresh volatile state, as a crashed process would.
    pub fn factory(
        cluster: Vec<NodeId>,
        config: DaceConfig,
    ) -> impl FnMut() -> Box<dyn Node> + 'static {
        move || Box::new(DaceNode::new(cluster.clone(), config.clone()))
    }

    /// Like [`DaceNode::factory`], but every (re)build records into the same
    /// externally owned registry and tracer — the monitoring state survives
    /// the monitored process, as it would with a real collector.
    pub fn factory_with_telemetry(
        cluster: Vec<NodeId>,
        config: DaceConfig,
        telemetry: Arc<Registry>,
        tracer: Arc<Tracer>,
    ) -> impl FnMut() -> Box<dyn Node> + 'static {
        move || {
            Box::new(DaceNode::with_telemetry(
                cluster.clone(),
                config.clone(),
                Arc::clone(&telemetry),
                Arc::clone(&tracer),
            ))
        }
    }

    /// Like [`DaceNode::factory_with_telemetry`] with the full diagnosis
    /// wiring of [`DaceNode::with_observability`].
    pub fn factory_observable(
        cluster: Vec<NodeId>,
        config: DaceConfig,
        telemetry: Arc<Registry>,
        tracer: Arc<Tracer>,
        recorder: Option<Arc<FlightRecorder>>,
        health: Option<Arc<HealthMonitor>>,
    ) -> impl FnMut() -> Box<dyn Node> + 'static {
        move || {
            Box::new(DaceNode::with_observability(
                cluster.clone(),
                config.clone(),
                Arc::clone(&telemetry),
                Arc::clone(&tracer),
                recorder.clone(),
                health.clone(),
            ))
        }
    }

    /// The node's application-facing domain (cloneable handle).
    pub fn domain(&self) -> Domain {
        self.domain.clone()
    }

    /// This node's counters.
    pub fn stats(&self) -> DaceStats {
        self.stats
    }

    /// The registry this node records into (shared handle).
    pub fn telemetry(&self) -> Arc<Registry> {
        Arc::clone(&self.telemetry)
    }

    /// The tracer this node records into (shared handle).
    pub fn tracer(&self) -> Arc<Tracer> {
        Arc::clone(&self.tracer)
    }

    /// Trace id minted by this node's most recent publish
    /// ([`TraceId::NONE`] before the first one).
    pub fn last_publish_trace(&self) -> TraceId {
        self.last_trace
    }

    // ---- static driver helpers for tests and experiments ----

    /// Runs `f` against the node's domain at the current virtual time and
    /// immediately flushes the resulting fabric operations.
    pub fn drive(sim: &mut SimNet, node: NodeId, f: impl FnOnce(&Domain) + 'static) {
        sim.act_now(node, move |n, ctx| {
            let this = n
                .as_any_mut()
                .downcast_mut::<DaceNode>()
                .expect("node is a DaceNode");
            f(&this.domain);
            this.flush(ctx);
        });
    }

    /// Like [`DaceNode::drive`], but against any driver holding a live
    /// `Ctx` — the real-transport hook: a socket transport's injection
    /// path downcasts its hosted node and drives the domain exactly the
    /// way the simulator does.
    pub fn drive_ctx(node: &mut dyn Node, ctx: &mut Ctx<'_>, f: impl FnOnce(&Domain)) {
        let this = node
            .as_any_mut()
            .downcast_mut::<DaceNode>()
            .expect("node is a DaceNode");
        f(&this.domain);
        this.flush(ctx);
    }

    /// Publishes an obvent from the node's domain.
    pub fn publish_from<O: Obvent>(sim: &mut SimNet, node: NodeId, obvent: O) {
        DaceNode::drive(sim, node, move |domain| {
            domain.publish(obvent).expect("publish through DACE");
        });
    }

    /// Reads the node's counters (zero if the node is down).
    pub fn stats_of(sim: &mut SimNet, node: NodeId) -> DaceStats {
        sim.node_mut::<DaceNode>(node)
            .map(|n| n.stats)
            .unwrap_or_default()
    }

    /// Renders the node's deterministic state report ([`Inspect`]); `None`
    /// when the node is down.
    pub fn inspect_of(sim: &mut SimNet, node: NodeId) -> Option<String> {
        sim.node_mut::<DaceNode>(node).map(|n| n.inspect())
    }

    /// Trace id of the node's most recent publish ([`TraceId::NONE`] if the
    /// node is down or has not published).
    pub fn last_trace_of(sim: &mut SimNet, node: NodeId) -> TraceId {
        sim.node_mut::<DaceNode>(node)
            .map(|n| n.last_trace)
            .unwrap_or(TraceId::NONE)
    }

    /// A cloneable handle to the node's domain for out-of-band subscription
    /// setup (operations queue until the node's next activity; prefer
    /// [`DaceNode::drive`] in deterministic tests).
    pub fn domain_of(sim: &mut SimNet, node: NodeId) -> Option<Domain> {
        sim.node_mut::<DaceNode>(node).map(|n| n.domain.clone())
    }

    /// Cross-checks every channel's matching engine: runs the index's
    /// structural audit ([`FilterIndex::check_consistency`]) and compares
    /// counting-indexed [`FilterIndex::matching`] against the differential
    /// oracle [`FilterIndex::naive_matching`] on `probe`. Returns
    /// human-readable findings; empty means every channel is healthy. The
    /// chaos harness samples this mid-storm as its `FilterOracle`.
    pub fn filter_oracle_findings(&self, probe: &Value) -> Vec<String> {
        if let Some(engine) = &self.engine {
            return engine.filter_oracle(probe);
        }
        let mut findings = Vec::new();
        let mut kinds: Vec<KindId> = self.channels.keys().copied().collect();
        kinds.sort();
        for kind in kinds {
            let channel = &self.channels[&kind];
            if let Err(err) = channel.index.check_consistency() {
                findings.push(format!(
                    "channel {}: index audit failed: {err}",
                    kind_name(kind)
                ));
            }
            let indexed = channel.index.matching(probe);
            let naive = channel.index.naive_matching(probe);
            if indexed != naive {
                findings.push(format!(
                    "channel {}: indexed matching diverged from naive: {:?} vs {:?}",
                    kind_name(kind),
                    indexed,
                    naive
                ));
            }
        }
        findings
    }

    /// Runs [`DaceNode::filter_oracle_findings`] against a live node (empty
    /// when the node is down — a crashed node has no index to audit).
    pub fn filter_oracle_of(sim: &mut SimNet, node: NodeId, probe: &Value) -> Vec<String> {
        sim.node_mut::<DaceNode>(node)
            .map(|n| n.filter_oracle_findings(probe))
            .unwrap_or_default()
    }

    // ---- internals ----

    fn me(&self) -> NodeId {
        self.id.expect("node id assigned on first callback")
    }

    fn ensure_id(&mut self, ctx: &mut Ctx<'_>) {
        if self.id.is_none() {
            self.id = Some(ctx.id());
        }
        if self.engine.is_none() && self.config.shards > 1 {
            self.engine = Some(ShardEngine::new(
                self.config.shards,
                self.me(),
                &self.config,
                &self.telemetry,
            ));
        }
        self.wal_bootstrap(ctx);
    }

    /// Once per incarnation, before any other storage access: replays the
    /// write-ahead logs into the key–value map (after a disk-fault crash
    /// the map is empty and the fsynced log suffix is all that survived;
    /// after a plain crash the replay is an idempotent re-put), reloads
    /// durable subscriptions and parked obvents, and arms the storage
    /// journal that feeds [`DaceNode::wal_commit`].
    fn wal_bootstrap(&mut self, ctx: &mut Ctx<'_>) {
        if !self.config.wal || self.wal_bootstrapped {
            return;
        }
        self.wal_bootstrapped = true;
        ctx.storage().enable_journal();
        let logs = ctx.storage().wal_logs();
        let mut replayed = 0u64;
        let mut torn = 0u64;
        let mut corrupt = 0u64;
        for log in &logs {
            let segments: Vec<Vec<u8>> = ctx
                .storage()
                .wal_segments(log)
                .iter()
                .map(|s| s.bytes.clone())
                .collect();
            for bytes in segments {
                let (frames, end) = psc_codec::frame::scan_crc_frames(&bytes);
                match end {
                    psc_codec::frame::ScanEnd::Clean => {}
                    psc_codec::frame::ScanEnd::Truncated { .. } => torn += 1,
                    psc_codec::frame::ScanEnd::Corrupt { .. } => corrupt += 1,
                }
                for frame in frames {
                    let Ok(record) = psc_codec::from_bytes::<WalRecord>(&frame) else {
                        corrupt += 1;
                        continue;
                    };
                    replayed += 1;
                    match record {
                        WalRecord::Put { key, value } => ctx.storage().put_raw(key, value),
                        WalRecord::Remove { key } => {
                            ctx.storage().remove(&key);
                        }
                        WalRecord::Checkpoint { entries } => {
                            for (key, value) in entries {
                                ctx.storage().put_raw(key, value);
                            }
                        }
                    }
                }
            }
        }
        // Replay writes must not re-journal (they are already in the WAL).
        ctx.storage().take_journal();
        self.wal_report.replayed = replayed;
        self.wal_report.torn = torn;
        self.wal_report.corrupt = corrupt;
        for log in &logs {
            let segments = ctx.storage().wal_segments(log);
            self.wal_report.logs.insert(
                log.clone(),
                (
                    segments.len() as u64,
                    segments.iter().map(|s| s.bytes.len() as u64).sum(),
                ),
            );
        }
        if replayed > 0 {
            self.telemetry.bump("wal.replay.records", replayed);
        }
        if torn > 0 {
            self.telemetry.bump("wal.replay.torn", torn);
        }
        if corrupt > 0 {
            self.telemetry.bump("wal.replay.corrupt", corrupt);
        }
        // Reload durable subscriptions and parked obvents here, not only in
        // `on_recover`: a real transport restarting a process calls
        // `on_start`, and the WAL is what makes that a resume.
        let keys: Vec<String> = ctx
            .storage()
            .keys_with_prefix("dursub/")
            .map(str::to_string)
            .collect();
        for key in keys {
            if let Ok(Some(record)) = ctx.storage().get::<DurableRecord>(&key) {
                self.durable_pending.insert(record.durable_id, record);
            }
        }
        let park_keys: Vec<String> = ctx
            .storage()
            .keys_with_prefix("park/")
            .map(str::to_string)
            .collect();
        for key in park_keys {
            let Ok(seq) = key["park/".len()..].parse::<u64>() else {
                continue;
            };
            let Some(bytes) = ctx.storage().get_raw(&key) else {
                continue;
            };
            if let Ok(wire) = psc_codec::from_bytes::<WireObvent>(bytes) {
                self.parked.push_back((seq, wire));
                self.park_seq = self.park_seq.max(seq + 1);
            }
        }
    }

    /// The write-ahead log a storage key belongs to: durable subscriptions
    /// and parked obvents go to the node log; a certified channel's keys go
    /// to its per-channel log; everything else is volatile.
    fn wal_log_for(&mut self, key: &str) -> Option<String> {
        if key.starts_with("dursub/") || key.starts_with("park/") {
            return Some("node".to_string());
        }
        let rest = key.strip_prefix("ch/")?;
        let (kind_hex, _) = rest.split_once('/')?;
        let raw = u64::from_str_radix(kind_hex, 16).ok()?;
        let durable = *self.wal_durable.entry(raw).or_insert_with(|| {
            psc_obvent::registry::lookup(KindId::from_raw(raw))
                .map(|k| k.qos().delivery == Delivery::Certified)
                .unwrap_or(false)
        });
        durable.then(|| format!("ch/{kind_hex}"))
    }

    /// End of every callback: drains the storage journal, appends each
    /// durable mutation to its log as a CRC-framed [`WalRecord`], rotates
    /// oversized active segments, issues the fsync barrier, and compacts
    /// logs past the retention threshold. Runs after the effects of the
    /// callback are queued but before they externalize — so in a healthy
    /// configuration nothing observable ever precedes its log record.
    fn wal_commit(&mut self, ctx: &mut Ctx<'_>) {
        if !self.config.wal || !self.wal_bootstrapped {
            return;
        }
        let ops = ctx.storage().take_journal();
        if ops.is_empty() {
            return;
        }
        let mut touched: Vec<String> = Vec::new();
        let mut appends = 0u64;
        let mut bytes_appended = 0u64;
        for op in ops {
            let (log, record) = match op {
                StorageOp::Put(key, value) => {
                    (self.wal_log_for(&key), WalRecord::Put { key, value })
                }
                StorageOp::Remove(key) => (self.wal_log_for(&key), WalRecord::Remove { key }),
            };
            let Some(log) = log else { continue };
            let encoded = psc_codec::to_bytes(&record).expect("wal records encode");
            bytes_appended += ctx.storage().wal_append(&log, &encoded) as u64;
            appends += 1;
            if !touched.contains(&log) {
                touched.push(log);
            }
        }
        if appends > 0 {
            self.telemetry.bump("wal.appends", appends);
            self.telemetry.bump("wal.bytes", bytes_appended);
        }
        for log in touched {
            let active_len = ctx
                .storage()
                .wal_segments(&log)
                .last()
                .map(|s| s.bytes.len())
                .unwrap_or(0);
            if active_len >= self.config.wal_segment_bytes {
                ctx.storage().wal_rotate(&log);
                self.telemetry.bump("wal.rotations", 1);
            }
            if self.config.wal_sync {
                ctx.storage().wal_sync(&log);
                self.telemetry.bump("wal.syncs", 1);
            }
            let total: usize = ctx
                .storage()
                .wal_segments(&log)
                .iter()
                .map(|s| s.bytes.len())
                .sum();
            if total >= self.config.wal_compact_threshold {
                self.wal_compact(ctx, &log);
            }
            let segments = ctx.storage().wal_segments(&log);
            self.wal_report.logs.insert(
                log.clone(),
                (
                    segments.len() as u64,
                    segments.iter().map(|s| s.bytes.len() as u64).sum(),
                ),
            );
        }
    }

    /// Compaction: snapshot the log's live keyspace into a checkpoint
    /// record at the head of a fresh segment, fsync it (unconditionally —
    /// dropping history against an undurable checkpoint would lose data
    /// even with a correct disk), then drop the older segments.
    fn wal_compact(&mut self, ctx: &mut Ctx<'_>, log: &str) {
        let entries = if log == "node" {
            let mut entries = ctx.storage().entries_with_prefix("dursub/");
            entries.extend(ctx.storage().entries_with_prefix("park/"));
            entries
        } else {
            ctx.storage().entries_with_prefix(&format!("{log}/"))
        };
        let record = WalRecord::Checkpoint { entries };
        let encoded = psc_codec::to_bytes(&record).expect("wal records encode");
        let index = ctx.storage().wal_rotate(log);
        ctx.storage().wal_append(log, &encoded);
        ctx.storage().wal_sync(log);
        ctx.storage().wal_drop_through(log, index - 1);
        self.telemetry.bump("wal.checkpoints", 1);
    }

    fn flood_control<O: Obvent>(&mut self, _ctx: &mut Ctx<'_>, ctl: &O) {
        let wire = WireObvent::encode(ctl).expect("control obvents encode");
        let bytes = encode_node_msg(&NodeMsg::Control(wire));
        let me = self.me();
        let peers: Vec<NodeId> = self.cluster.iter().copied().filter(|&n| n != me).collect();
        for node in peers {
            self.queue_send(node, bytes.clone());
            self.stats.control_sent += 1;
            self.telemetry.bump("dace.control_sent", 1);
        }
    }

    /// Queues a control message for `to`; the outbox coalesces everything
    /// queued within one callback into a single frame per destination.
    fn queue_send(&mut self, to: NodeId, bytes: WireBytes) {
        let queue = self.outbox.entry(to).or_default();
        if queue.is_empty() {
            self.outbox_order.push(to);
        }
        queue.push(bytes);
    }

    /// Drains the control outbox: one message per destination goes out
    /// as-is; two or more are frame-concatenated into one
    /// [`NodeMsg::Batch`], so an announce storm costs each peer one
    /// network message instead of one per subscription × channel.
    fn flush_outbox(&mut self, ctx: &mut Ctx<'_>) {
        for to in std::mem::take(&mut self.outbox_order) {
            let Some(mut msgs) = self.outbox.remove(&to) else {
                continue;
            };
            if msgs.len() == 1 {
                ctx.send(to, msgs.pop().expect("one message"));
            } else {
                self.telemetry
                    .bump("dace.batch.coalesced", msgs.len() as u64 - 1);
                let batch = psc_codec::batch_frames(msgs.iter().map(|m| &**m));
                ctx.send(to, encode_node_msg(&NodeMsg::Batch(batch)));
            }
        }
    }

    fn flush(&mut self, ctx: &mut Ctx<'_>) {
        self.ensure_id(ctx);
        loop {
            let op = self.ops.lock().expect("ops queue poisoned").pop_front();
            match op {
                None => {
                    // Sharded mode: dispatch everything staged so far and
                    // merge the effects; delivered obvents may run handlers
                    // that queue new fabric ops, so loop until both the ops
                    // queue and the staging buffers are empty.
                    if self.engine.as_ref().is_some_and(ShardEngine::has_pending) {
                        self.drain_shard_work(ctx);
                        continue;
                    }
                    break;
                }
                Some(BackendOp::Publish(wire)) => self.publish_flow(ctx, wire),
                Some(BackendOp::Subscribe(record)) => self.subscribe_flow(ctx, record),
                Some(BackendOp::Unsubscribe(id)) => self.unsubscribe_flow(ctx, id),
            }
        }
        self.flush_outbox(ctx);
        self.wal_commit(ctx);
    }

    fn subscribe_flow(&mut self, ctx: &mut Ctx<'_>, record: SubscriptionRecord) {
        let record = Arc::new(record);
        let sub_raw = record.id.0;
        // Encode the remote filter once; joins and announces share it.
        let filter_bytes = record
            .remote_filter
            .as_ref()
            .map(|f| psc_codec::to_wire_bytes(f).expect("filters encode"))
            .unwrap_or_default();
        if let Some(durable_id) = record.durable_id {
            // Persist the subscription so it outlives the process
            // (§3.4.1); a matching pending record means this is a
            // re-attachment after recovery.
            let durable = DurableRecord {
                durable_id,
                kind: record.kind.as_u64(),
                filter: filter_bytes.to_vec(),
            };
            ctx.storage()
                .put(format!("dursub/{durable_id:020}"), &durable)
                .expect("durable record serialization cannot fail");
            self.durable_pending.remove(&durable_id);
        }
        self.local_subs.insert(
            sub_raw,
            LocalSub {
                record: Arc::clone(&record),
                filter_bytes,
                joined: HashSet::new(),
            },
        );
        // Join the channel of every known concrete subtype of the declared
        // kind; future subtypes join on advertisement.
        let mut targets: HashSet<KindId> = self
            .known_kinds
            .iter()
            .copied()
            .filter(|&k| psc_obvent::registry::is_subtype(k, record.kind))
            .collect();
        for kind in psc_obvent::registry::subtypes_of(record.kind) {
            if kind.role() == KindRole::Class {
                targets.insert(kind.id());
            }
        }
        let mut sorted: Vec<KindId> = targets.into_iter().collect();
        sorted.sort();
        for channel in sorted {
            self.join_channel(ctx, sub_raw, channel);
        }
        // Re-offer obvents parked while a durable subscription was
        // detached; anything still unmatched (other pending records) is
        // re-parked by `local_deliver` under a fresh key.
        if !self.parked.is_empty() {
            let parked: Vec<(u64, WireObvent)> = self.parked.drain(..).collect();
            for (seq, wire) in parked {
                if self.config.wal {
                    ctx.storage().remove(&format!("park/{seq:020}"));
                }
                self.local_deliver(ctx, &wire);
            }
        }
    }

    fn join_channel(&mut self, ctx: &mut Ctx<'_>, sub_raw: u64, channel: KindId) {
        let me = self.me();
        let Some(local) = self.local_subs.get_mut(&sub_raw) else {
            return;
        };
        if !local.joined.insert(channel) {
            return;
        }
        let ctl = SubscribeCtl::new(
            me.0,
            sub_raw,
            channel.as_u64(),
            local.record.kind.as_u64(),
            local.filter_bytes.clone(),
        );
        let filter = local.record.remote_filter.clone();
        self.flood_control(ctx, &ctl);
        // Apply locally so self-publishing routes to local subscribers.
        self.ensure_channel(ctx, channel);
        if let Some(engine) = self.engine.as_mut() {
            engine.stage(
                channel,
                WorkItem::Subscribe {
                    kind: channel,
                    node: me.0,
                    sub: sub_raw,
                    filter,
                },
                PendingAction::Proto,
            );
        } else {
            let ch = self.channels.get_mut(&channel).expect("just ensured");
            ch.subscribe(me.0, sub_raw, filter);
        }
    }

    fn unsubscribe_flow(&mut self, ctx: &mut Ctx<'_>, id: SubId) {
        let me = self.me();
        let Some(local) = self.local_subs.remove(&id.0) else {
            return;
        };
        if let Some(durable_id) = local.record.durable_id {
            // Explicit deactivation ends the durable lifetime.
            ctx.storage().remove(&format!("dursub/{durable_id:020}"));
            self.durable_pending.remove(&durable_id);
        }
        let mut joined: Vec<KindId> = local.joined.into_iter().collect();
        joined.sort();
        for channel in joined {
            let ctl = UnsubscribeCtl::new(me.0, id.0, channel.as_u64());
            self.flood_control(ctx, &ctl);
            if let Some(engine) = self.engine.as_mut() {
                if engine.ensured.contains(&channel) {
                    engine.stage(
                        channel,
                        WorkItem::Unsubscribe {
                            kind: channel,
                            node: me.0,
                            sub: id.0,
                        },
                        PendingAction::Proto,
                    );
                }
            } else if let Some(ch) = self.channels.get_mut(&channel) {
                ch.unsubscribe(me.0, id.0);
            }
        }
    }

    fn advertise(&mut self, ctx: &mut Ctx<'_>, kind: KindId) {
        let (name, ancestry) = match psc_obvent::registry::lookup(kind) {
            Some(k) => (
                k.name().to_string(),
                k.ancestry().iter().map(|id| id.as_u64()).collect(),
            ),
            None => (kind.to_string(), vec![kind.as_u64()]),
        };
        let ctl = AdvertiseCtl::new(kind.as_u64(), name, ancestry);
        self.flood_control(ctx, &ctl);
        self.apply_advertise(ctx, kind);
    }

    fn apply_advertise(&mut self, ctx: &mut Ctx<'_>, kind: KindId) {
        if !self.known_kinds.insert(kind) {
            return;
        }
        // Join the new class on behalf of matching local subscriptions.
        let matching: Vec<u64> = self
            .local_subs
            .iter()
            .filter(|(_, local)| psc_obvent::registry::is_subtype(kind, local.record.kind))
            .map(|(&sub, _)| sub)
            .collect();
        for sub in matching {
            self.join_channel(ctx, sub, kind);
        }
    }

    fn publish_flow(&mut self, ctx: &mut Ctx<'_>, mut wire: WireObvent) {
        let kind = wire.kind_id();
        self.stats.published += 1;
        // Mint the obvent's end-to-end identity; it rides in the envelope
        // through every hop below.
        self.trace_seq += 1;
        let trace = TraceId::mint(self.me().0, self.trace_seq);
        wire.set_trace(trace);
        self.last_trace = trace;
        // Advance the causal plane and stamp the envelope: the clock lets
        // the snapshot oracles order the cut, the wave id colours every
        // relay of this obvent for capture-before-processing.
        self.snap.clock.tick(self.me().0);
        wire.set_stamp(CausalStamp {
            snap: self.snap.wave,
            clock: self.snap.clock.clone(),
        });
        let qos = wire.qos();
        if self.telemetry.is_enabled() {
            let kname = kind_name(kind);
            self.telemetry.bump("dace.published", 1);
            self.telemetry
                .bump(&format!("dace.channel.{kname}.published"), 1);
        }
        if self.tracer.is_enabled() || self.recorder.is_some() {
            // The `sem=` token keys the derived `span.e2e.<class>`
            // histograms by the publish's QoS class.
            let detail = format!(
                "kind={} at=n{} sem={}",
                kind_name(kind),
                self.me().0,
                qos_class(&qos)
            );
            if let Some(recorder) = &self.recorder {
                recorder.record(ctx.now().as_micros(), "publish", format!("{trace} {detail}"));
            }
            self.tracer
                .record(trace, ctx.now().as_micros(), TraceStage::Publish, detail);
        }
        if self.published_kinds.insert(kind) {
            self.advertise(ctx, kind);
        }
        self.ensure_channel(ctx, kind);
        if self.channel_has_proto(kind) {
            self.telemetry.bump("dace.group_broadcasts", 1);
            if self.tracer.is_enabled() {
                self.tracer.record(
                    trace,
                    ctx.now().as_micros(),
                    TraceStage::GroupBroadcast,
                    format!("kind={}", kind_name(kind)),
                );
            }
            let bytes = psc_codec::to_wire_bytes(&wire).expect("wire obvents encode");
            if let Some(engine) = self.engine.as_mut() {
                engine.stage(
                    kind,
                    WorkItem::Broadcast { kind, bytes },
                    PendingAction::Proto,
                );
            } else {
                self.with_channel_proto(ctx, kind, |proto, io| proto.broadcast(io, bytes));
            }
        } else {
            self.direct_publish(ctx, kind, wire, &qos);
        }
    }

    /// Whether `kind`'s (ensured) channel runs a group protocol; answered
    /// from the worker-free `has_proto` map in sharded mode (`make_proto`
    /// is a pure function of the QoS and config, so the main thread knows
    /// without asking the owning worker).
    fn channel_has_proto(&self, kind: KindId) -> bool {
        match &self.engine {
            Some(engine) => *engine.has_proto.get(&kind).expect("ensured"),
            None => self.channels.get(&kind).expect("ensured").proto.is_some(),
        }
    }

    fn direct_publish(&mut self, ctx: &mut Ctx<'_>, kind: KindId, wire: WireObvent, qos: &QosSpec) {
        let me = self.me();
        let (priority, deadline) = transmission_params(&wire, qos, ctx.now());
        if let Placement::Broker(broker) = self.config.placement {
            if broker != me {
                // Brokered envelopes go upstream immediately (single
                // message), bypassing the paced transmit queue.
                ctx.send(broker, encode_node_msg(&NodeMsg::Brokered(wire)));
                return;
            }
        }
        if let Some(engine) = self.engine.as_mut() {
            // The owning shard evaluates destinations and pre-encodes the
            // envelope off-thread; routing resumes in `apply_match` with
            // the parameters captured here.
            if matches!(
                self.config.placement,
                Placement::Publisher | Placement::Broker(_)
            ) {
                self.telemetry.bump("dace.filter_evals", 1);
            }
            let deadline_us = deadline.map(|d| d.as_micros());
            engine.stage(
                kind,
                WorkItem::Match {
                    kind,
                    wire: wire.clone(),
                    deadline_us,
                },
                PendingAction::Direct {
                    wire,
                    priority,
                    deadline,
                },
            );
            return;
        }
        let destinations = {
            let ch = self.channels.get(&kind).expect("ensured");
            match self.config.placement {
                Placement::Subscriber => ch.members.clone(),
                Placement::Publisher | Placement::Broker(_) => {
                    self.telemetry.bump("dace.filter_evals", 1);
                    ch.filtered_destinations(&wire)
                }
            }
        };
        self.tracer.record(
            wire.trace_id(),
            ctx.now().as_micros(),
            TraceStage::FilterEval,
            format!("at=n{} dests={}", me.0, destinations.len()),
        );
        // Serialize-once fan-out: the Direct envelope is encoded at most
        // once per publish, and every remote destination's queue entry
        // shares that buffer.
        let trace = wire.trace_id();
        let deadline_us = deadline.map(|d| d.as_micros());
        let mut encoded: Option<WireBytes> = None;
        for dest in destinations {
            if dest == me {
                self.local_deliver(ctx, &wire);
            } else {
                self.stats.direct_sent += 1;
                self.telemetry.bump("dace.direct_sent", 1);
                let bytes = encoded
                    .get_or_insert_with(|| {
                        encode_node_msg(&NodeMsg::Direct {
                            wire: wire.clone(),
                            deadline: deadline_us,
                        })
                    })
                    .clone();
                self.enqueue_transmit(ctx, dest, bytes, trace, priority, deadline);
            }
        }
    }

    fn enqueue_transmit(
        &mut self,
        ctx: &mut Ctx<'_>,
        to: NodeId,
        encoded: WireBytes,
        trace: TraceId,
        priority: i64,
        deadline: Option<SimTime>,
    ) {
        self.transmit_seq += 1;
        let item = TransmitItem {
            priority,
            seq: self.transmit_seq,
            to,
            encoded,
            trace,
            deadline,
        };
        self.tracer.record(
            trace,
            ctx.now().as_micros(),
            TraceStage::TransmitEnqueue,
            format!("to=n{}", to.0),
        );
        self.transmit.push(item);
        if !self.transmit_armed {
            self.transmit_armed = true;
            let id = ctx.set_timer(self.config.transmit_interval);
            self.timer_map.insert(id, DaceTimer::Transmit);
        }
    }

    fn drain_one_transmit(&mut self, ctx: &mut Ctx<'_>) {
        let now = ctx.now();
        while let Some(item) = self.transmit.pop() {
            if let Some(deadline) = item.deadline {
                if now > deadline {
                    self.stats.expired += 1;
                    self.telemetry.bump("dace.expired", 1);
                    self.tracer.record(
                        item.trace,
                        now.as_micros(),
                        TraceStage::Expired,
                        "in-queue".to_string(),
                    );
                    if let Some(recorder) = &self.recorder {
                        recorder.record(
                            now.as_micros(),
                            "expired",
                            format!("{} in-queue", item.trace),
                        );
                    }
                    continue; // expired in the queue
                }
            }
            ctx.send(item.to, item.encoded);
            break;
        }
        if self.transmit.is_empty() {
            self.transmit_armed = false;
        } else {
            let id = ctx.set_timer(self.config.transmit_interval);
            self.timer_map.insert(id, DaceTimer::Transmit);
        }
    }

    fn local_deliver(&mut self, ctx: &mut Ctx<'_>, wire: &WireObvent) {
        // Belt-and-braces capture: a group protocol can release an obvent
        // from its hold-back long after the frame that carried it (whose
        // wave tag was checked on arrival), so re-check the publisher's
        // stamp at the delivery boundary — capture must precede both the
        // delivery and the clock merge.
        let stamp_snap = wire.stamp().snap;
        if stamp_snap > self.snap.wave && !self.config.snapshot_skew {
            self.telemetry.bump("snapshot.captures.tagged", 1);
            self.snapshot_begin(ctx, stamp_snap, UNKNOWN_INITIATOR, false);
        }
        if !wire.stamp().clock.is_empty() {
            self.snap.clock.merge(&wire.stamp().clock);
        }
        let matched = self.sink.deliver(wire);
        self.stats.delivered += matched as u64;
        if matched > 0
            && self.telemetry.is_enabled() {
                let kname = kind_name(wire.kind_id());
                self.telemetry.bump("dace.delivered", matched as u64);
                self.telemetry
                    .bump(&format!("dace.channel.{kname}.delivered"), matched as u64);
            }
        self.tracer.record(
            wire.trace_id(),
            ctx.now().as_micros(),
            TraceStage::Deliver,
            format!("at=n{} matched={matched}", self.me().0),
        );
        if let Some(recorder) = &self.recorder {
            recorder.record(
                ctx.now().as_micros(),
                "deliver",
                format!("{} matched={matched}", wire.trace_id()),
            );
        }
        if matched == 0
            && self
                .durable_pending
                .values()
                .any(|record| record.matches(wire))
        {
            // A durable subscription exists but its handler has not
            // re-attached yet (§3.4.1 recovery window): hold the obvent,
            // durably — a parked-then-crashed obvent is still owed to the
            // subscriber when it comes back.
            if self.parked.len() >= MAX_PARKED {
                if let Some((seq, _)) = self.parked.pop_front() {
                    if self.config.wal {
                        ctx.storage().remove(&format!("park/{seq:020}"));
                    }
                }
            }
            self.telemetry.bump("dace.parked", 1);
            let seq = self.park_seq;
            self.park_seq += 1;
            if self.config.wal {
                let bytes = psc_codec::to_bytes(wire).expect("wire obvents encode");
                ctx.storage().put_raw(format!("park/{seq:020}"), bytes);
            }
            self.parked.push_back((seq, wire.clone()));
        }
    }

    fn ensure_channel(&mut self, ctx: &mut Ctx<'_>, kind: KindId) {
        if self.engine.is_some() {
            self.ensure_channel_sharded(ctx, kind);
            return;
        }
        if self.channels.contains_key(&kind) {
            return;
        }
        let qos = psc_obvent::registry::lookup(kind)
            .map(|k| k.qos().clone())
            .unwrap_or_default();
        let proto = make_proto(&qos, &self.config);
        let has_proto = proto.is_some();
        self.channels.insert(kind, Channel::new(proto));
        if has_proto {
            self.with_channel_proto(ctx, kind, |proto, io| proto.on_start(io));
        }
    }

    /// Sharded twin of [`DaceNode::ensure_channel`]: stages the channel's
    /// creation on its owning shard, seeding the worker's storage fragment
    /// with the channel's persisted keys (how e.g. certified-delivery logs
    /// survive a crash–rebuild of the pool).
    fn ensure_channel_sharded(&mut self, ctx: &mut Ctx<'_>, kind: KindId) {
        let engine = self.engine.as_mut().expect("sharded mode");
        if !engine.ensured.insert(kind) {
            return;
        }
        let seed_kvs = ctx.storage().entries_with_prefix(&format!("ch/{}/", kind));
        let qos = psc_obvent::registry::lookup(kind)
            .map(|k| k.qos().clone())
            .unwrap_or_default();
        let has_proto = make_proto(&qos, &self.config).is_some();
        engine.has_proto.insert(kind, has_proto);
        engine.stage(
            kind,
            WorkItem::Ensure { kind, seed_kvs },
            PendingAction::Proto,
        );
    }

    /// Merge point of the sharded hot path: dispatches every staged batch,
    /// blocks on all shard replies, and applies the returned effects in
    /// global sequence order — storage mirror, then sends, then timers,
    /// then deliveries, exactly the order the inline path produces them.
    fn drain_shard_work(&mut self, ctx: &mut Ctx<'_>) {
        let Some(engine) = self.engine.as_mut() else {
            return;
        };
        if !engine.has_pending() {
            return;
        }
        let (pending, effects) = engine.dispatch(ctx.now(), self.snap.wave, &self.telemetry);
        for (item, fx) in pending.into_iter().zip(effects) {
            debug_assert_eq!(item.seq, fx.seq, "merge must align items with effects");
            if !fx.storage.is_empty() {
                // Mirror worker-fragment writes onto the authoritative
                // store so they survive crashes like inline writes do.
                ctx.storage().apply(fx.storage);
            }
            for (to, bytes) in fx.sends {
                ctx.send(to, bytes);
            }
            for (after, token) in fx.timers {
                let id = ctx.set_timer(after);
                self.timer_map
                    .insert(id, DaceTimer::Channel(item.kind, token));
            }
            for (origin, payload) in fx.delivered {
                if let Ok(wire) = psc_codec::from_bytes::<WireObvent>(&payload) {
                    self.tracer.record(
                        wire.trace_id(),
                        ctx.now().as_micros(),
                        TraceStage::GroupDeliver,
                        format!("at=n{} origin=n{}", self.me().0, origin.0),
                    );
                    self.local_deliver(ctx, &wire);
                }
            }
            if let Some(outcome) = fx.matched {
                if let PendingAction::Direct {
                    wire,
                    priority,
                    deadline,
                } = item.action
                {
                    self.apply_match(ctx, wire, priority, deadline, outcome);
                }
            }
        }
    }

    /// Applies one `Match` item's outcome: the sharded continuation of
    /// [`DaceNode::direct_publish`]'s fan-out loop (same trace record, same
    /// counters, same serialize-once envelope sharing).
    fn apply_match(
        &mut self,
        ctx: &mut Ctx<'_>,
        wire: WireObvent,
        priority: i64,
        deadline: Option<SimTime>,
        outcome: MatchOutcome,
    ) {
        let me = self.me();
        let MatchOutcome {
            destinations,
            encoded,
        } = outcome;
        self.tracer.record(
            wire.trace_id(),
            ctx.now().as_micros(),
            TraceStage::FilterEval,
            format!("at=n{} dests={}", me.0, destinations.len()),
        );
        let trace = wire.trace_id();
        for dest in destinations {
            if dest == me {
                self.local_deliver(ctx, &wire);
            } else {
                self.stats.direct_sent += 1;
                self.telemetry.bump("dace.direct_sent", 1);
                let bytes = encoded
                    .clone()
                    .expect("remote destination implies an encoded envelope");
                self.enqueue_transmit(ctx, dest, bytes, trace, priority, deadline);
            }
        }
    }

    /// Runs a closure over a channel's protocol with a [`GroupIo`] wired to
    /// this node, then routes the resulting deliveries and timers.
    fn with_channel_proto(
        &mut self,
        ctx: &mut Ctx<'_>,
        kind: KindId,
        f: impl FnOnce(&mut dyn Multicast, &mut dyn GroupIo),
    ) {
        let Some(mut channel) = self.channels.remove(&kind) else {
            return;
        };
        let mut delivered: Vec<(NodeId, WireBytes)> = Vec::new();
        let mut new_timers: Vec<(psc_simnet::Duration, TimerToken)> = Vec::new();
        if let Some(proto) = channel.proto.as_mut() {
            let mut io = ChannelIo {
                ctx,
                kind,
                snap: self.snap.wave,
                members: &channel.members,
                delivered: &mut delivered,
                new_timers: &mut new_timers,
                telemetry: &self.telemetry,
                last_encoded: None,
            };
            f(proto.as_mut(), &mut io);
        }
        self.channels.insert(kind, channel);
        for (after, token) in new_timers {
            let id = ctx.set_timer(after);
            self.timer_map.insert(id, DaceTimer::Channel(kind, token));
        }
        for (origin, payload) in delivered {
            if let Ok(wire) = psc_codec::from_bytes::<WireObvent>(&payload) {
                self.tracer.record(
                    wire.trace_id(),
                    ctx.now().as_micros(),
                    TraceStage::GroupDeliver,
                    format!("at=n{} origin=n{}", self.me().0, origin.0),
                );
                self.local_deliver(ctx, &wire);
            }
        }
    }

    fn handle_control(&mut self, ctx: &mut Ctx<'_>, wire: &WireObvent) {
        if wire.kind_id() == SubscribeCtl::kind_id() {
            if let Ok(ctl) = wire.decode_exact::<SubscribeCtl>() {
                let channel = KindId::from_raw(*ctl.channel());
                let filter = if ctl.filter().is_empty() {
                    None
                } else {
                    psc_codec::from_bytes::<RemoteFilter>(ctl.filter()).ok()
                };
                self.ensure_channel(ctx, channel);
                if let Some(engine) = self.engine.as_mut() {
                    engine.stage(
                        channel,
                        WorkItem::Subscribe {
                            kind: channel,
                            node: *ctl.node(),
                            sub: *ctl.sub(),
                            filter,
                        },
                        PendingAction::Proto,
                    );
                } else {
                    let ch = self.channels.get_mut(&channel).expect("just ensured");
                    ch.subscribe(*ctl.node(), *ctl.sub(), filter);
                }
            }
        } else if wire.kind_id() == UnsubscribeCtl::kind_id() {
            if let Ok(ctl) = wire.decode_exact::<UnsubscribeCtl>() {
                let channel = KindId::from_raw(*ctl.channel());
                if let Some(engine) = self.engine.as_mut() {
                    if engine.ensured.contains(&channel) {
                        engine.stage(
                            channel,
                            WorkItem::Unsubscribe {
                                kind: channel,
                                node: *ctl.node(),
                                sub: *ctl.sub(),
                            },
                            PendingAction::Proto,
                        );
                    }
                } else if let Some(ch) = self.channels.get_mut(&channel) {
                    ch.unsubscribe(*ctl.node(), *ctl.sub());
                }
            }
        } else if wire.kind_id() == AdvertiseCtl::kind_id() {
            if let Ok(ctl) = wire.decode_exact::<AdvertiseCtl>() {
                let kind = KindId::from_raw(*ctl.adv_kind());
                self.apply_advertise(ctx, kind);
            }
        }
    }

    /// Arms the watchdog sweep timer when both the config interval and a
    /// health monitor are present.
    fn arm_watchdog(&mut self, ctx: &mut Ctx<'_>) {
        if self.health.is_none() {
            return;
        }
        if let Some(interval) = self.config.watchdog {
            let id = ctx.set_timer(interval);
            self.timer_map.insert(id, DaceTimer::Watchdog);
        }
    }

    /// One watchdog sweep: transmit/parked depths, every live channel
    /// protocol's queue depths (prefixed with the channel's kind name), and
    /// the counter snapshot, in a stable order.
    fn watchdog_sweep(&mut self, now: SimTime) {
        if self.health.is_none() {
            return;
        }
        let mut depths: Vec<(String, u64)> = vec![
            ("dace.transmit".to_string(), self.transmit.len() as u64),
            ("dace.parked".to_string(), self.parked.len() as u64),
        ];
        match self.engine.as_mut() {
            Some(engine) => {
                for (kind, queue_depths) in engine.queue_depths() {
                    let kname = kind_name(kind);
                    for (name, depth) in queue_depths {
                        depths.push((format!("{kname}.{name}"), depth));
                    }
                }
                // High-water staged batch depth per shard since the last
                // sweep: the sharded twin of a queue-depth gauge.
                for (idx, peak) in engine.take_peak_depths().into_iter().enumerate() {
                    depths.push((format!("shard.{idx}.staged"), peak));
                }
            }
            None => {
                let mut kinds: Vec<KindId> = self.channels.keys().copied().collect();
                kinds.sort();
                for kind in kinds {
                    let channel = &self.channels[&kind];
                    if let Some(proto) = &channel.proto {
                        let kname = kind_name(kind);
                        for (name, depth) in proto.queue_depths() {
                            depths.push((format!("{kname}.{name}"), depth));
                        }
                    }
                }
            }
        }
        let Some(health) = &self.health else { return };
        health.sweep(now.as_micros(), &depths, &self.telemetry.snapshot());
    }

    fn announce(&mut self, ctx: &mut Ctx<'_>) {
        // Re-flood subscriptions (anti-entropy under loss / for restarts).
        let me = self.me();
        let subs: Vec<(u64, KindId, KindId, WireBytes)> = self
            .local_subs
            .iter()
            .flat_map(|(&sub, local)| {
                // The cached encode is shared: each re-flood clones the
                // buffer handle, never re-serializes the filter.
                local
                    .joined
                    .iter()
                    .map(|&channel| {
                        (sub, channel, local.record.kind, local.filter_bytes.clone())
                    })
                    .collect::<Vec<_>>()
            })
            .collect();
        for (sub, channel, declared, filter) in subs {
            let ctl = SubscribeCtl::new(me.0, sub, channel.as_u64(), declared.as_u64(), filter);
            self.flood_control(ctx, &ctl);
        }
        let published: Vec<KindId> = self.published_kinds.iter().copied().collect();
        for kind in published {
            self.advertise_known(ctx, kind);
        }
        let id = ctx.set_timer(self.config.announce_interval);
        self.timer_map.insert(id, DaceTimer::Announce);
    }

    fn advertise_known(&mut self, ctx: &mut Ctx<'_>, kind: KindId) {
        let (name, ancestry) = match psc_obvent::registry::lookup(kind) {
            Some(k) => (
                k.name().to_string(),
                k.ancestry().iter().map(|id| id.as_u64()).collect(),
            ),
            None => (kind.to_string(), vec![kind.as_u64()]),
        };
        let ctl = AdvertiseCtl::new(kind.as_u64(), name, ancestry);
        self.flood_control(ctx, &ctl);
    }

    // ---- snapshot plane (Chandy–Lamport over non-FIFO links) ----

    /// Snapshot pre-processing of one incoming transport message, *before*
    /// it is handled. Three cases on the message's wave colour vs ours:
    ///
    /// - **higher**: the sender captured before sending, so we must capture
    ///   before processing (Lai–Yang rule) — ignite the wave here;
    /// - **equal**: post-cut on both sides, nothing to do;
    /// - **lower**: a pre-cut message crossing our cut — record it into the
    ///   in-flight state of the link it arrived on (if still open).
    ///
    /// Returns `Some(tag)` instead of igniting when [`DaceConfig::
    /// snapshot_skew`] deliberately breaks the discipline (the caller then
    /// processes first and captures after — the bug the oracles must see).
    fn snapshot_observe(
        &mut self,
        ctx: &mut Ctx<'_>,
        from: NodeId,
        msg: &NodeMsg,
    ) -> Option<u64> {
        let (tag, channel, id, len) = match msg {
            NodeMsg::Data {
                channel,
                snap,
                bytes,
            } => {
                // Identify the carried obvent when this frame is a data
                // frame (acks/retransmit-requests have no identity and are
                // recorded by size only).
                let id = proto_name_for(*channel)
                    .and_then(|proto| psc_group::peek_data_id(proto, bytes))
                    .map(|(origin, epoch, seq)| MsgRef::new(origin, epoch, seq));
                (*snap, channel.as_u64(), id, bytes.len() as u64)
            }
            NodeMsg::Direct { wire, .. } | NodeMsg::Brokered(wire) => {
                let trace = wire.trace_id();
                let id = (!trace.is_none())
                    .then(|| MsgRef::new(trace.origin(), 0, trace.seq()));
                (
                    wire.stamp().snap,
                    wire.kind_id().as_u64(),
                    id,
                    wire.wire_len() as u64,
                )
            }
            NodeMsg::Control(wire) => (
                wire.stamp().snap,
                wire.kind_id().as_u64(),
                None,
                wire.wire_len() as u64,
            ),
            // Batches are observed frame-by-frame; markers and fragments
            // are the protocol itself.
            NodeMsg::Batch(_) | NodeMsg::SnapMarker { .. } | NodeMsg::SnapFrag { .. } => {
                return None
            }
        };
        if tag > self.snap.wave {
            if self.config.snapshot_skew {
                return Some(tag);
            }
            self.telemetry.bump("snapshot.captures.tagged", 1);
            self.snapshot_begin(ctx, tag, UNKNOWN_INITIATOR, false);
            return None;
        }
        if tag < self.snap.wave && self.snap.record(from.0, channel, id, len) {
            self.telemetry.bump("snapshot.inflight.recorded", 1);
        }
        None
    }

    /// Initiates a snapshot wave from this node: captures the local state,
    /// floods markers to every peer, and assembles arriving fragments into
    /// a [`ClusterCut`] (poll [`DaceNode::snapshot_cut`] for completion).
    /// Returns the wave id.
    pub fn snapshot_initiate(&mut self, ctx: &mut Ctx<'_>) -> u64 {
        self.ensure_id(ctx);
        let wave = self.snap.wave + 1;
        self.telemetry.bump("snapshot.initiated", 1);
        let me = self.me();
        self.snapshot_begin(ctx, wave, me.0, true);
        self.flush(ctx);
        wave
    }

    /// The highest snapshot wave this node has participated in (0 = never).
    pub fn snapshot_wave(&self) -> u64 {
        self.snap.wave
    }

    /// The completed cluster cut, when this node initiated the most recent
    /// wave and every node's fragment has arrived.
    pub fn snapshot_cut(&self) -> Option<&ClusterCut> {
        self.snap.completed.as_ref()
    }

    /// Enters wave `wave`: capture first, then open recordings, then flood
    /// markers. `self.snap.wave` is claimed *before* the capture so that
    /// any work drained while capturing (staged shard batches can deliver
    /// obvents) cannot re-enter the ignition path for the same wave.
    fn snapshot_begin(&mut self, ctx: &mut Ctx<'_>, wave: u64, initiator: u64, initiating: bool) {
        if wave <= self.snap.wave {
            return; // stale or re-entrant ignition
        }
        self.snap.wave = wave;
        let mut frag = self.snapshot_capture_frag(ctx);
        frag.snap = wave;
        let me = self.me();
        let peers: Vec<u64> = self
            .cluster
            .iter()
            .map(|n| n.0)
            .filter(|&n| n != me.0)
            .collect();
        self.snap.begin(wave, initiator, initiating, &peers, frag);
        if initiating {
            self.snap.cut = Some(ClusterCut::new(wave, me.0));
        }
        self.telemetry.bump("snapshot.waves", 1);
        let marker = encode_node_msg(&NodeMsg::SnapMarker {
            snap: wave,
            initiator: self.snap.initiator,
        });
        for &peer in &peers {
            ctx.send(NodeId(peer), marker.clone());
            self.telemetry.bump("snapshot.markers.sent", 1);
        }
        self.arm_snap_retry(ctx);
        self.snapshot_try_finish(ctx);
    }

    /// Captures this node's fragment of the cut: causal clock, durable-sub
    /// table, parked obvents, and every live channel's protocol state —
    /// read inline or merged from the owning shard workers. Staged shard
    /// work is drained first so the capture reflects every message
    /// processed before this point.
    fn snapshot_capture_frag(&mut self, ctx: &mut Ctx<'_>) -> NodeFrag {
        self.drain_shard_work(ctx);
        let me = self.me();
        let mut dursubs: Vec<u64> = self.durable_pending.keys().copied().collect();
        dursubs.sort_unstable();
        let parked: Vec<(u64, u64)> = self
            .parked
            .iter()
            .map(|(_, wire)| {
                let trace = wire.trace_id();
                (trace.origin(), trace.seq())
            })
            .collect();
        let mut frag = NodeFrag {
            node: me.0,
            snap: 0, // caller stamps the wave
            at_us: ctx.now().as_micros(),
            recovered: self.snap.recovered,
            clock: self.snap.clock.clone(),
            dursubs,
            parked,
            channels: Vec::new(),
            inflight: Vec::new(),
        };
        if let Some(engine) = self.engine.as_mut() {
            let captures = engine.capture_channels(ctx.now());
            for (kind, members, capture) in captures {
                frag.channels.push(ChannelFrag {
                    kind: kind.as_u64(),
                    name: kind_name(kind),
                    members,
                    capture,
                });
            }
        } else {
            let mut kinds: Vec<KindId> = self
                .channels
                .iter()
                .filter(|(_, ch)| ch.proto.is_some())
                .map(|(&kind, _)| kind)
                .collect();
            kinds.sort();
            for kind in kinds {
                let members: Vec<u64> =
                    self.channels[&kind].members.iter().map(|n| n.0).collect();
                let mut cap = None;
                self.with_channel_proto(ctx, kind, |proto, io| cap = Some(proto.capture(io)));
                if let Some(capture) = cap {
                    frag.channels.push(ChannelFrag {
                        kind: kind.as_u64(),
                        name: kind_name(kind),
                        members,
                        capture,
                    });
                }
            }
        }
        frag
    }

    fn handle_snap_marker(
        &mut self,
        ctx: &mut Ctx<'_>,
        from: NodeId,
        snap: u64,
        initiator: u64,
    ) {
        self.telemetry.bump("snapshot.markers.received", 1);
        if snap > self.snap.wave {
            self.snapshot_begin(ctx, snap, initiator, false);
        }
        if snap != self.snap.wave {
            return; // stale wave
        }
        if !self.snap.initiating
            && self.snap.initiator == UNKNOWN_INITIATOR
            && initiator != UNKNOWN_INITIATOR
        {
            // Joined via a tagged message; the marker teaches us where
            // fragments go.
            self.snap.initiator = initiator;
        }
        self.snap.close_link(from.0);
        // A duplicate marker from the initiator after our fragment went
        // out means the fragment may have been lost — re-send it.
        if self.snap.frag_done && from.0 == self.snap.initiator {
            if let Some(msg) = self.snap.frag_msg.clone() {
                ctx.send(from, msg);
                self.telemetry.bump("snapshot.frags.resent", 1);
            }
        }
        self.snapshot_try_finish(ctx);
    }

    fn handle_snap_frag(&mut self, ctx: &mut Ctx<'_>, snap: u64, bytes: &[u8]) {
        self.telemetry.bump("snapshot.frags.received", 1);
        if snap != self.snap.wave || !self.snap.initiating {
            return;
        }
        let Ok(frag) = psc_codec::from_bytes::<NodeFrag>(bytes) else {
            return;
        };
        if let Some(cut) = self.snap.cut.as_mut() {
            cut.insert(frag);
        }
        self.snapshot_try_finish(ctx);
    }

    /// Finalizes the own fragment once every link's marker has arrived (or
    /// the retry timer gave up): folds the in-flight recordings in, then
    /// inserts it into the cut (initiator) or sends it to the initiator.
    /// On the initiator, also checks whether the cut just completed.
    fn snapshot_try_finish(&mut self, ctx: &mut Ctx<'_>) {
        if self.snap.frag_ready() {
            let mut frag = self.snap.frag.take().expect("fragment captured at wave begin");
            frag.inflight = self.snap.recording.values().cloned().collect();
            self.snap.frag_done = true;
            if self.snap.initiating {
                if let Some(cut) = self.snap.cut.as_mut() {
                    cut.insert(frag);
                }
            } else {
                let bytes = psc_codec::to_wire_bytes(&frag).expect("fragments encode");
                let msg = encode_node_msg(&NodeMsg::SnapFrag {
                    snap: self.snap.wave,
                    bytes,
                });
                self.snap.frag_msg = Some(msg.clone());
                ctx.send(NodeId(self.snap.initiator), msg);
                self.telemetry.bump("snapshot.frags.sent", 1);
            }
        }
        if self.snap.initiating && self.snap.completed.is_none() {
            let cluster: Vec<u64> = self.cluster.iter().map(|n| n.0).collect();
            if self.snap.cut.as_ref().is_some_and(|cut| cut.complete(&cluster)) {
                self.snap.completed = self.snap.cut.take();
                self.telemetry.bump("snapshot.completed", 1);
            }
        }
    }

    /// One snapshot liveness tick: re-floods the marker (closes freshly
    /// healed links at peers, re-ignites crashed-and-recovered ones, and —
    /// from the initiator — doubles as a fragment re-request on duplicate
    /// receipt), and after [`FORCE_CLOSE_TICKS`] gives up waiting for
    /// markers from dead or partitioned peers so the cut still completes.
    fn snapshot_retry(&mut self, ctx: &mut Ctx<'_>) {
        if !self.snap.in_progress() {
            return;
        }
        self.snap.retry_ticks += 1;
        self.telemetry.bump("snapshot.retries", 1);
        if !self.snap.frag_done
            && !self.snap.forced
            && self.snap.retry_ticks >= FORCE_CLOSE_TICKS
            && self.snap.open_links() > 0
        {
            self.snap.forced = true;
            self.telemetry.bump("snapshot.forced", 1);
        }
        let me = self.me();
        let marker = encode_node_msg(&NodeMsg::SnapMarker {
            snap: self.snap.wave,
            initiator: self.snap.initiator,
        });
        let peers: Vec<NodeId> = self.cluster.iter().copied().filter(|&n| n != me).collect();
        for peer in peers {
            ctx.send(peer, marker.clone());
            self.telemetry.bump("snapshot.markers.sent", 1);
        }
        self.snapshot_try_finish(ctx);
        self.arm_snap_retry(ctx);
    }

    fn arm_snap_retry(&mut self, ctx: &mut Ctx<'_>) {
        if self.snap.retry_armed || !self.snap.in_progress() {
            return;
        }
        self.snap.retry_armed = true;
        let id = ctx.set_timer(self.config.snapshot_retry);
        self.timer_map.insert(id, DaceTimer::SnapRetry);
    }

    // ---- static snapshot drivers for tests and experiments ----

    /// Initiates a snapshot wave on `node` (no-op if the node is down).
    pub fn snapshot_from(sim: &mut SimNet, node: NodeId) {
        sim.act_now(node, |n, ctx| {
            let this = n
                .as_any_mut()
                .downcast_mut::<DaceNode>()
                .expect("node is a DaceNode");
            this.snapshot_initiate(ctx);
            this.flush(ctx);
        });
    }

    /// The completed cut assembled by `node`, if any.
    pub fn snapshot_cut_of(sim: &mut SimNet, node: NodeId) -> Option<ClusterCut> {
        sim.node_mut::<DaceNode>(node)
            .and_then(|n| n.snap.completed.clone())
    }

    /// The byte-stable rendering of the completed cut assembled by `node`.
    pub fn snapshot_render_of(sim: &mut SimNet, node: NodeId) -> Option<String> {
        DaceNode::snapshot_cut_of(sim, node).map(|cut| cut.render())
    }
}

struct ChannelIo<'a, 'b> {
    ctx: &'a mut Ctx<'b>,
    kind: KindId,
    /// The node's snapshot wave, tagged onto every outgoing `Data` frame
    /// (constant within one protocol callback: captures never run inside
    /// one).
    snap: u64,
    members: &'a [NodeId],
    delivered: &'a mut Vec<(NodeId, WireBytes)>,
    new_timers: &'a mut Vec<(psc_simnet::Duration, TimerToken)>,
    telemetry: &'a Registry,
    /// Memo of the last protocol buffer → encoded `NodeMsg::Data` pair:
    /// protocols fan one shared buffer out to many members back-to-back,
    /// so the transport envelope is encoded once per distinct buffer
    /// instead of once per member.
    last_encoded: Option<(WireBytes, WireBytes)>,
}

impl GroupIo for ChannelIo<'_, '_> {
    fn self_id(&self) -> NodeId {
        self.ctx.id()
    }

    fn members(&self) -> &[NodeId] {
        self.members
    }

    fn now(&self) -> SimTime {
        self.ctx.now()
    }

    fn send(&mut self, to: NodeId, bytes: WireBytes) {
        if let Some((prev, encoded)) = &self.last_encoded {
            if prev.ptr_eq(&bytes) {
                let encoded = encoded.clone();
                self.ctx.send(to, encoded);
                return;
            }
        }
        let encoded = encode_node_msg(&NodeMsg::Data {
            channel: self.kind,
            snap: self.snap,
            bytes: bytes.clone(),
        });
        self.ctx.send(to, encoded.clone());
        self.last_encoded = Some((bytes, encoded));
    }

    fn deliver(&mut self, origin: NodeId, payload: WireBytes) {
        // Same counter as the standalone group host, so span-vs-counter
        // cross-checks read identically in both deployments.
        self.telemetry.bump("group.delivered", 1);
        self.delivered.push((origin, payload));
    }

    fn set_timer(&mut self, after: psc_simnet::Duration, token: TimerToken) {
        self.new_timers.push((after, token));
    }

    fn storage(&mut self) -> ScopedStorage<'_> {
        self.ctx.storage().scoped(format!("ch/{}/", self.kind))
    }

    fn rng(&mut self) -> &mut dyn rand::RngCore {
        self.ctx.rng()
    }

    fn metric(&mut self, name: &'static str, delta: u64) {
        // Same namespace as the standalone group host, so e.g.
        // `group.causal.retransmits` means the same thing everywhere.
        // Check before formatting so disabled telemetry costs one load.
        if self.telemetry.is_enabled() {
            self.telemetry.bump(&format!("group.{name}"), delta);
        }
    }
}

impl DaceNode {
    /// Dispatches one decoded transport message; [`NodeMsg::Batch`] recurses
    /// over its zero-copy frames. Snapshot pre-processing runs first: a
    /// higher wave tag captures the node's state *before* the message is
    /// processed, and pre-cut messages arriving on a recorded link are
    /// folded into the cut's in-flight channel state.
    fn handle_node_msg(&mut self, ctx: &mut Ctx<'_>, from: NodeId, msg: NodeMsg) {
        match &msg {
            NodeMsg::Batch(_) | NodeMsg::SnapMarker { .. } | NodeMsg::SnapFrag { .. } => {}
            _ => {
                if let Some(tag) = self.snapshot_observe(ctx, from, &msg) {
                    // snapshot_skew: the deliberately broken discipline —
                    // process the newer-wave message first, capture after.
                    self.handle_node_msg_inner(ctx, from, msg);
                    if tag > self.snap.wave {
                        self.snapshot_begin(ctx, tag, UNKNOWN_INITIATOR, false);
                    }
                    return;
                }
            }
        }
        self.handle_node_msg_inner(ctx, from, msg);
    }

    fn handle_node_msg_inner(&mut self, ctx: &mut Ctx<'_>, from: NodeId, msg: NodeMsg) {
        match msg {
            NodeMsg::Control(wire) => self.handle_control(ctx, &wire),
            NodeMsg::Data {
                channel,
                snap: _,
                bytes,
            } => {
                self.ensure_channel(ctx, channel);
                if let Some(engine) = self.engine.as_mut() {
                    engine.stage(
                        channel,
                        WorkItem::OnMessage {
                            kind: channel,
                            from,
                            bytes,
                        },
                        PendingAction::Proto,
                    );
                } else {
                    self.with_channel_proto(ctx, channel, |proto, io| {
                        proto.on_message(io, from, &bytes)
                    });
                }
            }
            NodeMsg::Batch(bytes) => {
                let Ok(frames) = psc_codec::split_frames(&bytes) else {
                    return; // corrupt batch: drop whole, like any bad packet
                };
                self.telemetry.bump("dace.batch.received", 1);
                for frame in frames {
                    let Ok(inner) = psc_codec::from_bytes::<NodeMsg>(&frame) else {
                        continue;
                    };
                    if matches!(inner, NodeMsg::Batch(_)) {
                        continue; // batches are never nested; drop malformed
                    }
                    self.handle_node_msg(ctx, from, inner);
                }
            }
            NodeMsg::Direct { wire, deadline } => {
                let expired =
                    deadline.is_some_and(|d| ctx.now() > SimTime::from_micros(d));
                if expired {
                    self.stats.expired += 1;
                    self.telemetry.bump("dace.expired", 1);
                    self.tracer.record(
                        wire.trace_id(),
                        ctx.now().as_micros(),
                        TraceStage::Expired,
                        format!("at=n{} on-arrival", ctx.id().0),
                    );
                } else {
                    self.tracer.record(
                        wire.trace_id(),
                        ctx.now().as_micros(),
                        TraceStage::Arrive,
                        format!("at=n{} from=n{}", ctx.id().0, from.0),
                    );
                    self.local_deliver(ctx, &wire);
                }
            }
            NodeMsg::Brokered(wire) => {
                let kind = wire.kind_id();
                let qos = wire.qos();
                self.telemetry.bump("dace.brokered", 1);
                self.tracer.record(
                    wire.trace_id(),
                    ctx.now().as_micros(),
                    TraceStage::Brokered,
                    format!("at=n{} from=n{}", ctx.id().0, from.0),
                );
                self.ensure_channel(ctx, kind);
                self.direct_publish(ctx, kind, wire, &qos);
            }
            NodeMsg::SnapMarker { snap, initiator } => {
                self.handle_snap_marker(ctx, from, snap, initiator);
            }
            NodeMsg::SnapFrag { snap, bytes } => {
                self.handle_snap_frag(ctx, snap, &bytes);
            }
        }
    }
}

impl Node for DaceNode {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        self.ensure_id(ctx);
        let id = ctx.set_timer(self.config.announce_interval);
        self.timer_map.insert(id, DaceTimer::Announce);
        self.arm_watchdog(ctx);
        self.flush(ctx);
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_>, from: NodeId, payload: &[u8]) {
        self.ensure_id(ctx);
        let Ok(msg) = psc_codec::from_bytes::<NodeMsg>(payload) else {
            return;
        };
        self.handle_node_msg(ctx, from, msg);
        self.flush(ctx);
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, timer: TimerId) {
        self.ensure_id(ctx);
        match self.timer_map.remove(&timer) {
            Some(DaceTimer::Announce) => self.announce(ctx),
            Some(DaceTimer::Transmit) => self.drain_one_transmit(ctx),
            Some(DaceTimer::Channel(kind, token)) => {
                if let Some(engine) = self.engine.as_mut() {
                    if engine.ensured.contains(&kind) {
                        engine.stage(
                            kind,
                            WorkItem::OnTimer { kind, token },
                            PendingAction::Proto,
                        );
                    }
                } else {
                    self.with_channel_proto(ctx, kind, |proto, io| proto.on_timer(io, token));
                }
            }
            Some(DaceTimer::Watchdog) => {
                self.watchdog_sweep(ctx.now());
                self.arm_watchdog(ctx);
            }
            Some(DaceTimer::SnapRetry) => {
                self.snap.retry_armed = false;
                self.snapshot_retry(ctx);
            }
            None => {}
        }
        self.flush(ctx);
    }

    fn on_recover(&mut self, ctx: &mut Ctx<'_>) {
        self.ensure_id(ctx);
        // This incarnation's in-memory causal clock restarted from zero;
        // mark the fragment so clock-based cut checks exempt it.
        self.snap.recovered = true;
        // Reload durable subscriptions: they outlived the crash (§3.4.1);
        // matching obvents are parked until the application re-attaches
        // with `activate_with_id`.
        let keys: Vec<String> = ctx
            .storage()
            .keys_with_prefix("dursub/")
            .map(str::to_string)
            .collect();
        for key in keys {
            if let Ok(Some(record)) = ctx.storage().get::<DurableRecord>(&key) {
                self.durable_pending.insert(record.durable_id, record);
            }
        }
        let id = ctx.set_timer(self.config.announce_interval);
        self.timer_map.insert(id, DaceTimer::Announce);
        self.arm_watchdog(ctx);
        self.flush(ctx);
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

impl Inspect for DaceNode {
    fn inspect(&self) -> String {
        let mut report = ReportBuilder::new();
        let me = match self.id {
            Some(id) => format!("n{}", id.0),
            None => "unassigned".to_string(),
        };
        report.section(format!("dace-node {me}"));
        report.line(format!(
            "cluster={}",
            self.cluster
                .iter()
                .map(|n| format!("n{}", n.0))
                .collect::<Vec<_>>()
                .join(",")
        ));
        report.line(format!(
            "stats published={} delivered={} direct_sent={} expired={} control_sent={}",
            self.stats.published,
            self.stats.delivered,
            self.stats.direct_sent,
            self.stats.expired,
            self.stats.control_sent
        ));
        report.line(format!(
            "queues transmit={} parked={} durable_pending={}",
            self.transmit.len(),
            self.parked.len(),
            self.durable_pending.len()
        ));
        if self.config.wal {
            report.line(format!(
                "wal sync={} replayed={} torn={} corrupt={}",
                self.config.wal_sync,
                self.wal_report.replayed,
                self.wal_report.torn,
                self.wal_report.corrupt
            ));
            for (log, (segments, bytes)) in &self.wal_report.logs {
                report.line(format!("wal log={log} segments={segments} bytes={bytes}"));
            }
        }
        if self.snap.wave > 0 {
            report.line(format!(
                "snapshot wave={} initiator={} clock={} frag_done={} open_links={} completed={}",
                self.snap.wave,
                if self.snap.initiator == UNKNOWN_INITIATOR {
                    "?".to_string()
                } else {
                    format!("n{}", self.snap.initiator)
                },
                self.snap.clock,
                u64::from(self.snap.frag_done),
                self.snap.open_links(),
                self.snap.completed.as_ref().map(|c| c.snap).unwrap_or(0),
            ));
        }

        let mut subs: Vec<(u64, &LocalSub)> =
            self.local_subs.iter().map(|(&id, sub)| (id, sub)).collect();
        subs.sort_by_key(|(id, _)| *id);
        report.section(format!("subscriptions count={}", subs.len()));
        for (id, sub) in subs {
            let mut joined: Vec<String> =
                sub.joined.iter().map(|&k| kind_name(k)).collect();
            joined.sort();
            report.line(format!(
                "sub={id} kind={} filtered={} durable={} joined={}",
                kind_name(sub.record.kind),
                sub.record.remote_filter.is_some(),
                sub.record.durable_id.is_some(),
                joined.join(",")
            ));
        }
        report.end();

        let snapshots = self.channel_snapshots();
        report.section(format!("channels count={}", snapshots.len()));
        for snap in snapshots {
            let proto = snap.proto.unwrap_or("direct");
            report.section(format!(
                "channel kind={} proto={proto} members={}",
                kind_name(snap.kind),
                snap.members
                    .iter()
                    .map(|m| format!("n{}", m.0))
                    .collect::<Vec<_>>()
                    .join(",")
            ));
            let stats = snap.stats;
            report.line(format!(
                "filters={} predicates={} unique={} paths={} shared={} counting={} residual={} indexed_preds={} residual_preds={}",
                stats.filters,
                stats.total_predicates,
                stats.unique_predicates,
                stats.paths,
                stats.shared_nodes,
                stats.counting_filters,
                stats.residual_filters,
                stats.indexed_preds,
                stats.residual_preds
            ));
            for (name, depth) in snap.depths {
                report.line(format!("queue {name}={depth}"));
            }
            report.end();
        }
        report.end();
        report.end();
        report.finish()
    }
}

impl DaceNode {
    /// Snapshots of every channel's observable state, sorted by kind —
    /// read from the owning workers in sharded mode, from the local map
    /// inline. Both paths render identically in [`Inspect`].
    fn channel_snapshots(&self) -> Vec<ChannelSnapshot> {
        if let Some(engine) = &self.engine {
            return engine.channel_snapshots();
        }
        let mut kinds: Vec<KindId> = self.channels.keys().copied().collect();
        kinds.sort();
        kinds
            .into_iter()
            .map(|kind| {
                let channel = &self.channels[&kind];
                ChannelSnapshot {
                    kind,
                    proto: channel.proto.as_ref().map(|p| p.proto_name()),
                    members: channel.members.clone(),
                    stats: channel.index.stats(),
                    depths: channel
                        .proto
                        .as_ref()
                        .map(|p| p.queue_depths())
                        .unwrap_or_default(),
                }
            })
            .collect()
    }
}

/// Reads the transmission parameters (priority, expiry deadline) from a
/// wire obvent according to its resolved QoS (paper §3.1.2: `Prioritary`
/// exposes a priority, `Timely` a time-to-live).
fn transmission_params(
    wire: &WireObvent,
    qos: &QosSpec,
    now: SimTime,
) -> (i64, Option<SimTime>) {
    let mut priority = 0i64;
    let mut deadline = None;
    if qos.transmission.prioritary || qos.transmission.timely {
        if let Ok(view) = wire.view() {
            if qos.transmission.prioritary {
                priority = view
                    .number_at(builtin::PRIORITY_PROPERTY)
                    .map(|p| p as i64)
                    .unwrap_or(0);
            }
            if qos.transmission.timely {
                if let Some(ttl_ms) = view.number_at(builtin::TTL_PROPERTY) {
                    deadline =
                        Some(now + psc_simnet::Duration::from_millis(ttl_ms.max(0.0) as u64));
                }
            }
        }
    }
    (priority, deadline)
}

/// The stable QoS-class label of a publish (`reliable-fifo`, `certified`,
/// `unreliable`, …), used as the `sem=` trace token keying the derived
/// `span.e2e.<class>` latency histograms.
fn qos_class(qos: &QosSpec) -> String {
    let delivery = match qos.delivery {
        Delivery::Unreliable => "unreliable",
        Delivery::Reliable => "reliable",
        Delivery::Certified => "certified",
    };
    match qos.ordering {
        Ordering::None => delivery.to_string(),
        Ordering::Fifo => format!("{delivery}-fifo"),
        Ordering::Causal => format!("{delivery}-causal"),
        Ordering::Total => format!("{delivery}-total"),
    }
}

/// Chooses the multicast protocol a channel's QoS demands; `None` selects
/// the direct best-effort path.
pub(crate) fn make_proto(qos: &QosSpec, config: &DaceConfig) -> Option<Box<dyn Multicast>> {
    match qos.ordering {
        Ordering::Total => Some(Box::new(Total::new())),
        Ordering::Causal => Some(Box::new(Causal::new())),
        Ordering::Fifo => Some(Box::new(Fifo::new())),
        Ordering::None => match qos.delivery {
            Delivery::Certified => Some(Box::new(Certified::new())),
            Delivery::Reliable => Some(Box::new(Reliable::new())),
            Delivery::Unreliable => config
                .gossip
                .map(|g| Box::new(Lpbcast::new(g)) as Box<dyn Multicast>),
        },
    }
}

/// The `proto_name` of the protocol [`make_proto`] would choose for
/// `kind`'s QoS — without constructing it. The snapshot in-flight recorder
/// needs the name to decode frame identities on channels it does not own
/// (sharded mode keeps channel state in the workers).
pub(crate) fn proto_name_for(kind: KindId) -> Option<&'static str> {
    let qos = psc_obvent::registry::lookup(kind)
        .map(|k| k.qos().clone())
        .unwrap_or_default();
    match qos.ordering {
        Ordering::Total => Some("total"),
        Ordering::Causal => Some("causal"),
        Ordering::Fifo => Some("fifo"),
        Ordering::None => match qos.delivery {
            Delivery::Certified => Some("certified"),
            Delivery::Reliable => Some("reliable"),
            Delivery::Unreliable => None,
        },
    }
}

pub(crate) fn encode_node_msg(msg: &NodeMsg) -> WireBytes {
    psc_codec::to_wire_bytes(msg).expect("node messages encode")
}

/// The registered name of `kind`, used in per-channel metric names
/// (`dace.channel.<name>.published`); falls back to the numeric id.
pub(crate) fn kind_name(kind: KindId) -> String {
    psc_obvent::registry::lookup(kind)
        .map(|k| k.name().to_string())
        .unwrap_or_else(|| kind.to_string())
}
