use crate::json::JsonValue;
use crate::{exp_buckets, Registry, TraceId, TraceStage, Tracer};

#[test]
fn counter_gauge_roundtrip() {
    let registry = Registry::new();
    let c = registry.counter("a.b.c");
    c.inc();
    c.add(4);
    let g = registry.gauge("a.depth");
    g.set(7);
    g.add(3);
    g.sub(2);
    let snap = registry.snapshot();
    assert_eq!(snap.counter("a.b.c"), 5);
    assert_eq!(snap.gauge("a.depth"), 8);
    assert_eq!(snap.counter("missing"), 0);
}

#[test]
fn same_name_shares_the_cell() {
    let registry = Registry::new();
    registry.counter("dup").inc();
    registry.counter("dup").inc();
    assert_eq!(registry.snapshot().counter("dup"), 2);
}

/// Bucket boundaries are inclusive upper bounds: a value equal to a bound
/// lands in that bound's bucket, one above lands in the next, and anything
/// beyond the last bound lands in the overflow bucket.
#[test]
fn histogram_bucket_boundaries() {
    let registry = Registry::new();
    let h = registry.histogram("lat", &[10, 100, 1000]);
    h.record(0); // -> le 10
    h.record(10); // -> le 10 (inclusive)
    h.record(11); // -> le 100
    h.record(100); // -> le 100
    h.record(101); // -> le 1000
    h.record(1000); // -> le 1000
    h.record(1001); // -> overflow
    h.record(50_000); // -> overflow
    let snap = registry.snapshot();
    let h = snap.histogram("lat").unwrap();
    assert_eq!(h.bounds, vec![10, 100, 1000]);
    assert_eq!(h.buckets, vec![2, 2, 2, 2]);
    assert_eq!(h.count, 8);
    assert_eq!(h.sum, 10 + 11 + 100 + 101 + 1000 + 1001 + 50_000);
}

#[test]
fn histogram_mean_and_empty() {
    let registry = Registry::new();
    let h = registry.histogram("empty", &[1]);
    assert_eq!(registry.snapshot().histogram("empty").unwrap().mean(), 0.0);
    h.record(2);
    h.record(4);
    assert_eq!(registry.snapshot().histogram("empty").unwrap().mean(), 3.0);
}

#[test]
fn exp_buckets_grow_geometrically_and_saturate() {
    assert_eq!(exp_buckets(1, 2, 5), vec![1, 2, 4, 8, 16]);
    assert_eq!(exp_buckets(10, 10, 3), vec![10, 100, 1000]);
    // Saturation instead of overflow on absurd ranges.
    let huge = exp_buckets(u64::MAX / 2, 4, 3);
    assert_eq!(huge[1], u64::MAX);
    assert_eq!(huge[2], u64::MAX);
}

/// Disabled registries record nothing; re-enabling resumes recording on the
/// same handles (the flag is shared, not copied into handles).
#[test]
fn disabled_mode_is_a_no_op() {
    let registry = Registry::disabled();
    let c = registry.counter("quiet");
    let h = registry.histogram("quiet.h", &[1, 2]);
    c.inc();
    h.record(1);
    assert_eq!(registry.snapshot().counter("quiet"), 0);
    assert_eq!(registry.snapshot().histogram("quiet.h").unwrap().count, 0);
    registry.set_enabled(true);
    c.inc();
    h.record(1);
    assert_eq!(registry.snapshot().counter("quiet"), 1);
    assert_eq!(registry.snapshot().histogram("quiet.h").unwrap().count, 1);
}

/// Concurrent increments from crossbeam-scoped threads: every snapshot
/// observed mid-flight is monotone and bounded by the true total, and the
/// final snapshot is exact.
#[test]
fn snapshot_consistency_under_concurrent_increments() {
    const THREADS: usize = 8;
    const PER_THREAD: u64 = 10_000;
    let registry = Registry::new();
    let counter = registry.counter("concurrent.total");
    let hist = registry.histogram("concurrent.sizes", &exp_buckets(1, 2, 12));
    // The vendored crossbeam stand-in exposes channels (not scoped
    // threads); a channel carries each writer's completion notice so the
    // sampler knows when to stop.
    let (done_tx, done_rx) = crossbeam::channel::unbounded::<usize>();

    std::thread::scope(|scope| {
        for id in 0..THREADS {
            let counter = counter.clone();
            let hist = hist.clone();
            let done_tx = done_tx.clone();
            scope.spawn(move || {
                for i in 0..PER_THREAD {
                    counter.inc();
                    hist.record(i % 512);
                }
                done_tx.send(id).unwrap();
            });
        }
        drop(done_tx);
        // A sampler racing the writers: successive snapshots never go
        // backwards and never exceed the eventual total.
        let sampler_registry = registry.clone();
        let sampler = scope.spawn(move || {
            let mut last = 0u64;
            let mut samples = 0u32;
            let mut writers_done = 0usize;
            while writers_done < THREADS {
                while let Ok(_id) = done_rx.try_recv() {
                    writers_done += 1;
                }
                let snap = sampler_registry.snapshot();
                let now = snap.counter("concurrent.total");
                assert!(now >= last, "snapshot went backwards: {last} -> {now}");
                assert!(now <= THREADS as u64 * PER_THREAD);
                let h = snap.histogram("concurrent.sizes").unwrap();
                let bucket_total: u64 = h.buckets.iter().sum();
                // A snapshot is not a global atomic cut (see Registry docs):
                // mid-flight, buckets and count may disagree, but neither
                // can exceed the true total.
                assert!(bucket_total <= THREADS as u64 * PER_THREAD);
                assert!(h.count <= THREADS as u64 * PER_THREAD);
                last = now;
                samples += 1;
            }
            samples
        });
        let samples = sampler.join().unwrap();
        assert!(samples > 0);
    });

    let snap = registry.snapshot();
    assert_eq!(snap.counter("concurrent.total"), THREADS as u64 * PER_THREAD);
    let h = snap.histogram("concurrent.sizes").unwrap();
    assert_eq!(h.count, THREADS as u64 * PER_THREAD);
    assert_eq!(h.buckets.iter().sum::<u64>(), h.count);
}

#[test]
fn trace_ids_are_deterministic_and_readable() {
    let id = TraceId::mint(3, 17);
    assert_eq!(id, TraceId::mint(3, 17));
    assert_ne!(id, TraceId::mint(3, 18));
    assert_ne!(id, TraceId::mint(4, 17));
    assert_eq!(id.origin(), 3);
    assert_eq!(id.seq(), 17);
    assert_eq!(id.to_string(), "t3:17");
    assert!(TraceId::NONE.is_none());
    assert!(!TraceId::mint(0, 1).is_none());
    assert_eq!(TraceId::from_raw(id.as_u64()), id);
}

#[test]
fn tracer_records_and_filters_by_trace() {
    let tracer = Tracer::new(16);
    let a = TraceId::mint(0, 1);
    let b = TraceId::mint(1, 1);
    tracer.record(a, 10, TraceStage::Publish, "kind=Q");
    tracer.record(b, 11, TraceStage::Publish, "");
    tracer.record(a, 20, TraceStage::FilterEval, "destinations=2");
    tracer.record(a, 30, TraceStage::Deliver, "matched=1");
    tracer.record(TraceId::NONE, 40, TraceStage::Deliver, "ignored");
    let path = tracer.events_for(a);
    assert_eq!(path.len(), 3);
    assert_eq!(path[0].stage, TraceStage::Publish);
    assert_eq!(path[2].stage, TraceStage::Deliver);
    assert_eq!(tracer.events().len(), 4);
    assert_eq!(
        tracer.render_path(a),
        "[10us] t0:1 publish kind=Q\n[20us] t0:1 filter-eval destinations=2\n[30us] t0:1 deliver matched=1\n"
    );
}

#[test]
fn tracer_ring_evicts_oldest() {
    let tracer = Tracer::new(2);
    let t = TraceId::mint(0, 1);
    tracer.record(t, 1, TraceStage::Publish, "");
    tracer.record(t, 2, TraceStage::Arrive, "");
    tracer.record(t, 3, TraceStage::Deliver, "");
    let events = tracer.events();
    assert_eq!(events.len(), 2);
    assert_eq!(events[0].at_us, 2);
}

#[test]
fn snapshot_renderings_are_deterministic() {
    let registry = Registry::new();
    registry.counter("z.last").add(2);
    registry.counter("a.first").add(1);
    registry.gauge("m.depth").set(-3);
    registry.histogram("h", &[5, 50]).record(7);
    let snap = registry.snapshot();
    let text = snap.render_text();
    // Name-sorted: a.first before z.last.
    assert!(text.find("a.first").unwrap() < text.find("z.last").unwrap());
    assert_eq!(text, registry.snapshot().render_text());
    let json = snap.render_json();
    assert_eq!(json, registry.snapshot().render_json());
    assert!(json.starts_with("{\"counters\":{\"a.first\":1,\"z.last\":2}"));
    assert!(json.contains("\"m.depth\":-3"));
    assert!(json.contains("\"bounds\":[5,50]"));
}

#[test]
fn json_builder_escapes_and_renders() {
    let doc = JsonValue::obj()
        .set("name", "say \"hi\"\n")
        .set("n", 3u64)
        .set("neg", -4i64)
        .set("pi", 3.5)
        .set("ok", true)
        .set("nothing", JsonValue::Null)
        .set("row", JsonValue::arr().push(1u64).push("two"));
    assert_eq!(
        doc.render(),
        "{\"name\":\"say \\\"hi\\\"\\n\",\"n\":3,\"neg\":-4,\"pi\":3.5,\"ok\":true,\"nothing\":null,\"row\":[1,\"two\"]}"
    );
    assert_eq!(JsonValue::F64(f64::NAN).render(), "null");
}

#[test]
fn counter_sum_by_prefix() {
    let registry = Registry::new();
    registry.counter("group.fifo.holdback").add(2);
    registry.counter("group.fifo.duplicates").add(3);
    registry.counter("group.total.nacks").add(5);
    let snap = registry.snapshot();
    assert_eq!(snap.counter_sum("group.fifo."), 5);
    assert_eq!(snap.counter_sum("group."), 10);
    assert_eq!(snap.counter_sum("dace."), 0);
}

#[test]
fn global_registry_starts_disabled() {
    let c = crate::global().counter("tests.global.probe");
    c.inc();
    assert_eq!(crate::global().snapshot().counter("tests.global.probe"), 0);
    crate::set_global_enabled(true);
    c.inc();
    assert_eq!(crate::global().snapshot().counter("tests.global.probe"), 1);
    crate::set_global_enabled(false);
}
