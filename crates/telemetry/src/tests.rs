use crate::json::JsonValue;
use crate::{exp_buckets, Registry, TraceId, TraceStage, Tracer};

#[test]
fn counter_gauge_roundtrip() {
    let registry = Registry::new();
    let c = registry.counter("a.b.c");
    c.inc();
    c.add(4);
    let g = registry.gauge("a.depth");
    g.set(7);
    g.add(3);
    g.sub(2);
    let snap = registry.snapshot();
    assert_eq!(snap.counter("a.b.c"), 5);
    assert_eq!(snap.gauge("a.depth"), 8);
    assert_eq!(snap.counter("missing"), 0);
}

#[test]
fn same_name_shares_the_cell() {
    let registry = Registry::new();
    registry.counter("dup").inc();
    registry.counter("dup").inc();
    assert_eq!(registry.snapshot().counter("dup"), 2);
}

/// Bucket boundaries are inclusive upper bounds: a value equal to a bound
/// lands in that bound's bucket, one above lands in the next, and anything
/// beyond the last bound lands in the overflow bucket.
#[test]
fn histogram_bucket_boundaries() {
    let registry = Registry::new();
    let h = registry.histogram("lat", &[10, 100, 1000]);
    h.record(0); // -> le 10
    h.record(10); // -> le 10 (inclusive)
    h.record(11); // -> le 100
    h.record(100); // -> le 100
    h.record(101); // -> le 1000
    h.record(1000); // -> le 1000
    h.record(1001); // -> overflow
    h.record(50_000); // -> overflow
    let snap = registry.snapshot();
    let h = snap.histogram("lat").unwrap();
    assert_eq!(h.bounds, vec![10, 100, 1000]);
    assert_eq!(h.buckets, vec![2, 2, 2, 2]);
    assert_eq!(h.count, 8);
    assert_eq!(h.sum, 10 + 11 + 100 + 101 + 1000 + 1001 + 50_000);
}

#[test]
fn histogram_mean_and_empty() {
    let registry = Registry::new();
    let h = registry.histogram("empty", &[1]);
    assert_eq!(registry.snapshot().histogram("empty").unwrap().mean(), 0.0);
    h.record(2);
    h.record(4);
    assert_eq!(registry.snapshot().histogram("empty").unwrap().mean(), 3.0);
}

#[test]
fn exp_buckets_grow_geometrically_and_saturate() {
    assert_eq!(exp_buckets(1, 2, 5), vec![1, 2, 4, 8, 16]);
    assert_eq!(exp_buckets(10, 10, 3), vec![10, 100, 1000]);
    // Saturation instead of overflow on absurd ranges.
    let huge = exp_buckets(u64::MAX / 2, 4, 3);
    assert_eq!(huge[1], u64::MAX);
    assert_eq!(huge[2], u64::MAX);
}

/// Disabled registries record nothing; re-enabling resumes recording on the
/// same handles (the flag is shared, not copied into handles).
#[test]
fn disabled_mode_is_a_no_op() {
    let registry = Registry::disabled();
    let c = registry.counter("quiet");
    let h = registry.histogram("quiet.h", &[1, 2]);
    c.inc();
    h.record(1);
    assert_eq!(registry.snapshot().counter("quiet"), 0);
    assert_eq!(registry.snapshot().histogram("quiet.h").unwrap().count, 0);
    registry.set_enabled(true);
    c.inc();
    h.record(1);
    assert_eq!(registry.snapshot().counter("quiet"), 1);
    assert_eq!(registry.snapshot().histogram("quiet.h").unwrap().count, 1);
}

/// Concurrent increments from crossbeam-scoped threads: every snapshot
/// observed mid-flight is monotone and bounded by the true total, and the
/// final snapshot is exact.
#[test]
fn snapshot_consistency_under_concurrent_increments() {
    const THREADS: usize = 8;
    const PER_THREAD: u64 = 10_000;
    let registry = Registry::new();
    let counter = registry.counter("concurrent.total");
    let hist = registry.histogram("concurrent.sizes", &exp_buckets(1, 2, 12));
    // The vendored crossbeam stand-in exposes channels (not scoped
    // threads); a channel carries each writer's completion notice so the
    // sampler knows when to stop.
    let (done_tx, done_rx) = crossbeam::channel::unbounded::<usize>();

    std::thread::scope(|scope| {
        for id in 0..THREADS {
            let counter = counter.clone();
            let hist = hist.clone();
            let done_tx = done_tx.clone();
            scope.spawn(move || {
                for i in 0..PER_THREAD {
                    counter.inc();
                    hist.record(i % 512);
                }
                done_tx.send(id).unwrap();
            });
        }
        drop(done_tx);
        // A sampler racing the writers: successive snapshots never go
        // backwards and never exceed the eventual total.
        let sampler_registry = registry.clone();
        let sampler = scope.spawn(move || {
            let mut last = 0u64;
            let mut samples = 0u32;
            let mut writers_done = 0usize;
            while writers_done < THREADS {
                while let Ok(_id) = done_rx.try_recv() {
                    writers_done += 1;
                }
                let snap = sampler_registry.snapshot();
                let now = snap.counter("concurrent.total");
                assert!(now >= last, "snapshot went backwards: {last} -> {now}");
                assert!(now <= THREADS as u64 * PER_THREAD);
                let h = snap.histogram("concurrent.sizes").unwrap();
                let bucket_total: u64 = h.buckets.iter().sum();
                // A snapshot is not a global atomic cut (see Registry docs):
                // mid-flight, buckets and count may disagree, but neither
                // can exceed the true total.
                assert!(bucket_total <= THREADS as u64 * PER_THREAD);
                assert!(h.count <= THREADS as u64 * PER_THREAD);
                last = now;
                samples += 1;
            }
            samples
        });
        let samples = sampler.join().unwrap();
        assert!(samples > 0);
    });

    let snap = registry.snapshot();
    assert_eq!(snap.counter("concurrent.total"), THREADS as u64 * PER_THREAD);
    let h = snap.histogram("concurrent.sizes").unwrap();
    assert_eq!(h.count, THREADS as u64 * PER_THREAD);
    assert_eq!(h.buckets.iter().sum::<u64>(), h.count);
}

#[test]
fn trace_ids_are_deterministic_and_readable() {
    let id = TraceId::mint(3, 17);
    assert_eq!(id, TraceId::mint(3, 17));
    assert_ne!(id, TraceId::mint(3, 18));
    assert_ne!(id, TraceId::mint(4, 17));
    assert_eq!(id.origin(), 3);
    assert_eq!(id.seq(), 17);
    assert_eq!(id.to_string(), "t3:17");
    assert!(TraceId::NONE.is_none());
    assert!(!TraceId::mint(0, 1).is_none());
    assert_eq!(TraceId::from_raw(id.as_u64()), id);
}

#[test]
fn tracer_records_and_filters_by_trace() {
    let tracer = Tracer::new(16);
    let a = TraceId::mint(0, 1);
    let b = TraceId::mint(1, 1);
    tracer.record(a, 10, TraceStage::Publish, "kind=Q");
    tracer.record(b, 11, TraceStage::Publish, "");
    tracer.record(a, 20, TraceStage::FilterEval, "destinations=2");
    tracer.record(a, 30, TraceStage::Deliver, "matched=1");
    tracer.record(TraceId::NONE, 40, TraceStage::Deliver, "ignored");
    let path = tracer.events_for(a);
    assert_eq!(path.len(), 3);
    assert_eq!(path[0].stage, TraceStage::Publish);
    assert_eq!(path[2].stage, TraceStage::Deliver);
    assert_eq!(tracer.events().len(), 4);
    assert_eq!(
        tracer.render_path(a),
        "[10us] t0:1 publish kind=Q\n[20us] t0:1 filter-eval destinations=2\n[30us] t0:1 deliver matched=1\n"
    );
}

#[test]
fn tracer_ring_evicts_oldest() {
    let tracer = Tracer::new(2);
    let t = TraceId::mint(0, 1);
    tracer.record(t, 1, TraceStage::Publish, "");
    tracer.record(t, 2, TraceStage::Arrive, "");
    tracer.record(t, 3, TraceStage::Deliver, "");
    let events = tracer.events();
    assert_eq!(events.len(), 2);
    assert_eq!(events[0].at_us, 2);
}

#[test]
fn snapshot_renderings_are_deterministic() {
    let registry = Registry::new();
    registry.counter("z.last").add(2);
    registry.counter("a.first").add(1);
    registry.gauge("m.depth").set(-3);
    registry.histogram("h", &[5, 50]).record(7);
    let snap = registry.snapshot();
    let text = snap.render_text();
    // Name-sorted: a.first before z.last.
    assert!(text.find("a.first").unwrap() < text.find("z.last").unwrap());
    assert_eq!(text, registry.snapshot().render_text());
    let json = snap.render_json();
    assert_eq!(json, registry.snapshot().render_json());
    assert!(json.starts_with("{\"counters\":{\"a.first\":1,\"z.last\":2}"));
    assert!(json.contains("\"m.depth\":-3"));
    assert!(json.contains("\"bounds\":[5,50]"));
}

#[test]
fn json_builder_escapes_and_renders() {
    let doc = JsonValue::obj()
        .set("name", "say \"hi\"\n")
        .set("n", 3u64)
        .set("neg", -4i64)
        .set("pi", 3.5)
        .set("ok", true)
        .set("nothing", JsonValue::Null)
        .set("row", JsonValue::arr().push(1u64).push("two"));
    assert_eq!(
        doc.render(),
        "{\"name\":\"say \\\"hi\\\"\\n\",\"n\":3,\"neg\":-4,\"pi\":3.5,\"ok\":true,\"nothing\":null,\"row\":[1,\"two\"]}"
    );
    assert_eq!(JsonValue::F64(f64::NAN).render(), "null");
}

#[test]
fn counter_sum_by_prefix() {
    let registry = Registry::new();
    registry.counter("group.fifo.holdback").add(2);
    registry.counter("group.fifo.duplicates").add(3);
    registry.counter("group.total.nacks").add(5);
    let snap = registry.snapshot();
    assert_eq!(snap.counter_sum("group.fifo."), 5);
    assert_eq!(snap.counter_sum("group."), 10);
    assert_eq!(snap.counter_sum("dace."), 0);
}

#[test]
fn global_registry_starts_disabled() {
    let c = crate::global().counter("tests.global.probe");
    c.inc();
    assert_eq!(crate::global().snapshot().counter("tests.global.probe"), 0);
    crate::set_global_enabled(true);
    c.inc();
    assert_eq!(crate::global().snapshot().counter("tests.global.probe"), 1);
    crate::set_global_enabled(false);
}

// ---- diagnosis layer ------------------------------------------------------

use crate::health::{HealthConfig, HealthMonitor};
use crate::recorder::FlightRecorder;
use crate::span::{derive_spans, record_spans, stage_order};

#[test]
fn percentile_of_empty_histogram_is_zero() {
    let registry = Registry::new();
    registry.histogram("lat", &[10, 100]);
    let h = registry.snapshot().histogram("lat").unwrap().clone();
    assert_eq!(h.count, 0);
    assert_eq!(h.max, 0);
    assert_eq!(h.percentile(0.5), 0);
    assert_eq!(h.percentile(1.0), 0);
    assert_eq!(h.mean(), 0.0);
}

#[test]
fn percentile_single_bucket_reports_the_real_extremum() {
    let registry = Registry::new();
    let hist = registry.histogram("lat", &[1_000]);
    hist.record(3);
    hist.record(7);
    let h = registry.snapshot().histogram("lat").unwrap().clone();
    // Both observations sit in the only finite bucket (le 1000); the
    // estimate is capped at the tracked max instead of the coarse bound.
    assert_eq!(h.max, 7);
    assert_eq!(h.percentile(0.5), 7);
    assert_eq!(h.percentile(0.99), 7);
    assert_eq!(h.mean(), 5.0);
}

#[test]
fn percentile_overflow_bucket_uses_tracked_max() {
    let registry = Registry::new();
    let hist = registry.histogram("lat", &[10, 100]);
    for v in [1, 5, 50, 5_000] {
        hist.record(v);
    }
    let h = registry.snapshot().histogram("lat").unwrap().clone();
    assert_eq!(h.max, 5_000);
    assert_eq!(h.percentile(0.25), 10); // rank 1 → first bucket bound
    assert_eq!(h.percentile(0.5), 10); // rank 2 → still le 10
    assert_eq!(h.percentile(0.75), 100); // rank 3 → le 100
    // rank 4 lands in the overflow bucket: the exact max, not +inf.
    assert_eq!(h.percentile(0.99), 5_000);
    assert_eq!(h.percentile(1.0), 5_000);
    // Out-of-range quantiles clamp.
    assert_eq!(h.percentile(-1.0), 10);
    assert_eq!(h.percentile(2.0), 5_000);
}

#[test]
fn percentiles_appear_in_renderings() {
    let registry = Registry::new();
    let hist = registry.histogram("lat", &[10, 100]);
    hist.record(4);
    hist.record(90);
    hist.record(900);
    let snap = registry.snapshot();
    let text = snap.render_text();
    assert!(text.contains("p50=100 p90=900 p99=900 max=900"), "{text}");
    let json = snap.render_json();
    assert!(json.contains("\"max\":900"), "{json}");
    assert!(json.contains("\"p99\":900"), "{json}");
}

#[test]
fn json_parse_roundtrips_rendered_documents() {
    let doc = JsonValue::obj()
        .set("name", "say \"hi\"\n\t\\")
        .set("n", 3u64)
        .set("neg", -4i64)
        .set("pi", 3.5)
        .set("ok", true)
        .set("nothing", JsonValue::Null)
        .set("row", JsonValue::arr().push(1u64).push("two"));
    let parsed = JsonValue::parse(&doc.render()).unwrap();
    assert_eq!(parsed, doc);
    // Accessors navigate the parsed tree.
    assert_eq!(parsed.get("n").and_then(|v| v.as_u64()), Some(3));
    assert_eq!(parsed.get("pi").and_then(|v| v.as_f64()), Some(3.5));
    assert_eq!(parsed.get("name").and_then(|v| v.as_str()), Some("say \"hi\"\n\t\\"));
    assert_eq!(parsed.get("row").map(|v| v.items().len()), Some(2));
}

#[test]
fn json_parse_rejects_garbage() {
    assert!(JsonValue::parse("").is_err());
    assert!(JsonValue::parse("{").is_err());
    assert!(JsonValue::parse("[1,]").is_err());
    assert!(JsonValue::parse("42 tail").is_err());
    assert!(JsonValue::parse("\"unterminated").is_err());
    // Whitespace tolerance and nested structures.
    let v = JsonValue::parse(" { \"a\" : [ 1 , 2.5 , { \"b\" : null } ] } ").unwrap();
    assert_eq!(v.get("a").map(|a| a.items().len()), Some(3));
}

#[test]
fn spans_derive_stage_deltas_and_e2e_latency_per_class() {
    let tracer = Tracer::new(64);
    let t = TraceId::mint(0, 1);
    // Out-of-order recording on purpose: derivation must sort by time,
    // then by canonical pipeline position for equal timestamps.
    tracer.record(t, 300, TraceStage::Deliver, "at=n2 matched=1");
    tracer.record(t, 0, TraceStage::Publish, "kind=Q at=n0 sem=reliable-fifo");
    tracer.record(t, 0, TraceStage::GroupBroadcast, "proto=fifo");
    tracer.record(t, 120, TraceStage::GroupDeliver, "at=n1");
    tracer.record(t, 120, TraceStage::Deliver, "at=n1 matched=1");
    let spans = derive_spans(&tracer.events());
    assert_eq!(spans.len(), 1);
    let span = &spans[0];
    assert_eq!(span.class, "reliable-fifo");
    assert_eq!(span.publish_us, 0);
    let stages: Vec<_> = span.hops.iter().map(|h| h.stage).collect();
    assert_eq!(
        stages,
        vec![
            TraceStage::Publish,
            TraceStage::GroupBroadcast,
            TraceStage::GroupDeliver,
            TraceStage::Deliver,
            TraceStage::Deliver,
        ]
    );
    // Monotone timestamps and correct hop deltas.
    assert!(span.hops.windows(2).all(|w| w[0].at_us <= w[1].at_us));
    assert_eq!(
        span.hops.iter().map(|h| h.delta_us).collect::<Vec<_>>(),
        vec![0, 0, 120, 0, 180]
    );
    assert_eq!(span.e2e, vec![(Some(1), 120), (Some(2), 300)]);

    let registry = Registry::new();
    let recorded = record_spans(&spans, &registry);
    assert_eq!(recorded, 2);
    let snap = registry.snapshot();
    let e2e = snap.histogram("span.e2e.reliable-fifo").unwrap();
    assert_eq!(e2e.count, 2);
    assert_eq!(e2e.max, 300);
    assert!(snap.histogram("span.stage.group-deliver").is_some());
    assert!(snap.histogram("span.e2e.unclassified").is_none());
}

#[test]
fn stage_order_is_total_over_the_pipeline() {
    use TraceStage::*;
    let stages = [
        Publish, GroupBroadcast, FilterEval, TransmitEnqueue, Brokered,
        GroupDeliver, Arrive, Expired, Deliver,
    ];
    let mut seen = std::collections::BTreeSet::new();
    for s in stages {
        assert!(seen.insert(stage_order(s)), "duplicate order for {s:?}");
    }
    assert!(stage_order(Publish) < stage_order(Deliver));
}

#[test]
fn flight_recorder_ring_and_deterministic_dumps() {
    let recorder = FlightRecorder::new("n0", 3);
    recorder.record(1, "deliver", "t0:1");
    recorder.record(2, "metric", "group.delivered +1");
    recorder.record(3, "deliver", "t0:2");
    recorder.record(4, "deliver", "t0:3"); // evicts [1us]
    assert_eq!(recorder.len(), 3);
    assert_eq!(recorder.dropped(), 1);
    assert_eq!(recorder.last(2).len(), 2);
    assert_eq!(recorder.last(2)[0].at_us, 3);
    let text = recorder.dump_text();
    assert_eq!(text, recorder.dump_text(), "dump must be stable");
    assert!(text.starts_with("flight-recorder n0 events=3 dropped=1\n"), "{text}");
    assert!(text.contains("[4us] deliver t0:3\n"), "{text}");
    let json = recorder.dump_json().render();
    assert!(json.contains("\"node\":\"n0\""), "{json}");
    assert_eq!(JsonValue::parse(&json).unwrap().render(), json);
    recorder.set_enabled(false);
    recorder.record(9, "ignored", "");
    assert_eq!(recorder.len(), 3);
}

#[test]
fn health_monitor_flags_stalls_and_storms() {
    let registry = Registry::new();
    let recorder = std::sync::Arc::new(FlightRecorder::new("n1", 16));
    let monitor = HealthMonitor::new(
        registry.clone(),
        Some(std::sync::Arc::clone(&recorder)),
        HealthConfig { stall_sweeps: 3, storm_delta: 10 },
    );
    // A draining queue never stalls.
    monitor.observe_depth(100, "fifo.holdback", 5);
    monitor.observe_depth(200, "fifo.holdback", 2);
    monitor.observe_depth(300, "fifo.holdback", 0);
    assert_eq!(registry.snapshot().counter("health.stall.fifo.holdback"), 0);
    // A stuck queue stalls after three non-draining sweeps.
    for at in [400, 500, 600, 700] {
        monitor.observe_depth(at, "fifo.holdback", 4);
    }
    let snap = registry.snapshot();
    assert_eq!(snap.counter("health.stall.fifo.holdback"), 2, "sweeps 3 and 4");
    assert_eq!(snap.gauge("health.queue.fifo.holdback"), 4);
    assert_eq!(snap.gauge("health.watermark.fifo.holdback"), 5);
    assert!(recorder
        .events()
        .iter()
        .any(|e| e.label == "health.stall" && e.detail.contains("queue=fifo.holdback")));

    // Retransmit storm: a counter jumping >= storm_delta inside one sweep.
    let wire = Registry::new();
    wire.counter("group.reliable.retransmits").add(3);
    monitor.observe_counters(800, &wire.snapshot());
    assert_eq!(registry.snapshot().counter("health.retransmit_storm"), 0);
    wire.counter("group.reliable.retransmits").add(50);
    monitor.observe_counters(900, &wire.snapshot());
    assert_eq!(registry.snapshot().counter("health.retransmit_storm"), 1);
}
