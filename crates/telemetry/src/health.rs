//! The stall watchdog: turns periodic queue-depth sweeps into health
//! metrics and flight-recorder events.
//!
//! A host (the group sim-host or the DACE node) arms a virtual-time timer
//! and, each sweep, feeds its protocol queue depths and a counter snapshot
//! into a [`HealthMonitor`]. The monitor keeps per-queue trend state and
//! emits:
//!
//! - `health.queue.<name>` — current depth gauge;
//! - `health.watermark.<name>` — high-watermark gauge (never decreases);
//! - `health.stall.<name>` — counter bumped once per sweep in which the
//!   queue has been non-empty and non-draining for
//!   [`HealthConfig::stall_sweeps`] consecutive sweeps (an *unprogressed
//!   obvent* signal — something is parked/held back and nothing is moving
//!   it);
//! - `health.retransmit_storm` — counter bumped when any `*.retransmits`
//!   or `*.nacks` counter grows by at least [`HealthConfig::storm_delta`]
//!   within one sweep interval.
//!
//! All state lives in `BTreeMap`s and all decisions depend only on
//! virtual-time sweep inputs, so health output is deterministic under seed
//! replay.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

use crate::export::Snapshot;
use crate::metrics::Registry;
use crate::recorder::FlightRecorder;

/// Watchdog thresholds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HealthConfig {
    /// Consecutive non-draining, non-empty sweeps before a queue is
    /// declared stalled.
    pub stall_sweeps: u32,
    /// Minimum per-sweep growth of a `*.retransmits` / `*.nacks` counter
    /// that counts as a retransmit storm.
    pub storm_delta: u64,
}

impl Default for HealthConfig {
    fn default() -> HealthConfig {
        HealthConfig {
            stall_sweeps: 3,
            storm_delta: 32,
        }
    }
}

#[derive(Debug, Default)]
struct DepthTrack {
    last: u64,
    watermark: u64,
    /// Consecutive sweeps with `depth > 0 && depth >= last`.
    stuck_sweeps: u32,
}

#[derive(Debug, Default)]
struct HealthState {
    depths: BTreeMap<String, DepthTrack>,
    counters: BTreeMap<String, u64>,
}

/// Per-node watchdog state machine; see the module docs.
#[derive(Debug)]
pub struct HealthMonitor {
    registry: Registry,
    recorder: Option<Arc<FlightRecorder>>,
    config: HealthConfig,
    state: Mutex<HealthState>,
}

impl HealthMonitor {
    /// A monitor recording into (a clone of) `registry` and, when given,
    /// narrating findings into `recorder`.
    pub fn new(
        registry: Registry,
        recorder: Option<Arc<FlightRecorder>>,
        config: HealthConfig,
    ) -> HealthMonitor {
        HealthMonitor {
            registry,
            recorder,
            config,
            state: Mutex::new(HealthState::default()),
        }
    }

    /// The thresholds in force.
    pub fn config(&self) -> HealthConfig {
        self.config
    }

    /// Feeds one queue's depth for the current sweep. `name` is the
    /// queue's stable identifier (`fifo.holdback`, `dace.parked`, …).
    pub fn observe_depth(&self, at_us: u64, name: &str, depth: u64) {
        self.registry
            .gauge(&format!("health.queue.{name}"))
            .set(depth as i64);
        let mut state = self.state.lock().expect("health monitor poisoned");
        let track = state.depths.entry(name.to_string()).or_default();
        if depth > track.watermark {
            track.watermark = depth;
            self.registry
                .gauge(&format!("health.watermark.{name}"))
                .set(depth as i64);
        }
        if depth > 0 && depth >= track.last {
            track.stuck_sweeps += 1;
        } else {
            track.stuck_sweeps = 0;
        }
        track.last = depth;
        if track.stuck_sweeps >= self.config.stall_sweeps {
            self.registry.bump(&format!("health.stall.{name}"), 1);
            if let Some(recorder) = &self.recorder {
                recorder.record(
                    at_us,
                    "health.stall",
                    format!(
                        "queue={name} depth={depth} stuck_sweeps={}",
                        track.stuck_sweeps
                    ),
                );
            }
        }
    }

    /// Feeds a counter snapshot for the current sweep; detects retransmit
    /// storms from the per-sweep growth of `*.retransmits` / `*.nacks`
    /// counters.
    pub fn observe_counters(&self, at_us: u64, snapshot: &Snapshot) {
        let mut state = self.state.lock().expect("health monitor poisoned");
        for (name, &value) in &snapshot.counters {
            if !(name.ends_with(".retransmits") || name.ends_with(".nacks")) {
                continue;
            }
            let last = state.counters.insert(name.clone(), value).unwrap_or(0);
            let delta = value.saturating_sub(last);
            if delta >= self.config.storm_delta {
                self.registry.bump("health.retransmit_storm", 1);
                if let Some(recorder) = &self.recorder {
                    recorder.record(
                        at_us,
                        "health.retransmit_storm",
                        format!("counter={name} delta={delta}"),
                    );
                }
            }
        }
    }

    /// Runs one full sweep: every queue depth, then the counter snapshot.
    pub fn sweep(&self, at_us: u64, depths: &[(String, u64)], snapshot: &Snapshot) {
        for (name, depth) in depths {
            self.observe_depth(at_us, name, *depth);
        }
        self.observe_counters(at_us, snapshot);
    }
}
