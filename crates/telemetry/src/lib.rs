#![warn(missing_docs)]

//! # psc-telemetry — stack-wide observability
//!
//! The paper delegates all substrate performance to external measurement;
//! this reproduction measures itself. Three pieces:
//!
//! 1. a **metrics registry** ([`Registry`]) of lock-cheap atomic
//!    [`Counter`]s, [`Gauge`]s and fixed-bucket [`Histogram`]s,
//!    hierarchically named (`dace.channel.<kind>.published`,
//!    `group.causal.holdback`, `codec.encode_bytes`), with a zero-overhead
//!    disabled mode and a deterministic [`Snapshot`] API;
//! 2. **causal event tracing** ([`TraceId`], [`Tracer`]): every publish
//!    mints a trace id carried in the wire envelope through codec framing,
//!    group-protocol hops, DACE routing, remote-filter evaluation and
//!    handler dispatch, so a single obvent's publish→filter→deliver path
//!    can be reconstructed per node — deterministically, because ids derive
//!    from `(node, publish seq)` and events are stamped with virtual time;
//! 3. **exporters**: canonical text ([`Snapshot::render_text`]) and
//!    machine-readable JSON ([`Snapshot::render_json`], [`json::JsonValue`])
//!    feeding the `BENCH_*.json` perf trajectory;
//! 4. a **diagnosis layer**: latency [`span`]s derived from the trace
//!    stream (per-stage and per-QoS-class end-to-end histograms with
//!    p50/p90/p99/max), a per-node [`recorder::FlightRecorder`] that dumps
//!    deterministic post-mortems, a stall watchdog
//!    ([`health::HealthMonitor`]) sweeping protocol queue depths, and an
//!    [`Inspect`] trait for deterministic state reports.
//!
//! The crate is dependency-free (serde only) and sits at the bottom of the
//! workspace DAG so every layer — `psc-codec`, `psc-group`, `psc-dace`,
//! `pubsub-core`, `psc-simnet` — can record into it.
//!
//! ```
//! use psc_telemetry::Registry;
//!
//! let registry = Registry::new();
//! let published = registry.counter("dace.channel.StockQuote.published");
//! let sizes = registry.histogram("codec.encode_bytes", &[16, 64, 256, 1024]);
//! published.inc();
//! sizes.record(120);
//! let snap = registry.snapshot();
//! assert_eq!(snap.counter("dace.channel.StockQuote.published"), 1);
//! assert_eq!(snap.histogram("codec.encode_bytes").unwrap().count, 1);
//! ```

mod export;
pub mod health;
pub mod inspect;
pub mod json;
mod metrics;
pub mod recorder;
pub mod span;
mod trace;

pub use export::Snapshot;
pub use health::{HealthConfig, HealthMonitor};
pub use inspect::{Inspect, ReportBuilder};
pub use metrics::{
    exp_buckets, Counter, Gauge, Histogram, HistogramSnapshot, Registry,
};
pub use recorder::{FlightEvent, FlightRecorder, DEFAULT_FLIGHT_CAPACITY};
pub use span::{derive_spans, record_spans, record_tracer_spans, ObventSpan, SpanStage};
pub use trace::{TraceEvent, TraceId, TraceStage, Tracer, DEFAULT_TRACE_CAPACITY};

use std::sync::OnceLock;

/// The process-global registry: shared by instrumentation sites that have
/// no per-component registry to record into (e.g. the codec's encode/decode
/// counters). **Starts disabled** so un-instrumented programs pay only a
/// relaxed load per site; flip it on with [`set_global_enabled`].
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::disabled)
}

/// Enables or disables the process-global registry.
pub fn set_global_enabled(enabled: bool) {
    global().set_enabled(enabled);
}

#[cfg(test)]
mod tests;
