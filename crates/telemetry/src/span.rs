//! Latency spans derived from the causal trace stream.
//!
//! The [`Tracer`](crate::Tracer) records *point events* — one hop of one
//! obvent at one virtual time. This module folds those points back into
//! **timed spans**: for every trace id, the ordered pipeline
//! (publish → group hop → route → filter → deliver) with per-stage dwell
//! times and one end-to-end latency sample per delivery. Samples are
//! recorded into fixed-bucket histograms:
//!
//! - `span.stage.<stage>` — virtual µs spent *reaching* that stage from the
//!   previous hop of the same trace (e.g. `span.stage.group-deliver` is the
//!   group-dissemination leg);
//! - `span.e2e.<class>` — publish→deliver virtual µs, keyed by the
//!   publish's QoS class (the `sem=<class>` token the DACE publisher puts
//!   in its `publish` trace detail; `unclassified` when absent).
//!
//! Everything here is deterministic: spans derive only from virtual-time
//! stamps and the derivation sorts by `(time, pipeline position, detail)`,
//! so two replays of one seed produce identical spans, histograms and
//! percentile estimates.

use std::collections::BTreeMap;

use crate::metrics::{exp_buckets, Registry};
use crate::trace::{TraceEvent, TraceId, TraceStage, Tracer};

/// Canonical pipeline position of a stage — the sort key that breaks ties
/// between hops recorded at the same virtual microsecond (the simulator
/// runs whole handler activations at one timestamp).
pub fn stage_order(stage: TraceStage) -> u8 {
    match stage {
        TraceStage::Publish => 0,
        TraceStage::GroupBroadcast => 1,
        TraceStage::FilterEval => 2,
        TraceStage::TransmitEnqueue => 3,
        TraceStage::Brokered => 4,
        TraceStage::GroupDeliver => 5,
        TraceStage::Arrive => 6,
        TraceStage::Expired => 7,
        TraceStage::Deliver => 8,
    }
}

/// One hop inside an [`ObventSpan`], with its dwell time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanStage {
    /// Pipeline position.
    pub stage: TraceStage,
    /// Virtual time of the hop, microseconds.
    pub at_us: u64,
    /// Microseconds since the previous hop of the same trace (0 for the
    /// first hop).
    pub delta_us: u64,
    /// The hop's free-form detail, verbatim from the trace event.
    pub detail: String,
}

/// The reconstructed life of one traced obvent.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ObventSpan {
    /// The obvent's identity.
    pub trace: TraceId,
    /// QoS class parsed from the publish hop's `sem=<class>` token;
    /// `"unclassified"` when the publisher did not stamp one.
    pub class: String,
    /// Virtual time of the publish hop (of the earliest hop when the
    /// publish event was evicted from the ring).
    pub publish_us: u64,
    /// Every hop, ordered by `(at_us, pipeline position, detail)`.
    pub hops: Vec<SpanStage>,
    /// One `(delivering node, publish→deliver µs)` sample per `deliver`
    /// hop; the node is parsed from the hop's `at=n<id>` token.
    pub e2e: Vec<(Option<u64>, u64)>,
}

impl ObventSpan {
    /// Canonical multi-line rendering (`t0:1 class=reliable-fifo` header,
    /// one indented line per hop with its `+delta`).
    pub fn render(&self) -> String {
        let mut out = format!("{} class={}\n", self.trace, self.class);
        for hop in &self.hops {
            out.push_str(&format!(
                "  [{}us +{}us] {} {}\n",
                hop.at_us,
                hop.delta_us,
                hop.stage.name(),
                hop.detail
            ));
        }
        out
    }
}

/// Pulls `key=<value>` out of a trace detail string (whitespace-separated
/// tokens).
pub fn detail_field<'a>(detail: &'a str, key: &str) -> Option<&'a str> {
    detail
        .split_whitespace()
        .find_map(|tok| tok.strip_prefix(key).and_then(|rest| rest.strip_prefix('=')))
}

/// Parses the delivering node out of an `at=n<id>` detail token.
pub fn detail_node(detail: &str) -> Option<u64> {
    detail_field(detail, "at")
        .and_then(|v| v.strip_prefix('n'))
        .and_then(|v| v.parse().ok())
}

/// Derives one span per trace id from a batch of trace events. Spans are
/// returned sorted by trace id; hops within a span are sorted by
/// `(at_us, pipeline position, detail)`, so the derivation is a pure,
/// deterministic function of the event set.
pub fn derive_spans(events: &[TraceEvent]) -> Vec<ObventSpan> {
    let mut by_trace: BTreeMap<TraceId, Vec<&TraceEvent>> = BTreeMap::new();
    for event in events {
        by_trace.entry(event.trace).or_default().push(event);
    }
    by_trace
        .into_iter()
        .map(|(trace, mut hops)| {
            hops.sort_by(|a, b| {
                (a.at_us, stage_order(a.stage), a.detail.as_str())
                    .cmp(&(b.at_us, stage_order(b.stage), b.detail.as_str()))
            });
            let publish = hops.iter().find(|e| e.stage == TraceStage::Publish);
            let class = publish
                .and_then(|e| detail_field(&e.detail, "sem"))
                .unwrap_or("unclassified")
                .to_string();
            let publish_us = publish
                .map(|e| e.at_us)
                .or_else(|| hops.first().map(|e| e.at_us))
                .unwrap_or(0);
            let mut staged = Vec::with_capacity(hops.len());
            let mut e2e = Vec::new();
            let mut prev_us = None;
            for hop in hops {
                let delta_us = hop.at_us.saturating_sub(prev_us.unwrap_or(hop.at_us));
                prev_us = Some(hop.at_us);
                if hop.stage == TraceStage::Deliver {
                    e2e.push((
                        detail_node(&hop.detail),
                        hop.at_us.saturating_sub(publish_us),
                    ));
                }
                staged.push(SpanStage {
                    stage: hop.stage,
                    at_us: hop.at_us,
                    delta_us,
                    detail: hop.detail.clone(),
                });
            }
            ObventSpan {
                trace,
                class,
                publish_us,
                hops: staged,
                e2e,
            }
        })
        .collect()
}

/// The bucket ladder used for span histograms: 64µs … ~2s, doubling.
pub fn span_buckets() -> Vec<u64> {
    exp_buckets(64, 2, 16)
}

/// Records derived spans into `registry`:
/// `span.stage.<stage>` gets every non-initial hop's dwell time and
/// `span.e2e.<class>` gets one sample per delivery. Returns the number of
/// end-to-end samples recorded.
pub fn record_spans(spans: &[ObventSpan], registry: &Registry) -> u64 {
    let buckets = span_buckets();
    let mut recorded = 0u64;
    for span in spans {
        let mut first = true;
        for hop in &span.hops {
            if first {
                first = false;
                continue;
            }
            registry
                .histogram(&format!("span.stage.{}", hop.stage.name()), &buckets)
                .record(hop.delta_us);
        }
        for &(_, latency_us) in &span.e2e {
            registry
                .histogram(&format!("span.e2e.{}", span.class), &buckets)
                .record(latency_us);
            recorded += 1;
        }
    }
    recorded
}

/// Convenience: derive spans from everything a tracer holds and record
/// them, returning the spans for further inspection.
pub fn record_tracer_spans(tracer: &Tracer, registry: &Registry) -> Vec<ObventSpan> {
    let spans = derive_spans(&tracer.events());
    record_spans(&spans, registry);
    spans
}
