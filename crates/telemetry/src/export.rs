//! Exporters: canonical text rendering and machine-readable JSON.
//!
//! Both renderings are **deterministic**: metrics are emitted in
//! lexicographic name order (`BTreeMap` iteration), so two identical runs
//! export byte-identical documents — the property the harness's determinism
//! oracle and the `BENCH_*.json` perf trajectory both rely on.

use std::collections::BTreeMap;

use crate::json::JsonValue;
use crate::metrics::HistogramSnapshot;

/// A point-in-time image of a [`Registry`](crate::Registry).
#[derive(Debug, Clone, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct Snapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, i64>,
    /// Histogram images by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl Snapshot {
    /// Counter value, 0 when absent.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Gauge value, 0 when absent.
    pub fn gauge(&self, name: &str) -> i64 {
        self.gauges.get(name).copied().unwrap_or(0)
    }

    /// Histogram image, if recorded.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.get(name)
    }

    /// Sum of all counters whose name starts with `prefix`.
    pub fn counter_sum(&self, prefix: &str) -> u64 {
        self.counters
            .iter()
            .filter(|(name, _)| name.starts_with(prefix))
            .map(|(_, &v)| v)
            .sum()
    }

    /// Canonical text rendering: one metric per line, name-sorted,
    /// byte-stable across identical runs.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for (name, value) in &self.counters {
            out.push_str(&format!("counter {name} = {value}\n"));
        }
        for (name, value) in &self.gauges {
            out.push_str(&format!("gauge {name} = {value}\n"));
        }
        for (name, h) in &self.histograms {
            out.push_str(&format!(
                "histogram {name} count={} sum={} mean={:.2} p50={} p90={} p99={} max={}\n",
                h.count,
                h.sum,
                h.mean(),
                h.percentile(0.50),
                h.percentile(0.90),
                h.percentile(0.99),
                h.max,
            ));
            for (i, &bucket) in h.buckets.iter().enumerate() {
                if bucket == 0 {
                    continue;
                }
                match h.bounds.get(i) {
                    Some(bound) => out.push_str(&format!("  le {bound} : {bucket}\n")),
                    None => out.push_str(&format!("  le +inf : {bucket}\n")),
                }
            }
        }
        out
    }

    /// Machine-readable JSON value (`{"counters":{…},"gauges":{…},
    /// "histograms":{…}}`), consumed by the `BENCH_*.json` perf trajectory.
    pub fn to_json(&self) -> JsonValue {
        let mut counters = JsonValue::obj();
        for (name, &value) in &self.counters {
            counters = counters.set(name.clone(), value);
        }
        let mut gauges = JsonValue::obj();
        for (name, &value) in &self.gauges {
            gauges = gauges.set(name.clone(), value);
        }
        let mut histograms = JsonValue::obj();
        for (name, h) in &self.histograms {
            let mut bounds = JsonValue::arr();
            for &b in &h.bounds {
                bounds = bounds.push(b);
            }
            let mut buckets = JsonValue::arr();
            for &b in &h.buckets {
                buckets = buckets.push(b);
            }
            histograms = histograms.set(
                name.clone(),
                JsonValue::obj()
                    .set("bounds", bounds)
                    .set("buckets", buckets)
                    .set("count", h.count)
                    .set("sum", h.sum)
                    .set("max", h.max)
                    .set("p50", h.percentile(0.50))
                    .set("p90", h.percentile(0.90))
                    .set("p99", h.percentile(0.99)),
            );
        }
        JsonValue::obj()
            .set("counters", counters)
            .set("gauges", gauges)
            .set("histograms", histograms)
    }

    /// Compact JSON text of [`Snapshot::to_json`].
    pub fn render_json(&self) -> String {
        self.to_json().render()
    }
}
