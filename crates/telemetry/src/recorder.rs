//! The flight recorder: a bounded per-node ring of recent happenings
//! (trace hops, metric deltas, health findings) that can be dumped as a
//! deterministic post-mortem when an invariant oracle fails.
//!
//! Unlike the [`Tracer`](crate::Tracer) — which keeps structured hops for
//! span derivation — the recorder keeps *rendered* one-liners of anything a
//! component thinks worth remembering, in arrival order, capped at a fixed
//! capacity. Dumps are byte-stable across replays of the same seed because
//! every entry is stamped with virtual time and recorded from the
//! deterministic event loop.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

use crate::json::JsonValue;
use crate::trace::TraceEvent;

/// Default entry capacity of a [`FlightRecorder`].
pub const DEFAULT_FLIGHT_CAPACITY: usize = 256;

/// One remembered happening.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlightEvent {
    /// Virtual time, microseconds.
    pub at_us: u64,
    /// Short category label (`deliver`, `metric`, `health.stall`, …).
    pub label: String,
    /// Free-form context.
    pub detail: String,
}

impl FlightEvent {
    /// Canonical one-line rendering.
    pub fn render(&self) -> String {
        if self.detail.is_empty() {
            format!("[{}us] {}", self.at_us, self.label)
        } else {
            format!("[{}us] {} {}", self.at_us, self.label, self.detail)
        }
    }
}

/// A bounded ring of [`FlightEvent`]s owned by one node.
#[derive(Debug)]
pub struct FlightRecorder {
    name: String,
    capacity: usize,
    ring: Mutex<VecDeque<FlightEvent>>,
    enabled: AtomicBool,
    /// Entries evicted from the front of the ring so far.
    dropped: Mutex<u64>,
}

impl FlightRecorder {
    /// A recorder named `name` (shows up in dump headers) holding at most
    /// `capacity` events, oldest evicted first.
    pub fn new(name: impl Into<String>, capacity: usize) -> FlightRecorder {
        FlightRecorder {
            name: name.into(),
            capacity: capacity.max(1),
            ring: Mutex::new(VecDeque::new()),
            enabled: AtomicBool::new(true),
            dropped: Mutex::new(0),
        }
    }

    /// The recorder's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Turns recording on or off.
    pub fn set_enabled(&self, enabled: bool) {
        self.enabled.store(enabled, Ordering::Relaxed);
    }

    /// Whether recording is on.
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Remembers one happening.
    pub fn record(&self, at_us: u64, label: impl Into<String>, detail: impl Into<String>) {
        if !self.is_enabled() {
            return;
        }
        let mut ring = self.ring.lock().expect("recorder poisoned");
        if ring.len() >= self.capacity {
            ring.pop_front();
            *self.dropped.lock().expect("recorder poisoned") += 1;
        }
        ring.push_back(FlightEvent {
            at_us,
            label: label.into(),
            detail: detail.into(),
        });
    }

    /// Remembers a trace hop (label = stage name, detail = `t<o>:<s>` plus
    /// the hop's own detail).
    pub fn record_trace(&self, event: &TraceEvent) {
        self.record(
            event.at_us,
            event.stage.name(),
            if event.detail.is_empty() {
                event.trace.to_string()
            } else {
                format!("{} {}", event.trace, event.detail)
            },
        );
    }

    /// Remembers a metric movement (`metric` label, `name +delta` detail).
    pub fn record_metric(&self, at_us: u64, name: &str, delta: u64) {
        self.record(at_us, "metric", format!("{name} +{delta}"));
    }

    /// Everything currently remembered, oldest first.
    pub fn events(&self) -> Vec<FlightEvent> {
        self.ring
            .lock()
            .expect("recorder poisoned")
            .iter()
            .cloned()
            .collect()
    }

    /// The most recent `n` events, oldest of those first.
    pub fn last(&self, n: usize) -> Vec<FlightEvent> {
        let ring = self.ring.lock().expect("recorder poisoned");
        ring.iter().skip(ring.len().saturating_sub(n)).cloned().collect()
    }

    /// Number of remembered events.
    pub fn len(&self) -> usize {
        self.ring.lock().expect("recorder poisoned").len()
    }

    /// Whether nothing is remembered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Entries evicted so far (ring overflow).
    pub fn dropped(&self) -> u64 {
        *self.dropped.lock().expect("recorder poisoned")
    }

    /// Forgets everything.
    pub fn clear(&self) {
        self.ring.lock().expect("recorder poisoned").clear();
        *self.dropped.lock().expect("recorder poisoned") = 0;
    }

    /// Deterministic text post-mortem: a header naming the recorder plus
    /// one line per remembered event.
    pub fn dump_text(&self) -> String {
        let events = self.events();
        let mut out = format!(
            "flight-recorder {} events={} dropped={}\n",
            self.name,
            events.len(),
            self.dropped()
        );
        for event in &events {
            out.push_str("  ");
            out.push_str(&event.render());
            out.push('\n');
        }
        out
    }

    /// Deterministic JSON post-mortem mirroring [`dump_text`].
    ///
    /// [`dump_text`]: FlightRecorder::dump_text
    pub fn dump_json(&self) -> JsonValue {
        let mut events = JsonValue::arr();
        for event in self.events() {
            events = events.push(
                JsonValue::obj()
                    .set("at_us", event.at_us)
                    .set("label", event.label)
                    .set("detail", event.detail),
            );
        }
        JsonValue::obj()
            .set("node", self.name.clone())
            .set("dropped", self.dropped())
            .set("events", events)
    }
}
