//! Causal event tracing: one [`TraceId`] per publish, carried in the wire
//! envelope across every hop, so each node can reconstruct the
//! publish→filter→deliver path of a single obvent.
//!
//! Trace ids are **minted deterministically** from `(origin node, per-node
//! publish sequence)` — no wall clock, no global randomness — so traces are
//! byte-identical under the deterministic simulator's seed replay.

use std::collections::VecDeque;
use std::sync::Mutex;
use std::sync::atomic::{AtomicBool, Ordering};

use serde::{Deserialize, Serialize};

/// Identity of one publish, carried end to end in the wire envelope.
///
/// `0` is reserved for *untraced* envelopes (control traffic, relays of
/// foreign payloads); minted ids pack `(origin + 1)` in the high bits and
/// the origin's publish sequence in the low 40 bits, which keeps them
/// unique per run and readable in reports (`t<origin>:<seq>`).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default, Serialize, Deserialize,
)]
pub struct TraceId(u64);

const SEQ_BITS: u32 = 40;
const SEQ_MASK: u64 = (1 << SEQ_BITS) - 1;

impl TraceId {
    /// The untraced id (control traffic, pre-telemetry envelopes).
    pub const NONE: TraceId = TraceId(0);

    /// Mints the id of `origin`'s `seq`-th publish (`seq` starts at 1).
    pub fn mint(origin: u64, seq: u64) -> TraceId {
        TraceId(((origin + 1) << SEQ_BITS) | (seq & SEQ_MASK))
    }

    /// Reconstructs a trace id from its raw wire value.
    pub fn from_raw(raw: u64) -> TraceId {
        TraceId(raw)
    }

    /// The raw wire value.
    pub fn as_u64(self) -> u64 {
        self.0
    }

    /// True for the reserved untraced id.
    pub fn is_none(self) -> bool {
        self.0 == 0
    }

    /// The minting node (meaningless for [`TraceId::NONE`]).
    pub fn origin(self) -> u64 {
        (self.0 >> SEQ_BITS).saturating_sub(1)
    }

    /// The per-origin publish sequence number.
    pub fn seq(self) -> u64 {
        self.0 & SEQ_MASK
    }
}

impl std::fmt::Display for TraceId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.is_none() {
            write!(f, "t-")
        } else {
            write!(f, "t{}:{}", self.origin(), self.seq())
        }
    }
}

/// Where along the pipeline a trace event was recorded.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TraceStage {
    /// The obvent entered the fabric at its publisher.
    Publish,
    /// Handed to a multicast-class protocol for dissemination.
    GroupBroadcast,
    /// A multicast-class protocol delivered the payload on some node.
    GroupDeliver,
    /// Queued on the direct (best-effort) transmit path.
    TransmitEnqueue,
    /// Dropped because its time-to-live expired (in queue or on arrival).
    Expired,
    /// Arrived at a node over the direct path.
    Arrive,
    /// Forwarded through a filtering host (broker placement).
    Brokered,
    /// Remote-filter evaluation chose the destination set.
    FilterEval,
    /// Dispatched to matching local handlers.
    Deliver,
}

impl TraceStage {
    /// Canonical lower-case name used in renderings.
    pub fn name(self) -> &'static str {
        match self {
            TraceStage::Publish => "publish",
            TraceStage::GroupBroadcast => "group-broadcast",
            TraceStage::GroupDeliver => "group-deliver",
            TraceStage::TransmitEnqueue => "transmit-enqueue",
            TraceStage::Expired => "expired",
            TraceStage::Arrive => "arrive",
            TraceStage::Brokered => "brokered",
            TraceStage::FilterEval => "filter-eval",
            TraceStage::Deliver => "deliver",
        }
    }
}

/// One recorded hop of one traced obvent, local to the recording node.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceEvent {
    /// The obvent's wire-carried identity.
    pub trace: TraceId,
    /// Virtual time of the hop, microseconds.
    pub at_us: u64,
    /// Pipeline position.
    pub stage: TraceStage,
    /// Free-form context (`kind=StockQuote matched=2`).
    pub detail: String,
}

impl TraceEvent {
    /// Canonical one-line rendering.
    pub fn render(&self) -> String {
        if self.detail.is_empty() {
            format!("[{}us] {} {}", self.at_us, self.trace, self.stage.name())
        } else {
            format!(
                "[{}us] {} {} {}",
                self.at_us,
                self.trace,
                self.stage.name(),
                self.detail
            )
        }
    }
}

/// Default event capacity of a [`Tracer`] ring buffer.
pub const DEFAULT_TRACE_CAPACITY: usize = 4096;

/// A per-node event recorder: a bounded ring of [`TraceEvent`]s.
///
/// Recording takes a mutex, but tracing sits off the per-message fast path
/// (it fires only at pipeline boundaries) and the whole structure can be
/// disabled into a load-and-branch.
#[derive(Debug)]
pub struct Tracer {
    events: Mutex<VecDeque<TraceEvent>>,
    capacity: usize,
    enabled: AtomicBool,
}

impl Default for Tracer {
    fn default() -> Self {
        Tracer::new(DEFAULT_TRACE_CAPACITY)
    }
}

impl Tracer {
    /// A tracer holding at most `capacity` events (oldest evicted first).
    pub fn new(capacity: usize) -> Tracer {
        Tracer {
            events: Mutex::new(VecDeque::new()),
            capacity: capacity.max(1),
            enabled: AtomicBool::new(true),
        }
    }

    /// Turns recording on or off.
    pub fn set_enabled(&self, enabled: bool) {
        self.enabled.store(enabled, Ordering::Relaxed);
    }

    /// Whether recording is on.
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Records one hop; untraced ids and disabled tracers are no-ops.
    pub fn record(&self, trace: TraceId, at_us: u64, stage: TraceStage, detail: impl Into<String>) {
        if trace.is_none() || !self.is_enabled() {
            return;
        }
        let mut events = self.events.lock().expect("tracer poisoned");
        if events.len() >= self.capacity {
            events.pop_front();
        }
        events.push_back(TraceEvent {
            trace,
            at_us,
            stage,
            detail: detail.into(),
        });
    }

    /// All recorded events, in recording order.
    pub fn events(&self) -> Vec<TraceEvent> {
        self.events.lock().expect("tracer poisoned").iter().cloned().collect()
    }

    /// The recorded hops of one trace id, in recording order.
    pub fn events_for(&self, trace: TraceId) -> Vec<TraceEvent> {
        self.events
            .lock()
            .expect("tracer poisoned")
            .iter()
            .filter(|e| e.trace == trace)
            .cloned()
            .collect()
    }

    /// Canonical multi-line rendering of one trace's local path.
    pub fn render_path(&self, trace: TraceId) -> String {
        let mut out = String::new();
        for event in self.events_for(trace) {
            out.push_str(&event.render());
            out.push('\n');
        }
        out
    }

    /// Drops all recorded events.
    pub fn clear(&self) {
        self.events.lock().expect("tracer poisoned").clear();
    }
}
