//! A minimal JSON document builder and parser.
//!
//! The build environment vendors offline stand-ins instead of crates.io, so
//! no `serde_json` is available; this module provides the small subset the
//! exporters and bench report binaries need: building a value tree,
//! rendering it as canonical (sorted-insertion-order, escaped) JSON text,
//! and parsing a document back ([`JsonValue::parse`]) so tools like the
//! bench-regression gate can diff fresh reports against committed
//! baselines.

/// A JSON value tree.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// An unsigned integer (rendered without a decimal point).
    U64(u64),
    /// A signed integer (rendered without a decimal point).
    I64(i64),
    /// A float (rendered via `{:?}`; NaN/inf degrade to `null`).
    F64(f64),
    /// A string (escaped on render).
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object (insertion-ordered key/value pairs).
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// An empty object.
    pub fn obj() -> JsonValue {
        JsonValue::Obj(Vec::new())
    }

    /// An empty array.
    pub fn arr() -> JsonValue {
        JsonValue::Arr(Vec::new())
    }

    /// Adds `key: value` to an object (panics on non-objects — builder
    /// misuse is a programming error).
    pub fn set(mut self, key: impl Into<String>, value: impl Into<JsonValue>) -> JsonValue {
        match &mut self {
            JsonValue::Obj(pairs) => pairs.push((key.into(), value.into())),
            _ => panic!("JsonValue::set on a non-object"),
        }
        self
    }

    /// Appends an element to an array (panics on non-arrays).
    pub fn push(mut self, value: impl Into<JsonValue>) -> JsonValue {
        match &mut self {
            JsonValue::Arr(items) => items.push(value.into()),
            _ => panic!("JsonValue::push on a non-array"),
        }
        self
    }

    /// Object member by key (first match); `None` for non-objects.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(pairs) => {
                pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v)
            }
            _ => None,
        }
    }

    /// Array elements; empty for non-arrays.
    pub fn items(&self) -> &[JsonValue] {
        match self {
            JsonValue::Arr(items) => items,
            _ => &[],
        }
    }

    /// Numeric value as `f64` (integers widen); `None` otherwise.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::U64(n) => Some(*n as f64),
            JsonValue::I64(n) => Some(*n as f64),
            JsonValue::F64(x) => Some(*x),
            _ => None,
        }
    }

    /// Unsigned integer value (also accepts a non-negative integral
    /// float); `None` otherwise.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::U64(n) => Some(*n),
            JsonValue::I64(n) if *n >= 0 => Some(*n as u64),
            JsonValue::F64(x) if *x >= 0.0 && x.fract() == 0.0 => Some(*x as u64),
            _ => None,
        }
    }

    /// String value; `None` otherwise.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Parses a JSON document. Integers without a fraction or exponent
    /// parse as [`JsonValue::U64`]/[`JsonValue::I64`]; everything else
    /// numeric parses as [`JsonValue::F64`]. Trailing garbage is an error.
    pub fn parse(text: &str) -> Result<JsonValue, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing data at byte {}", p.pos));
        }
        Ok(value)
    }

    /// Renders the tree as compact JSON text.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::U64(n) => out.push_str(&n.to_string()),
            JsonValue::I64(n) => out.push_str(&n.to_string()),
            JsonValue::F64(x) => {
                if x.is_finite() {
                    out.push_str(&format!("{x:?}"));
                } else {
                    out.push_str("null");
                }
            }
            JsonValue::Str(s) => write_escaped(out, s),
            JsonValue::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            JsonValue::Obj(pairs) => {
                out.push('{');
                for (i, (key, value)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, key);
                    out.push(':');
                    value.write(out);
                }
                out.push('}');
            }
        }
    }
}

/// Recursive-descent parser over the raw bytes; positions index into the
/// original `&str`, so slicing back out of it is always UTF-8 safe.
struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, word: &str, value: JsonValue) -> Result<JsonValue, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<JsonValue, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'"') => self.string().map(JsonValue::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn array(&mut self) -> Result<JsonValue, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<JsonValue, String> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Obj(pairs));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| "invalid utf-8 in string".to_string())?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| "unterminated escape".to_string())?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| "short \\u escape".to_string())?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| "bad \\u escape".to_string())?;
                            self.pos += 4;
                            // Surrogate pairs are not needed by our own
                            // documents; map lone surrogates to U+FFFD.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                }
                _ => return Err("unterminated string".to_string()),
            }
        }
    }

    fn number(&mut self) -> Result<JsonValue, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut integral = true;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    integral = false;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| "invalid number".to_string())?;
        if integral {
            if !text.starts_with('-') {
                if let Ok(n) = text.parse::<u64>() {
                    return Ok(JsonValue::U64(n));
                }
            } else if let Ok(i) = text.parse::<i64>() {
                return Ok(JsonValue::I64(i));
            }
        }
        text.parse::<f64>()
            .map(JsonValue::F64)
            .map_err(|_| format!("invalid number '{text}' at byte {start}"))
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

impl From<bool> for JsonValue {
    fn from(b: bool) -> JsonValue {
        JsonValue::Bool(b)
    }
}
impl From<u64> for JsonValue {
    fn from(n: u64) -> JsonValue {
        JsonValue::U64(n)
    }
}
impl From<usize> for JsonValue {
    fn from(n: usize) -> JsonValue {
        JsonValue::U64(n as u64)
    }
}
impl From<u32> for JsonValue {
    fn from(n: u32) -> JsonValue {
        JsonValue::U64(n as u64)
    }
}
impl From<i64> for JsonValue {
    fn from(n: i64) -> JsonValue {
        JsonValue::I64(n)
    }
}
impl From<f64> for JsonValue {
    fn from(x: f64) -> JsonValue {
        JsonValue::F64(x)
    }
}
impl From<&str> for JsonValue {
    fn from(s: &str) -> JsonValue {
        JsonValue::Str(s.to_string())
    }
}
impl From<String> for JsonValue {
    fn from(s: String) -> JsonValue {
        JsonValue::Str(s)
    }
}
