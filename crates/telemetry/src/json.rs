//! A minimal JSON document builder.
//!
//! The build environment vendors offline stand-ins instead of crates.io, so
//! no `serde_json` is available; this module provides the small subset the
//! exporters and bench report binaries need: building a value tree and
//! rendering it as canonical (sorted-insertion-order, escaped) JSON text.

/// A JSON value tree.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// An unsigned integer (rendered without a decimal point).
    U64(u64),
    /// A signed integer (rendered without a decimal point).
    I64(i64),
    /// A float (rendered via `{:?}`; NaN/inf degrade to `null`).
    F64(f64),
    /// A string (escaped on render).
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object (insertion-ordered key/value pairs).
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// An empty object.
    pub fn obj() -> JsonValue {
        JsonValue::Obj(Vec::new())
    }

    /// An empty array.
    pub fn arr() -> JsonValue {
        JsonValue::Arr(Vec::new())
    }

    /// Adds `key: value` to an object (panics on non-objects — builder
    /// misuse is a programming error).
    pub fn set(mut self, key: impl Into<String>, value: impl Into<JsonValue>) -> JsonValue {
        match &mut self {
            JsonValue::Obj(pairs) => pairs.push((key.into(), value.into())),
            _ => panic!("JsonValue::set on a non-object"),
        }
        self
    }

    /// Appends an element to an array (panics on non-arrays).
    pub fn push(mut self, value: impl Into<JsonValue>) -> JsonValue {
        match &mut self {
            JsonValue::Arr(items) => items.push(value.into()),
            _ => panic!("JsonValue::push on a non-array"),
        }
        self
    }

    /// Renders the tree as compact JSON text.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::U64(n) => out.push_str(&n.to_string()),
            JsonValue::I64(n) => out.push_str(&n.to_string()),
            JsonValue::F64(x) => {
                if x.is_finite() {
                    out.push_str(&format!("{x:?}"));
                } else {
                    out.push_str("null");
                }
            }
            JsonValue::Str(s) => write_escaped(out, s),
            JsonValue::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            JsonValue::Obj(pairs) => {
                out.push('{');
                for (i, (key, value)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, key);
                    out.push(':');
                    value.write(out);
                }
                out.push('}');
            }
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

impl From<bool> for JsonValue {
    fn from(b: bool) -> JsonValue {
        JsonValue::Bool(b)
    }
}
impl From<u64> for JsonValue {
    fn from(n: u64) -> JsonValue {
        JsonValue::U64(n)
    }
}
impl From<usize> for JsonValue {
    fn from(n: usize) -> JsonValue {
        JsonValue::U64(n as u64)
    }
}
impl From<u32> for JsonValue {
    fn from(n: u32) -> JsonValue {
        JsonValue::U64(n as u64)
    }
}
impl From<i64> for JsonValue {
    fn from(n: i64) -> JsonValue {
        JsonValue::I64(n)
    }
}
impl From<f64> for JsonValue {
    fn from(x: f64) -> JsonValue {
        JsonValue::F64(x)
    }
}
impl From<&str> for JsonValue {
    fn from(s: &str) -> JsonValue {
        JsonValue::Str(s.to_string())
    }
}
impl From<String> for JsonValue {
    fn from(s: String) -> JsonValue {
        JsonValue::Str(s)
    }
}
