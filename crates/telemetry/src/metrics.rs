//! The metrics registry: hierarchically named counters, gauges and
//! fixed-bucket histograms.
//!
//! Hot paths hold a pre-created handle ([`Counter`], [`Gauge`],
//! [`Histogram`]) and touch only a relaxed atomic per event; the registry's
//! name map is locked only at handle-creation and snapshot time. A registry
//! (or a single handle) can be **disabled**, turning every recording
//! operation into a load-and-branch — the zero-overhead mode the
//! deterministic benchmarks compare against.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::export::Snapshot;

/// Shared enabled flag: one relaxed load gates every recording.
type Enabled = Arc<AtomicBool>;

#[derive(Debug, Default)]
struct CounterCell {
    value: AtomicU64,
}

#[derive(Debug, Default)]
struct GaugeCell {
    value: AtomicI64,
}

#[derive(Debug)]
struct HistogramCell {
    /// Upper bounds (inclusive) of the finite buckets, strictly increasing;
    /// an implicit overflow bucket catches everything above the last bound.
    bounds: Vec<u64>,
    /// `bounds.len() + 1` buckets (the last is the overflow bucket).
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
    /// Largest observed value — exact, so percentile estimation has a real
    /// upper edge for the otherwise unbounded overflow bucket.
    max: AtomicU64,
}

impl HistogramCell {
    fn new(bounds: Vec<u64>) -> HistogramCell {
        let buckets = (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect();
        HistogramCell {
            bounds,
            buckets,
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    fn record(&self, value: u64) {
        let idx = self.bounds.partition_point(|&b| b < value);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }
}

/// A monotonically increasing counter handle (cheap to clone).
#[derive(Debug, Clone)]
pub struct Counter {
    cell: Arc<CounterCell>,
    enabled: Enabled,
}

impl Counter {
    /// A detached counter that records into nothing (always disabled).
    pub fn noop() -> Counter {
        Counter {
            cell: Arc::new(CounterCell::default()),
            enabled: Arc::new(AtomicBool::new(false)),
        }
    }

    /// Increments by one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Increments by `delta`.
    #[inline]
    pub fn add(&self, delta: u64) {
        if self.enabled.load(Ordering::Relaxed) {
            self.cell.value.fetch_add(delta, Ordering::Relaxed);
        }
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.cell.value.load(Ordering::Relaxed)
    }
}

/// A gauge handle: a signed value that can move both ways.
#[derive(Debug, Clone)]
pub struct Gauge {
    cell: Arc<GaugeCell>,
    enabled: Enabled,
}

impl Gauge {
    /// A detached gauge that records into nothing (always disabled).
    pub fn noop() -> Gauge {
        Gauge {
            cell: Arc::new(GaugeCell::default()),
            enabled: Arc::new(AtomicBool::new(false)),
        }
    }

    /// Sets the gauge.
    #[inline]
    pub fn set(&self, value: i64) {
        if self.enabled.load(Ordering::Relaxed) {
            self.cell.value.store(value, Ordering::Relaxed);
        }
    }

    /// Adds `delta` (may be negative).
    #[inline]
    pub fn add(&self, delta: i64) {
        if self.enabled.load(Ordering::Relaxed) {
            self.cell.value.fetch_add(delta, Ordering::Relaxed);
        }
    }

    /// Subtracts `delta`.
    #[inline]
    pub fn sub(&self, delta: i64) {
        self.add(-delta);
    }

    /// The current value.
    pub fn get(&self) -> i64 {
        self.cell.value.load(Ordering::Relaxed)
    }
}

/// A fixed-bucket histogram handle (latencies, message sizes).
#[derive(Debug, Clone)]
pub struct Histogram {
    cell: Arc<HistogramCell>,
    enabled: Enabled,
}

impl Histogram {
    /// A detached histogram that records into nothing (always disabled).
    pub fn noop() -> Histogram {
        Histogram {
            cell: Arc::new(HistogramCell::new(vec![1])),
            enabled: Arc::new(AtomicBool::new(false)),
        }
    }

    /// Records one observation.
    #[inline]
    pub fn record(&self, value: u64) {
        if self.enabled.load(Ordering::Relaxed) {
            self.cell.record(value);
        }
    }

    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.cell.count.load(Ordering::Relaxed)
    }

    /// Sum of all observations.
    pub fn sum(&self) -> u64 {
        self.cell.sum.load(Ordering::Relaxed)
    }

    /// Largest observation so far (0 before any recording).
    pub fn max(&self) -> u64 {
        self.cell.max.load(Ordering::Relaxed)
    }
}

/// Point-in-time image of one histogram.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct HistogramSnapshot {
    /// Inclusive upper bounds of the finite buckets.
    pub bounds: Vec<u64>,
    /// Per-bucket observation counts; one longer than `bounds` (overflow
    /// bucket last).
    pub buckets: Vec<u64>,
    /// Total observations.
    pub count: u64,
    /// Sum of all observed values.
    pub sum: u64,
    /// Largest observed value (0 with no observations).
    pub max: u64,
}

impl HistogramSnapshot {
    /// Mean observation. Defined as 0 for an empty histogram (never
    /// NaN), and computed from the exact running `sum`, so it is not
    /// subject to bucket-resolution error — including values that landed
    /// in the overflow bucket.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        self.sum as f64 / self.count as f64
    }

    /// Estimates the `q`-quantile (`q` in `[0,1]`, clamped) from the fixed
    /// buckets.
    ///
    /// The estimate is the inclusive upper bound of the bucket holding the
    /// rank-`⌈q·count⌉` observation — a conservative (never optimistic)
    /// figure that is exactly reproducible across runs. Two refinements
    /// keep the tails honest:
    ///
    /// - the overflow bucket reports the exact tracked [`max`], not
    ///   `+inf`;
    /// - any estimate is capped at [`max`], so a single-bucket histogram
    ///   reports its real extremum rather than a coarse bound.
    ///
    /// Returns 0 for an empty histogram.
    ///
    /// [`max`]: HistogramSnapshot::max
    pub fn percentile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &bucket) in self.buckets.iter().enumerate() {
            seen += bucket;
            if seen >= rank {
                return match self.bounds.get(i) {
                    Some(&bound) => bound.min(self.max),
                    None => self.max, // overflow bucket
                };
            }
        }
        self.max
    }
}

/// Exponential bucket bounds: `start, start*factor, …` (`n` bounds).
/// The conventional shape for latency and size histograms.
pub fn exp_buckets(start: u64, factor: u64, n: usize) -> Vec<u64> {
    let mut bounds = Vec::with_capacity(n);
    let mut b = start.max(1);
    for _ in 0..n {
        bounds.push(b);
        b = b.saturating_mul(factor.max(2));
    }
    bounds
}

#[derive(Default)]
struct Maps {
    counters: BTreeMap<String, Arc<CounterCell>>,
    gauges: BTreeMap<String, Arc<GaugeCell>>,
    histograms: BTreeMap<String, Arc<HistogramCell>>,
}

/// A named-metric registry. Cloning shares the underlying store.
///
/// Names are hierarchical by convention, dot-separated with the owning
/// layer first: `dace.channel.<kind>.published`, `group.causal.holdback`,
/// `codec.encode_bytes`, `simnet.dropped_loss`, `core.delivered`.
#[derive(Clone)]
pub struct Registry {
    maps: Arc<Mutex<Maps>>,
    enabled: Enabled,
}

impl Default for Registry {
    fn default() -> Self {
        Registry::new()
    }
}

impl Registry {
    /// An enabled, empty registry.
    pub fn new() -> Registry {
        Registry {
            maps: Arc::new(Mutex::new(Maps::default())),
            enabled: Arc::new(AtomicBool::new(true)),
        }
    }

    /// An empty registry that starts disabled (recording is a no-op until
    /// [`Registry::set_enabled`] flips it on).
    pub fn disabled() -> Registry {
        let r = Registry::new();
        r.set_enabled(false);
        r
    }

    /// Turns recording on or off for every handle of this registry.
    pub fn set_enabled(&self, enabled: bool) {
        self.enabled.store(enabled, Ordering::Relaxed);
    }

    /// Whether recording is currently enabled.
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Gets or creates the counter `name`.
    pub fn counter(&self, name: &str) -> Counter {
        let mut maps = self.maps.lock().expect("registry poisoned");
        let cell = maps
            .counters
            .entry(name.to_string())
            .or_default()
            .clone();
        Counter {
            cell,
            enabled: Arc::clone(&self.enabled),
        }
    }

    /// Gets or creates the gauge `name`.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut maps = self.maps.lock().expect("registry poisoned");
        let cell = maps.gauges.entry(name.to_string()).or_default().clone();
        Gauge {
            cell,
            enabled: Arc::clone(&self.enabled),
        }
    }

    /// Gets or creates the histogram `name` with the given bucket bounds
    /// (ignored if the histogram already exists).
    pub fn histogram(&self, name: &str, bounds: &[u64]) -> Histogram {
        let mut maps = self.maps.lock().expect("registry poisoned");
        let cell = maps
            .histograms
            .entry(name.to_string())
            .or_insert_with(|| Arc::new(HistogramCell::new(bounds.to_vec())))
            .clone();
        Histogram {
            cell,
            enabled: Arc::clone(&self.enabled),
        }
    }

    /// Convenience: bumps counter `name` by `delta` (looks the handle up;
    /// hot paths should hold a [`Counter`] instead).
    pub fn bump(&self, name: &str, delta: u64) {
        if self.is_enabled() {
            self.counter(name).add(delta);
        }
    }

    /// A point-in-time snapshot of every metric. Individual values are read
    /// with relaxed ordering: each value is internally consistent and
    /// monotone across successive snapshots, but a snapshot is not a global
    /// atomic cut across metrics.
    pub fn snapshot(&self) -> Snapshot {
        let maps = self.maps.lock().expect("registry poisoned");
        Snapshot {
            counters: maps
                .counters
                .iter()
                .map(|(name, cell)| (name.clone(), cell.value.load(Ordering::Relaxed)))
                .collect(),
            gauges: maps
                .gauges
                .iter()
                .map(|(name, cell)| (name.clone(), cell.value.load(Ordering::Relaxed)))
                .collect(),
            histograms: maps
                .histograms
                .iter()
                .map(|(name, cell)| {
                    (
                        name.clone(),
                        HistogramSnapshot {
                            bounds: cell.bounds.clone(),
                            buckets: cell
                                .buckets
                                .iter()
                                .map(|b| b.load(Ordering::Relaxed))
                                .collect(),
                            count: cell.count.load(Ordering::Relaxed),
                            sum: cell.sum.load(Ordering::Relaxed),
                            max: cell.max.load(Ordering::Relaxed),
                        },
                    )
                })
                .collect(),
        }
    }
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let maps = self.maps.lock().expect("registry poisoned");
        f.debug_struct("Registry")
            .field("enabled", &self.is_enabled())
            .field("counters", &maps.counters.len())
            .field("gauges", &maps.gauges.len())
            .field("histograms", &maps.histograms.len())
            .finish()
    }
}
