//! The introspection plane: components render a deterministic,
//! human-readable report of their current state.
//!
//! [`Inspect`] is deliberately tiny — one method, one `String` — so it can
//! be implemented by every layer (the DACE node, group protocol hosts, the
//! filter index) without dragging their types into this crate. Reports are
//! line-oriented, name-sorted and free of addresses or wall-clock values,
//! so a report is byte-stable across replays of one seed and can be
//! asserted verbatim in tests.

/// Render a deterministic state report.
pub trait Inspect {
    /// The component's current state as indented `key=value` lines.
    ///
    /// Implementations must emit collections in a stable order (sorted by
    /// key) and must not include memory addresses, wall-clock times or
    /// other run-varying values.
    fn inspect(&self) -> String;
}

/// A small indenting line builder for [`Inspect`] implementations — keeps
/// reports structurally uniform across the stack.
#[derive(Debug, Default)]
pub struct ReportBuilder {
    out: String,
    indent: usize,
}

impl ReportBuilder {
    /// An empty report.
    pub fn new() -> ReportBuilder {
        ReportBuilder::default()
    }

    /// Appends one line at the current indent.
    pub fn line(&mut self, text: impl AsRef<str>) -> &mut Self {
        for _ in 0..self.indent {
            self.out.push_str("  ");
        }
        self.out.push_str(text.as_ref());
        self.out.push('\n');
        self
    }

    /// Appends a header line and indents subsequent lines one step.
    pub fn section(&mut self, header: impl AsRef<str>) -> &mut Self {
        self.line(header);
        self.indent += 1;
        self
    }

    /// Ends the innermost section.
    pub fn end(&mut self) -> &mut Self {
        self.indent = self.indent.saturating_sub(1);
        self
    }

    /// The accumulated report.
    pub fn finish(&self) -> String {
        self.out.clone()
    }
}
