#![warn(missing_docs)]

//! # psc-net — the real socket transport
//!
//! Everything below the DACE dissemination layer has so far run against
//! [`psc_simnet`]'s virtual network. This crate cashes in the sans-io
//! design for real I/O: the **same** `DaceNode` / group-protocol cores,
//! unchanged, driven by TCP sockets and a wall clock instead of the
//! discrete-event queue.
//!
//! - [`NetTransport`] hosts one node: an event-loop thread owns the
//!   [`psc_simnet::NodeHost`] (message/timer callbacks run exactly as
//!   under the simulator), reader threads reassemble CRC frames
//!   ([`psc_codec::frame::FrameReassembler`]), writer threads drain
//!   bounded per-peer queues with reconnect + capped exponential backoff.
//! - Serialize-once survives onto the wire: a fan-out clones
//!   [`psc_codec::WireBytes`] *handles* into the peer queues — one
//!   encode, N socket writes, zero payload copies.
//! - [`clock::TimerDriver`] fires `Ctx::set_timer` timers in the
//!   simulator's (deadline, arm-order) order on the wall clock, so
//!   retransmit/heartbeat schedules match virtual time run for run.
//! - `net.*` telemetry lands in the same [`psc_telemetry::Registry`] the
//!   rest of the stack records into, with per-peer queue depths fed to
//!   the [`psc_telemetry::HealthMonitor`] plane.
//! - With [`NetConfig::data_dir`] set, [`FileWal`] mirrors the node's
//!   write-ahead log onto real segment files (fsync on the node's own
//!   sync barriers) and reloads them at startup — a process killed and
//!   restarted under the same identity recovers its durable channels and
//!   resumes certified streams exactly once.
//!
//! [`DaceEndpoint`] packages the common deployment: one `DaceNode`
//! cluster member behind a transport, with typed publish/subscribe via
//! its [`pubsub_core::Domain`]. The `psc-node` binary and the loopback
//! cluster tests are thin wrappers around it. The simulator remains the
//! oracle — the harness checks every delivery against virtual-time runs —
//! and this crate is the deployment product.

pub mod clock;
mod config;
mod metrics;
mod peer;
mod storage;
mod transport;

pub use config::{ClusterParseError, ClusterSpec, NetConfig, PeerSpec};
pub use storage::FileWal;
pub use transport::NetTransport;

use std::io;
use std::sync::Arc;
use std::time::Duration as StdDuration;

use psc_dace::{DaceConfig, DaceNode};
use psc_simnet::NodeId;
use psc_telemetry::{
    FlightRecorder, HealthConfig, HealthMonitor, Inspect, Registry, Snapshot, Tracer,
    DEFAULT_FLIGHT_CAPACITY,
};
use pubsub_core::Domain;

/// A DACE cluster member on the socket transport: the standard deployment
/// unit (`psc-node` is a CLI around this).
pub struct DaceEndpoint {
    transport: NetTransport,
    registry: Arc<Registry>,
    recorder: Arc<FlightRecorder>,
}

impl DaceEndpoint {
    /// Starts a `DaceNode` for `cluster` behind a [`NetTransport`] bound
    /// per `net`, with the full observability plane wired: a fresh
    /// registry shared by node and transport, a flight recorder, and a
    /// health monitor fed both by the node's watchdog (when configured)
    /// and the transport's queue sweeps.
    pub fn start(
        net: NetConfig,
        cluster: Vec<NodeId>,
        dace: DaceConfig,
    ) -> io::Result<DaceEndpoint> {
        let registry = Arc::new(Registry::new());
        let tracer = Arc::new(Tracer::default());
        let recorder = Arc::new(FlightRecorder::new(
            format!("n{}", net.id.0),
            DEFAULT_FLIGHT_CAPACITY,
        ));
        let monitor = Arc::new(HealthMonitor::new(
            registry.as_ref().clone(),
            Some(Arc::clone(&recorder)),
            HealthConfig::default(),
        ));
        let node = DaceNode::with_observability(
            cluster,
            dace,
            Arc::clone(&registry),
            tracer,
            Some(Arc::clone(&recorder)),
            Some(Arc::clone(&monitor)),
        );
        let transport =
            NetTransport::bind(net, Box::new(node), Arc::clone(&registry), Some(monitor))?;
        Ok(DaceEndpoint { transport, registry, recorder })
    }

    /// The underlying transport.
    pub fn transport(&self) -> &NetTransport {
        &self.transport
    }

    /// This endpoint's node id.
    pub fn id(&self) -> NodeId {
        self.transport.id()
    }

    /// The bound listen address (resolves an ephemeral port request).
    pub fn local_addr(&self) -> std::net::SocketAddr {
        self.transport.local_addr()
    }

    /// Runs `f` against the node's [`Domain`] on the event loop — the
    /// local API injection path for publish/subscribe, identical in
    /// effect to [`DaceNode::drive`] under the simulator.
    pub fn with_domain<R: Send + 'static>(
        &self,
        f: impl FnOnce(&Domain) -> R + Send + 'static,
    ) -> R {
        self.transport.act_sync(move |node, ctx| {
            let mut result = None;
            DaceNode::drive_ctx(node, ctx, |domain| {
                result = Some(f(domain));
            });
            result.expect("drive_ctx ran")
        })
    }

    /// Blocks until all dialed peers are connected, or `timeout` elapses.
    pub fn wait_connected(&self, timeout: StdDuration) -> bool {
        self.transport.wait_connected(timeout)
    }

    /// A deterministic snapshot of the endpoint's whole metric plane
    /// (`dace.*`, `group.*`, `net.*`, `snapshot.*`, …).
    pub fn metrics(&self) -> Snapshot {
        self.registry.snapshot()
    }

    /// Initiates a cluster-wide Chandy–Lamport snapshot wave from this
    /// node (it becomes the wave's initiator and assembles the cut);
    /// returns the wave id. Poll [`DaceEndpoint::snapshot_render`] for
    /// completion, or use [`DaceEndpoint::snapshot_capture`] to block.
    pub fn snapshot_initiate(&self) -> u64 {
        self.transport.act_sync(|node, ctx| {
            node.as_any_mut()
                .downcast_mut::<DaceNode>()
                .expect("endpoint hosts a DaceNode")
                .snapshot_initiate(ctx)
        })
    }

    /// The byte-stable rendering of the completed cut this node assembled
    /// for wave `wave`, once every fragment has arrived.
    pub fn snapshot_render(&self, wave: u64) -> Option<String> {
        self.transport.act_sync(move |node, _ctx| {
            node.as_any_mut()
                .downcast_mut::<DaceNode>()
                .expect("endpoint hosts a DaceNode")
                .snapshot_cut()
                .filter(|cut| cut.snap == wave)
                .map(|cut| cut.render())
        })
    }

    /// Initiates a snapshot wave and blocks until the cut completes (the
    /// marker protocol needs one round trip per peer plus retransmits
    /// under loss), or `timeout` elapses; returns the byte-stable cluster
    /// image.
    pub fn snapshot_capture(&self, timeout: StdDuration) -> Option<String> {
        let wave = self.snapshot_initiate();
        let deadline = std::time::Instant::now() + timeout;
        loop {
            if let Some(render) = self.snapshot_render(wave) {
                return Some(render);
            }
            if std::time::Instant::now() >= deadline {
                return None;
            }
            std::thread::sleep(StdDuration::from_millis(20));
        }
    }

    /// The shared registry.
    pub fn registry(&self) -> Arc<Registry> {
        Arc::clone(&self.registry)
    }

    /// The endpoint's flight recorder (post-mortem ring).
    pub fn recorder(&self) -> Arc<FlightRecorder> {
        Arc::clone(&self.recorder)
    }

    /// Combined state report: the hosted node's [`Inspect`] section
    /// followed by the transport's.
    pub fn inspect(&self) -> String {
        let node_report = self.transport.act_sync(|node, _ctx| {
            node.as_any_mut()
                .downcast_mut::<DaceNode>()
                .map(|n| n.inspect())
                .unwrap_or_default()
        });
        format!("{node_report}{}", self.transport.inspect())
    }

    /// Stops the transport and joins its threads.
    pub fn shutdown(&self) {
        self.transport.shutdown();
    }
}
