//! The transport endpoint: sockets in, sans-io node in the middle,
//! sockets out.
//!
//! One [`NetTransport`] hosts one [`Node`] (in practice a
//! `psc_dace::DaceNode`) and owns all the threads around it:
//!
//! - an **event loop** thread that exclusively owns the
//!   [`NodeHost`] — every callback (message, timer, local API injection)
//!   runs here, so node code stays single-threaded exactly as it is under
//!   the simulator, and effects are applied in queue order;
//! - an **accept** thread plus one **reader** thread per inbound
//!   connection, reassembling CRC frames and funnelling them into the
//!   event loop;
//! - one **writer** thread per dialed peer (see [`crate::peer`]).
//!
//! Delivery semantics mirror the simulator where the protocols can tell:
//! self-sends loop back through an internal queue without touching a
//! socket, timers fire in (deadline, arm-order) order, and cancelled
//! timers are suppressed at fire time. What the simulator fakes —
//! latency, loss, reordering across peers — is here supplied by real TCP:
//! per-peer FIFO, no corruption (CRC-checked), arbitrary interleaving
//! between peers. That is exactly the network model the group protocols
//! were built against.

use std::collections::{HashMap, VecDeque};
use std::io::{self, Read};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration as StdDuration;

use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use psc_codec::frame::FrameReassembler;
use psc_codec::WireBytes;
use psc_simnet::{Ctx, Duration, HostEffect, Node, NodeHost, NodeId, SimTime, TimerId};
use psc_telemetry::{HealthMonitor, Inspect, Registry, ReportBuilder, Snapshot};

use crate::clock::{Clock, TimerDriver, WallClock};
use crate::config::NetConfig;
use crate::metrics::NetMetrics;
use crate::peer::Peer;
use crate::storage::FileWal;

/// Wire protocol magic of the hello frame.
const HELLO_MAGIC: &[u8; 4] = b"PSCN";
/// Wire protocol version.
const HELLO_VERSION: u16 = 1;
/// Socket read timeout: bounds how long a reader thread can ignore the
/// shutdown flag.
const READ_TIMEOUT: StdDuration = StdDuration::from_millis(50);
/// Event-loop wait when no timer is pending.
const IDLE_TICK: StdDuration = StdDuration::from_millis(100);

/// Builds the handshake frame payload a dialer sends first.
pub(crate) fn hello_payload(id: NodeId) -> Vec<u8> {
    let mut out = Vec::with_capacity(14);
    out.extend_from_slice(HELLO_MAGIC);
    out.extend_from_slice(&HELLO_VERSION.to_le_bytes());
    out.extend_from_slice(&id.0.to_le_bytes());
    out
}

/// Parses a hello frame payload; `None` means the peer is not speaking
/// our protocol.
fn parse_hello(payload: &[u8]) -> Option<NodeId> {
    if payload.len() != 14 || &payload[..4] != HELLO_MAGIC {
        return None;
    }
    let version = u16::from_le_bytes(payload[4..6].try_into().ok()?);
    if version != HELLO_VERSION {
        return None;
    }
    Some(NodeId(u64::from_le_bytes(payload[6..14].try_into().ok()?)))
}

/// Timer tokens on the event loop's wall-clock heap: the hosted node's
/// own timers plus the transport's maintenance tick.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum NetTimer {
    /// A `Ctx::set_timer` timer of the hosted node.
    Node(TimerId),
    /// The periodic queue-depth / health sweep.
    Sweep,
}

type ActFn = Box<dyn FnOnce(&mut NodeHost, SimTime) -> Vec<HostEffect> + Send>;

enum Event {
    /// A verified frame from a connected peer.
    Incoming { from: NodeId, payload: Vec<u8> },
    /// A local API injection (publish, subscribe, introspection).
    Act(ActFn),
    /// Stop the loop.
    Shutdown,
}

/// A live transport endpoint. Dropping it shuts the endpoint down and
/// joins its threads.
pub struct NetTransport {
    id: NodeId,
    local_addr: SocketAddr,
    events: Sender<Event>,
    shutdown: Arc<AtomicBool>,
    peers: Arc<Mutex<HashMap<NodeId, Arc<Peer>>>>,
    registry: Arc<Registry>,
    metrics: NetMetrics,
    config: NetConfig,
    threads: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

impl NetTransport {
    /// Binds `config.listen`, starts all threads, and runs the node's
    /// `on_start` on the event loop. `registry` should be the same
    /// registry the node records into, so `net.*` and the stack's other
    /// counters share one snapshot; `health`, when given, receives the
    /// transport's periodic queue-depth sweeps.
    pub fn bind(
        config: NetConfig,
        node: Box<dyn Node>,
        registry: Arc<Registry>,
        health: Option<Arc<HealthMonitor>>,
    ) -> io::Result<NetTransport> {
        let listener = TcpListener::bind(&config.listen)?;
        let local_addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;

        let metrics = NetMetrics::new(&registry);
        let shutdown = Arc::new(AtomicBool::new(false));
        let peers: Arc<Mutex<HashMap<NodeId, Arc<Peer>>>> = Arc::new(Mutex::new(HashMap::new()));
        let (events, events_rx) = unbounded();

        let transport = NetTransport {
            id: config.id,
            local_addr,
            events,
            shutdown,
            peers,
            registry,
            metrics,
            config,
            threads: Mutex::new(Vec::new()),
        };

        for peer in transport.config.peers.clone() {
            transport.add_peer(peer.id, &peer.addr);
        }

        // With a data directory, the host starts from the storage the file
        // backend reloaded (the node's own WAL replay then runs against it,
        // exactly like a post-crash recovery under the simulator) and the
        // WAL journal is switched on so every mutation reaches the files.
        let (host, file_wal) = match &transport.config.data_dir {
            Some(dir) => {
                let (storage, wal) = FileWal::open(dir)?;
                let mut host =
                    NodeHost::with_storage(transport.id, node, transport.config.seed, storage);
                host.storage_mut().enable_wal_journal();
                (host, Some(wal))
            }
            None => (NodeHost::new(transport.id, node, transport.config.seed), None),
        };
        let loop_thread = {
            let shutdown = Arc::clone(&transport.shutdown);
            let peers = Arc::clone(&transport.peers);
            let metrics = transport.metrics.clone();
            let registry = Arc::clone(&transport.registry);
            let sweep = Duration::from_millis(transport.config.sweep_interval_ms.max(1));
            std::thread::Builder::new()
                .name(format!("psc-net-loop-n{}", transport.id.0))
                .spawn(move || {
                    event_loop(
                        host, file_wal, events_rx, shutdown, peers, metrics, registry, health,
                        sweep,
                    )
                })?
        };
        let accept_thread = {
            let shutdown = Arc::clone(&transport.shutdown);
            let events = transport.events.clone();
            let metrics = transport.metrics.clone();
            std::thread::Builder::new()
                .name(format!("psc-net-accept-n{}", transport.id.0))
                .spawn(move || accept_loop(listener, events, shutdown, metrics))?
        };
        {
            let mut threads = transport.threads.lock().expect("threads poisoned");
            threads.push(loop_thread);
            threads.push(accept_thread);
        }
        Ok(transport)
    }

    /// This endpoint's node id.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// The bound listen address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The registry this endpoint records into.
    pub fn registry(&self) -> Arc<Registry> {
        Arc::clone(&self.registry)
    }

    /// Registers `id` at `addr` and starts dialing it. Used both at
    /// construction (static peer list) and by tests that bind ephemeral
    /// ports first and exchange addresses afterwards.
    pub fn add_peer(&self, id: NodeId, addr: &str) {
        let peer = Peer::new(
            id,
            addr.to_string(),
            self.id,
            &self.config,
            Arc::clone(&self.shutdown),
            self.metrics.clone(),
        );
        let writer = {
            let peer = Arc::clone(&peer);
            std::thread::Builder::new()
                .name(format!("psc-net-writer-n{}-to-n{}", self.id.0, id.0))
                .spawn(move || peer.run_writer())
                .expect("spawn writer thread")
        };
        self.peers.lock().expect("peers poisoned").insert(id, peer);
        self.threads.lock().expect("threads poisoned").push(writer);
    }

    /// Runs `f` against the hosted node on the event loop, with a live
    /// `Ctx`, and returns its result. Queued effects (sends, timers) are
    /// applied as if a callback had produced them — this is how local API
    /// calls (publish, subscribe) enter the system.
    pub fn act_sync<R: Send + 'static>(
        &self,
        f: impl FnOnce(&mut dyn Node, &mut Ctx<'_>) -> R + Send + 'static,
    ) -> R {
        let (tx, rx) = std::sync::mpsc::channel();
        let sent = self.events.send(Event::Act(Box::new(move |host, now| {
            let mut result = None;
            let effects = host.act(now, |node, ctx| {
                result = Some(f(node, ctx));
            });
            let _ = tx.send(result.expect("act closure ran"));
            effects
        })));
        assert!(sent.is_ok(), "transport event loop stopped");
        rx.recv().expect("transport event loop stopped")
    }

    /// Whether the writer to `id` currently holds a live connection.
    pub fn peer_connected(&self, id: NodeId) -> bool {
        self.peers
            .lock()
            .expect("peers poisoned")
            .get(&id)
            .is_some_and(|p| p.is_connected())
    }

    /// Blocks until every dialed peer is connected or `timeout` elapses;
    /// returns whether they all are.
    pub fn wait_connected(&self, timeout: StdDuration) -> bool {
        let deadline = std::time::Instant::now() + timeout;
        loop {
            let all = {
                let peers = self.peers.lock().expect("peers poisoned");
                peers.values().all(|p| p.is_connected())
            };
            if all {
                return true;
            }
            if std::time::Instant::now() >= deadline {
                return false;
            }
            std::thread::sleep(StdDuration::from_millis(5));
        }
    }

    /// Current outbound queue depths, `(peer label, depth)` per peer.
    pub fn queue_depths(&self) -> Vec<(String, u64)> {
        let peers = self.peers.lock().expect("peers poisoned");
        let mut depths: Vec<(String, u64)> = peers
            .values()
            .map(|p| (format!("net.outbound.n{}", p.id.0), p.depth() as u64))
            .collect();
        depths.sort();
        depths
    }

    /// A deterministic snapshot of the endpoint's registry.
    pub fn snapshot(&self) -> Snapshot {
        self.registry.snapshot()
    }

    /// Stops all threads and waits for them. Idempotent; also run by
    /// `Drop`.
    pub fn shutdown(&self) {
        if self.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        let _ = self.events.send(Event::Shutdown);
        for peer in self.peers.lock().expect("peers poisoned").values() {
            peer.wake_all();
        }
        let threads = std::mem::take(&mut *self.threads.lock().expect("threads poisoned"));
        for thread in threads {
            let _ = thread.join();
        }
    }
}

impl Drop for NetTransport {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl Inspect for NetTransport {
    fn inspect(&self) -> String {
        let mut report = ReportBuilder::new();
        report.section(format!("net endpoint n{}", self.id.0));
        report.line(format!("listen={}", self.local_addr));
        let peers = self.peers.lock().expect("peers poisoned");
        let mut rows: Vec<(u64, bool, usize)> =
            peers.values().map(|p| (p.id.0, p.is_connected(), p.depth())).collect();
        drop(peers);
        rows.sort();
        for (id, connected, depth) in rows {
            report.line(format!(
                "peer=n{id} state={} depth={depth}",
                if connected { "up" } else { "down" }
            ));
        }
        let snapshot = self.registry.snapshot();
        for name in [
            "net.msgs_sent",
            "net.bytes_sent",
            "net.msgs_recv",
            "net.bytes_recv",
            "net.peer.reconnects",
            "net.peer.drop",
            "net.frames.corrupt",
            "net.queue.dropped",
        ] {
            report.line(format!("{name}={}", snapshot.counter(name)));
        }
        report.end();
        report.finish()
    }
}

/// Drains the WAL mutations a callback journaled into real segment files.
/// Runs *before* the callback's effects are applied, so nothing observable
/// (a send, an ack) ever precedes its log record on disk — the same
/// discipline the simulator's crash model enforces. A write failure is
/// fail-stop: continuing would silently void the durability contract.
fn persist_wal(host: &mut NodeHost, wal: &mut Option<FileWal>) {
    if let Some(wal) = wal {
        let ops = host.storage_mut().take_wal_journal();
        if !ops.is_empty() {
            wal.apply(&ops).expect("WAL file write failed; refusing to run undurable");
        }
    }
}

/// The single thread that owns the hosted node.
#[allow(clippy::too_many_arguments)]
fn event_loop(
    mut host: NodeHost,
    mut file_wal: Option<FileWal>,
    events: Receiver<Event>,
    shutdown: Arc<AtomicBool>,
    peers: Arc<Mutex<HashMap<NodeId, Arc<Peer>>>>,
    metrics: NetMetrics,
    registry: Arc<Registry>,
    health: Option<Arc<HealthMonitor>>,
    sweep_interval: Duration,
) {
    let clock = WallClock::new();
    let self_id = host.id();
    let mut timers: TimerDriver<NetTimer> = TimerDriver::new();
    let mut loopback: VecDeque<WireBytes> = VecDeque::new();

    let apply = |effects: Vec<HostEffect>,
                 now: SimTime,
                 timers: &mut TimerDriver<NetTimer>,
                 loopback: &mut VecDeque<WireBytes>| {
        for effect in effects {
            match effect {
                HostEffect::Send { to, payload } => {
                    if to == self_id {
                        metrics.loopback.inc();
                        loopback.push_back(payload);
                    } else if let Some(peer) =
                        peers.lock().expect("peers poisoned").get(&to).cloned()
                    {
                        peer.push(payload);
                    } else {
                        metrics.queue_dropped.inc();
                    }
                }
                HostEffect::SetTimer { id, after } => {
                    timers.schedule(now + after, NetTimer::Node(id));
                }
            }
        }
    };

    let now = clock.now();
    let effects = host.start(now);
    persist_wal(&mut host, &mut file_wal);
    apply(effects, now, &mut timers, &mut loopback);
    timers.schedule(now + sweep_interval, NetTimer::Sweep);

    loop {
        if shutdown.load(Ordering::Relaxed) {
            return;
        }

        // Self-sends loop back ahead of socket traffic, like the
        // simulator's 1µs self-delivery beats any network hop.
        while let Some(payload) = loopback.pop_front() {
            let now = clock.now();
            let effects = host.message(now, self_id, &payload);
            persist_wal(&mut host, &mut file_wal);
            apply(effects, now, &mut timers, &mut loopback);
        }

        // Fire everything due.
        let now = clock.now();
        if let Some(timer) = timers.pop_due(now) {
            match timer {
                NetTimer::Node(id) => {
                    if let Some(effects) = host.timer(now, id) {
                        persist_wal(&mut host, &mut file_wal);
                        apply(effects, now, &mut timers, &mut loopback);
                    }
                }
                NetTimer::Sweep => {
                    let depths: Vec<(String, u64)> = {
                        let peers = peers.lock().expect("peers poisoned");
                        let mut depths: Vec<(String, u64)> = peers
                            .values()
                            .map(|p| (format!("net.outbound.n{}", p.id.0), p.depth() as u64))
                            .collect();
                        depths.sort();
                        depths
                    };
                    for (name, depth) in &depths {
                        registry.gauge(&format!("{name}.depth")).set(*depth as i64);
                    }
                    if let Some(health) = &health {
                        health.sweep(now.as_micros(), &depths, &registry.snapshot());
                    }
                    timers.schedule(now + sweep_interval, NetTimer::Sweep);
                }
            }
            continue;
        }

        // Sleep until the next deadline or the next event.
        let wait = match timers.next_deadline() {
            Some(deadline) if deadline <= now => continue,
            Some(deadline) => StdDuration::from_micros((deadline - now).as_micros()),
            None => IDLE_TICK,
        };
        match events.recv_timeout(wait) {
            Ok(Event::Incoming { from, payload }) => {
                let now = clock.now();
                let effects = host.message(now, from, &payload);
                persist_wal(&mut host, &mut file_wal);
                apply(effects, now, &mut timers, &mut loopback);
            }
            Ok(Event::Act(f)) => {
                let now = clock.now();
                let effects = f(&mut host, now);
                persist_wal(&mut host, &mut file_wal);
                apply(effects, now, &mut timers, &mut loopback);
            }
            Ok(Event::Shutdown) => return,
            Err(RecvTimeoutError::Timeout) => {}
            Err(RecvTimeoutError::Disconnected) => return,
        }
    }
}

fn accept_loop(
    listener: TcpListener,
    events: Sender<Event>,
    shutdown: Arc<AtomicBool>,
    metrics: NetMetrics,
) {
    let mut readers: Vec<std::thread::JoinHandle<()>> = Vec::new();
    while !shutdown.load(Ordering::Relaxed) {
        match listener.accept() {
            Ok((stream, _)) => {
                let events = events.clone();
                let shutdown = Arc::clone(&shutdown);
                let metrics = metrics.clone();
                if let Ok(handle) = std::thread::Builder::new()
                    .name("psc-net-reader".to_string())
                    .spawn(move || reader_loop(stream, events, shutdown, metrics))
                {
                    readers.push(handle);
                }
            }
            Err(err) if err.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(StdDuration::from_millis(5));
            }
            Err(_) => std::thread::sleep(StdDuration::from_millis(5)),
        }
        readers.retain(|h| !h.is_finished());
    }
    for reader in readers {
        let _ = reader.join();
    }
}

/// One inbound connection: handshake, then frames until the peer goes
/// away. Every way a peer can misbehave — EOF mid-frame, garbage instead
/// of a hello, a corrupt CRC — lands in the same place: count the event,
/// close the socket, return. Never panic, never spin.
fn reader_loop(
    stream: TcpStream,
    events: Sender<Event>,
    shutdown: Arc<AtomicBool>,
    metrics: NetMetrics,
) {
    let mut stream = stream;
    let _ = stream.set_read_timeout(Some(READ_TIMEOUT));
    let mut reassembler = FrameReassembler::new();
    let mut from: Option<NodeId> = None;
    let mut buf = vec![0u8; 64 * 1024];
    loop {
        if shutdown.load(Ordering::Relaxed) {
            return;
        }
        let n = match stream.read(&mut buf) {
            Ok(0) => {
                // Peer hung up; mid-frame leftovers make it a rude one,
                // but either way the connection is simply over.
                metrics.peer_drop.inc();
                return;
            }
            Ok(n) => n,
            Err(err)
                if err.kind() == io::ErrorKind::WouldBlock
                    || err.kind() == io::ErrorKind::TimedOut =>
            {
                continue;
            }
            Err(_) => {
                metrics.peer_drop.inc();
                return;
            }
        };
        reassembler.extend(&buf[..n]);
        loop {
            match reassembler.next_frame() {
                Ok(Some(frame)) => match from {
                    None => match parse_hello(&frame) {
                        Some(id) => from = Some(id),
                        None => {
                            // Not our protocol: drop the connection.
                            metrics.frames_corrupt.inc();
                            metrics.peer_drop.inc();
                            return;
                        }
                    },
                    Some(from) => {
                        metrics.msgs_recv.inc();
                        metrics.bytes_recv.add(frame.len() as u64);
                        if events.send(Event::Incoming { from, payload: frame }).is_err() {
                            return;
                        }
                    }
                },
                Ok(None) => break,
                Err(_) => {
                    // Stream lost sync (bit rot or a malicious peer):
                    // nothing after this point can be trusted.
                    metrics.frames_corrupt.inc();
                    metrics.peer_drop.inc();
                    return;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hello_roundtrip() {
        let payload = hello_payload(NodeId(42));
        assert_eq!(parse_hello(&payload), Some(NodeId(42)));
        assert_eq!(parse_hello(b"nonsense"), None);
        let mut wrong_version = payload.clone();
        wrong_version[4] = 9;
        assert_eq!(parse_hello(&wrong_version), None);
        let mut wrong_magic = payload;
        wrong_magic[0] = b'X';
        assert_eq!(parse_hello(&wrong_magic), None);
    }
}
