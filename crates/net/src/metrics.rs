//! The transport's `net.*` counter plane.

use psc_telemetry::{Counter, Registry};

/// Cloneable bundle of the transport's counters, registered once per
/// endpoint in the node's own [`Registry`] (the same registry DACE and the
/// group protocols record into, so one snapshot covers the whole stack).
#[derive(Clone)]
pub(crate) struct NetMetrics {
    /// `net.msgs_sent` — frames written to peer sockets.
    pub msgs_sent: Counter,
    /// `net.bytes_sent` — framed bytes written (header + payload).
    pub bytes_sent: Counter,
    /// `net.msgs_recv` — verified frames delivered up to the node.
    pub msgs_recv: Counter,
    /// `net.bytes_recv` — payload bytes of those frames.
    pub bytes_recv: Counter,
    /// `net.peer.reconnects` — successful re-dials after a lost connection.
    pub reconnects: Counter,
    /// `net.peer.drop` — inbound connections that ended (EOF, error,
    /// corrupt frame, bad handshake); the graceful-disconnect event.
    pub peer_drop: Counter,
    /// `net.frames.corrupt` — frames rejected by CRC/length validation.
    pub frames_corrupt: Counter,
    /// `net.queue.dropped` — outbound entries evicted because the peer was
    /// down with a full queue.
    pub queue_dropped: Counter,
    /// `net.backpressure_waits` — times a sender blocked on a full queue
    /// to a connected peer.
    pub backpressure_waits: Counter,
    /// `net.loopback` — self-sends looped back without touching a socket.
    pub loopback: Counter,
}

impl NetMetrics {
    pub(crate) fn new(registry: &Registry) -> NetMetrics {
        NetMetrics {
            msgs_sent: registry.counter("net.msgs_sent"),
            bytes_sent: registry.counter("net.bytes_sent"),
            msgs_recv: registry.counter("net.msgs_recv"),
            bytes_recv: registry.counter("net.bytes_recv"),
            reconnects: registry.counter("net.peer.reconnects"),
            peer_drop: registry.counter("net.peer.drop"),
            frames_corrupt: registry.counter("net.frames.corrupt"),
            queue_dropped: registry.counter("net.queue.dropped"),
            backpressure_waits: registry.counter("net.backpressure_waits"),
            loopback: registry.counter("net.loopback"),
        }
    }
}
