//! Real-file backend for the write-ahead log.
//!
//! Under the simulator, `psc_simnet::Storage` *is* the disk: WAL segments
//! live in memory and [`psc_simnet::DiskFault`] decides what a crash
//! keeps. On a real deployment the same node code runs unchanged — the
//! transport enables the storage's WAL journal and [`FileWal`] mirrors
//! every [`WalOp`] onto segment files, byte for byte:
//!
//! ```text
//! <data-dir>/<log-dir>/<index:08>.wal
//! ```
//!
//! where `<log-dir>` is the log name with `/` replaced by `@` (log names
//! are `node` or `ch/<16-hex-kind>`, so the mapping is invertible). An
//! `Append` carries the exact CRC-framed bytes the in-memory segment
//! received, so a directory written by this backend and a simulated disk
//! fed the same ops hold identical segment bytes — the
//! `file_backend_mirrors_the_simulated_disk_byte_for_byte` property test
//! pins that equivalence. A `Sync` op becomes `File::sync_data`: the
//! node's fsync barrier (`DaceConfig::wal_sync`) reaches the real disk
//! with the same granularity the fault injector assumes.
//!
//! On startup [`FileWal::open`] loads every segment file back into a
//! fresh `Storage` (via `wal_load_segment`), which the transport hands to
//! `NodeHost::with_storage` — recovery then runs the node's own WAL
//! replay, identical to a post-crash recovery under the simulator.

use std::collections::HashMap;
use std::fs::{self, File, OpenOptions};
use std::io::{self, Write};
use std::path::{Path, PathBuf};

use psc_simnet::{Storage, WalOp};

/// File extension of one WAL segment.
const SEGMENT_EXT: &str = "wal";

fn log_dir_name(log: &str) -> String {
    log.replace('/', "@")
}

fn dir_log_name(dir: &str) -> String {
    dir.replace('@', "/")
}

fn segment_path(root: &Path, log: &str, index: u64) -> PathBuf {
    root.join(log_dir_name(log)).join(format!("{index:08}.{SEGMENT_EXT}"))
}

/// Mirrors a node's WAL onto real segment files under a data directory.
pub struct FileWal {
    root: PathBuf,
    /// Per-log active segment: `(index, open handle)`. Appends go here;
    /// `Rotate` replaces it.
    active: HashMap<String, (u64, File)>,
}

impl FileWal {
    /// Opens (or creates) a data directory, loading every existing segment
    /// into a fresh [`Storage`] the node host should be built from. The
    /// returned [`FileWal`] continues each log at its highest on-disk
    /// segment index.
    pub fn open(data_dir: impl Into<PathBuf>) -> io::Result<(Storage, FileWal)> {
        let root = data_dir.into();
        fs::create_dir_all(&root)?;
        let mut storage = Storage::new();
        let mut wal = FileWal { root: root.clone(), active: HashMap::new() };
        for entry in fs::read_dir(&root)? {
            let entry = entry?;
            if !entry.file_type()?.is_dir() {
                continue;
            }
            let dir_name = entry.file_name();
            let Some(dir_name) = dir_name.to_str() else { continue };
            let log = dir_log_name(dir_name);
            let mut segments: Vec<(u64, PathBuf)> = Vec::new();
            for seg in fs::read_dir(entry.path())? {
                let seg = seg?;
                let name = seg.file_name();
                let Some(name) = name.to_str() else { continue };
                let Some(stem) = name.strip_suffix(&format!(".{SEGMENT_EXT}")) else {
                    continue;
                };
                let Ok(index) = stem.parse::<u64>() else { continue };
                segments.push((index, seg.path()));
            }
            segments.sort_by_key(|&(index, _)| index);
            for &(index, ref path) in &segments {
                storage.wal_load_segment(&log, index, fs::read(path)?);
            }
            if let Some(&(index, _)) = segments.last() {
                let file = OpenOptions::new()
                    .append(true)
                    .open(segment_path(&root, &log, index))?;
                wal.active.insert(log, (index, file));
            }
        }
        Ok((storage, wal))
    }

    /// The data directory this backend writes under.
    pub fn root(&self) -> &Path {
        &self.root
    }

    fn active_file(&mut self, log: &str) -> io::Result<&mut File> {
        if !self.active.contains_key(log) {
            // Mirror of the in-memory log's lazy segment 0.
            self.create_segment(log, 0)?;
        }
        Ok(&mut self.active.get_mut(log).expect("active segment").1)
    }

    fn create_segment(&mut self, log: &str, index: u64) -> io::Result<()> {
        let path = segment_path(&self.root, log, index);
        fs::create_dir_all(path.parent().expect("segment has a parent"))?;
        let file = OpenOptions::new().create(true).append(true).open(path)?;
        self.active.insert(log.to_string(), (index, file));
        Ok(())
    }

    /// Replays a batch of journaled WAL mutations onto the files.
    pub fn apply(&mut self, ops: &[WalOp]) -> io::Result<()> {
        for op in ops {
            match op {
                WalOp::Append { log, bytes } => {
                    self.active_file(log)?.write_all(bytes)?;
                }
                WalOp::Sync { log } => {
                    // Syncing a log nothing was ever appended to is a no-op,
                    // matching the in-memory semantics.
                    if let Some((_, file)) = self.active.get_mut(log.as_str()) {
                        file.sync_data()?;
                    }
                }
                WalOp::Rotate { log, index } => {
                    self.create_segment(log, *index)?;
                }
                WalOp::DropThrough { log, upto } => {
                    let dir = self.root.join(log_dir_name(log));
                    if !dir.is_dir() {
                        continue;
                    }
                    for seg in fs::read_dir(&dir)? {
                        let seg = seg?;
                        let name = seg.file_name();
                        let Some(name) = name.to_str() else { continue };
                        let index = name
                            .strip_suffix(&format!(".{SEGMENT_EXT}"))
                            .and_then(|stem| stem.parse::<u64>().ok());
                        if let Some(index) = index {
                            if index <= *upto {
                                fs::remove_file(seg.path())?;
                            }
                        }
                    }
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_root(tag: &str) -> PathBuf {
        let root = std::env::temp_dir().join(format!("psc-filewal-{}-{tag}", std::process::id()));
        let _ = fs::remove_dir_all(&root);
        root
    }

    #[test]
    fn log_dir_mapping_is_invertible() {
        for log in ["node", "ch/00000000000000ab", "ch/ffffffffffffffff"] {
            assert_eq!(dir_log_name(&log_dir_name(log)), log);
        }
    }

    #[test]
    fn reload_continues_the_highest_segment() {
        let root = temp_root("reload");
        {
            let (_, mut wal) = FileWal::open(&root).unwrap();
            wal.apply(&[
                WalOp::Append { log: "node".into(), bytes: vec![1, 2, 3] },
                WalOp::Sync { log: "node".into() },
                WalOp::Rotate { log: "node".into(), index: 1 },
                WalOp::Append { log: "node".into(), bytes: vec![4, 5] },
                WalOp::Sync { log: "node".into() },
            ])
            .unwrap();
        }
        let (storage, mut wal) = FileWal::open(&root).unwrap();
        let segments = storage.wal_segments("node");
        assert_eq!(segments.len(), 2);
        assert_eq!(segments[0].bytes, vec![1, 2, 3]);
        assert_eq!(segments[1].bytes, vec![4, 5]);
        // New appends land in segment 1, not a fresh segment 0.
        wal.apply(&[
            WalOp::Append { log: "node".into(), bytes: vec![6] },
            WalOp::Sync { log: "node".into() },
        ])
        .unwrap();
        let (storage, _) = FileWal::open(&root).unwrap();
        assert_eq!(storage.wal_segments("node")[1].bytes, vec![4, 5, 6]);
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn drop_through_removes_old_segment_files() {
        let root = temp_root("drop");
        let (_, mut wal) = FileWal::open(&root).unwrap();
        wal.apply(&[
            WalOp::Append { log: "ch/00000000000000aa".into(), bytes: vec![1] },
            WalOp::Rotate { log: "ch/00000000000000aa".into(), index: 1 },
            WalOp::Append { log: "ch/00000000000000aa".into(), bytes: vec![2] },
            WalOp::Rotate { log: "ch/00000000000000aa".into(), index: 2 },
            WalOp::Append { log: "ch/00000000000000aa".into(), bytes: vec![3] },
            WalOp::Sync { log: "ch/00000000000000aa".into() },
            WalOp::DropThrough { log: "ch/00000000000000aa".into(), upto: 1 },
        ])
        .unwrap();
        let (storage, _) = FileWal::open(&root).unwrap();
        let segments = storage.wal_segments("ch/00000000000000aa");
        assert_eq!(segments.len(), 1);
        assert_eq!(segments[0].index, 2);
        assert_eq!(segments[0].bytes, vec![3]);
        let _ = fs::remove_dir_all(&root);
    }
}
