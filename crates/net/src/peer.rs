//! Outbound peer connections: bounded queues, writer threads, reconnect.
//!
//! The topology is directed: each process dials one **send-only** TCP
//! connection to every peer and accepts **receive-only** connections from
//! them (see [`crate::transport`]). That keeps connection identity trivial
//! — no simultaneous-dial dedup — at the cost of 2·N(N−1)/2 sockets per
//! cluster, which is fine at the static-cluster scale this layer targets.
//!
//! Each peer owns a bounded queue of [`WireBytes`] handles. The shared
//! buffer discipline from the serialize-once work carries through: the
//! event loop clones a `WireBytes` *handle* per destination, and the
//! writer thread frames the same underlying bytes onto the socket — one
//! encode, N peer writes, zero payload copies.
//!
//! Queue policy under pressure:
//! - peer **connected**, queue full → the sender blocks until the writer
//!   drains (backpressure; counted in `net.backpressure_waits`),
//! - peer **down**, queue full → drop the oldest entry
//!   (`net.queue.dropped`) so a dead peer costs bounded memory and never
//!   stalls the protocol loop.

use std::collections::VecDeque;
use std::io::Write;
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration as StdDuration;

use psc_codec::frame::encode_crc;
use psc_codec::WireBytes;
use psc_simnet::NodeId;

use crate::metrics::NetMetrics;

/// How long writer threads sleep between shutdown checks while idle.
const IDLE_WAIT: StdDuration = StdDuration::from_millis(50);

struct PeerQueue {
    items: VecDeque<WireBytes>,
    connected: bool,
}

/// One outbound peer: queue plus the state its writer thread shares with
/// the transport.
pub(crate) struct Peer {
    /// The peer's node id.
    pub(crate) id: NodeId,
    addr: String,
    capacity: usize,
    reconnect_base_ms: u64,
    reconnect_max_ms: u64,
    queue: Mutex<PeerQueue>,
    /// Signalled when the queue gains an item (writer waits on this).
    nonempty: Condvar,
    /// Signalled when the queue loses an item (backpressured senders wait).
    space: Condvar,
    shutdown: Arc<AtomicBool>,
    metrics: NetMetrics,
    /// Frame payload prefix identifying the dialing node (hello frame).
    hello: Vec<u8>,
}

impl Peer {
    pub(crate) fn new(
        id: NodeId,
        addr: String,
        self_id: NodeId,
        config: &crate::NetConfig,
        shutdown: Arc<AtomicBool>,
        metrics: NetMetrics,
    ) -> Arc<Peer> {
        Arc::new(Peer {
            id,
            addr,
            capacity: config.outbound_capacity.max(1),
            reconnect_base_ms: config.reconnect_base_ms.max(1),
            reconnect_max_ms: config.reconnect_max_ms.max(1),
            queue: Mutex::new(PeerQueue { items: VecDeque::new(), connected: false }),
            nonempty: Condvar::new(),
            space: Condvar::new(),
            shutdown,
            metrics,
            hello: crate::transport::hello_payload(self_id),
        })
    }

    /// Enqueues `payload` for this peer, applying the pressure policy.
    pub(crate) fn push(&self, payload: WireBytes) {
        let mut q = self.queue.lock().expect("peer queue poisoned");
        while q.items.len() >= self.capacity {
            if !q.connected || self.shutdown.load(Ordering::Relaxed) {
                q.items.pop_front();
                self.metrics.queue_dropped.inc();
                break;
            }
            self.metrics.backpressure_waits.inc();
            let (next, _) = self
                .space
                .wait_timeout(q, IDLE_WAIT)
                .expect("peer queue poisoned");
            q = next;
        }
        q.items.push_back(payload);
        drop(q);
        self.nonempty.notify_one();
    }

    /// Current queue depth (for gauges / inspect / health sweeps).
    pub(crate) fn depth(&self) -> usize {
        self.queue.lock().expect("peer queue poisoned").items.len()
    }

    /// Whether the writer currently holds a live connection.
    pub(crate) fn is_connected(&self) -> bool {
        self.queue.lock().expect("peer queue poisoned").connected
    }

    /// Wakes any thread blocked on this peer (shutdown path).
    pub(crate) fn wake_all(&self) {
        self.nonempty.notify_all();
        self.space.notify_all();
    }

    fn set_connected(&self, connected: bool) {
        let mut q = self.queue.lock().expect("peer queue poisoned");
        q.connected = connected;
        drop(q);
        // A newly-down peer switches blocked senders to drop-oldest mode.
        self.space.notify_all();
    }

    /// Blocks until an item is available (front is left in place so a
    /// failed write can retry it), or returns `None` on shutdown.
    fn wait_front(&self) -> Option<WireBytes> {
        let mut q = self.queue.lock().expect("peer queue poisoned");
        loop {
            if self.shutdown.load(Ordering::Relaxed) {
                return None;
            }
            if let Some(item) = q.items.front() {
                return Some(item.clone());
            }
            let (next, _) = self
                .nonempty
                .wait_timeout(q, IDLE_WAIT)
                .expect("peer queue poisoned");
            q = next;
        }
    }

    /// Removes the front item after a successful write.
    fn pop_front(&self) {
        let mut q = self.queue.lock().expect("peer queue poisoned");
        q.items.pop_front();
        drop(q);
        self.space.notify_one();
    }

    /// The writer thread body: dial (with capped exponential backoff),
    /// handshake, then drain the queue onto the socket until it breaks.
    pub(crate) fn run_writer(self: Arc<Peer>) {
        let mut backoff_ms = self.reconnect_base_ms;
        let mut ever_connected = false;
        let mut frame = Vec::new();
        while !self.shutdown.load(Ordering::Relaxed) {
            let mut stream = match TcpStream::connect(&self.addr) {
                Ok(stream) => stream,
                Err(_) => {
                    std::thread::sleep(StdDuration::from_millis(backoff_ms.min(self.reconnect_max_ms)));
                    backoff_ms = (backoff_ms * 2).min(self.reconnect_max_ms);
                    continue;
                }
            };
            let _ = stream.set_nodelay(true);
            // Hello frame first, so the acceptor knows who is talking.
            frame.clear();
            encode_crc(&self.hello, &mut frame);
            if stream.write_all(&frame).is_err() {
                std::thread::sleep(StdDuration::from_millis(backoff_ms.min(self.reconnect_max_ms)));
                backoff_ms = (backoff_ms * 2).min(self.reconnect_max_ms);
                continue;
            }
            if ever_connected {
                self.metrics.reconnects.inc();
            }
            ever_connected = true;
            backoff_ms = self.reconnect_base_ms;
            self.set_connected(true);

            while let Some(payload) = self.wait_front() {
                frame.clear();
                encode_crc(payload.as_ref(), &mut frame);
                match stream.write_all(&frame) {
                    Ok(()) => {
                        self.pop_front();
                        self.metrics.msgs_sent.inc();
                        self.metrics.bytes_sent.add(frame.len() as u64);
                    }
                    Err(_) => break, // front stays queued; reconnect and retry it
                }
            }
            self.set_connected(false);
        }
        self.set_connected(false);
    }
}
