//! Wall-clock timers for the sans-io cores.
//!
//! Under the simulator, `Ctx::set_timer` feeds a virtual-time event queue.
//! On a real transport the same timers must fire on the wall clock, in the
//! same relative order — retransmit and heartbeat schedules are protocol
//! behaviour, not simulation detail. The pieces here keep that mapping
//! honest:
//!
//! - [`Clock`] abstracts "microseconds since the transport epoch" as a
//!   [`SimTime`], so node code sees the same monotone timeline either way.
//!   [`WallClock`] is the production implementation; [`MockClock`] lets
//!   tests replay a schedule deterministically.
//! - [`TimerDriver`] is a min-heap of pending timers with the simulator's
//!   exact tie-breaking (deadline, then arm order), so two timers armed for
//!   the same instant fire in the same sequence under both drivers.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use psc_simnet::{Duration, SimTime, TimerId};

/// A source of "now" on the transport's timeline (µs since its epoch).
pub trait Clock: Send + Sync {
    /// Current time.
    fn now(&self) -> SimTime;
}

/// Production clock: microseconds elapsed since construction, measured on
/// the monotonic [`Instant`] clock.
#[derive(Debug)]
pub struct WallClock {
    epoch: Instant,
}

impl WallClock {
    /// Starts a timeline at "now".
    pub fn new() -> WallClock {
        WallClock { epoch: Instant::now() }
    }
}

impl Default for WallClock {
    fn default() -> Self {
        Self::new()
    }
}

impl Clock for WallClock {
    fn now(&self) -> SimTime {
        SimTime::from_micros(self.epoch.elapsed().as_micros() as u64)
    }
}

/// Test clock: time advances only when the test says so.
#[derive(Debug, Default)]
pub struct MockClock {
    now_us: AtomicU64,
}

impl MockClock {
    /// Starts at t=0.
    pub fn new() -> MockClock {
        MockClock::default()
    }

    /// Advances the clock by `by`.
    pub fn advance(&self, by: Duration) {
        self.now_us.fetch_add(by.as_micros(), Ordering::SeqCst);
    }

    /// Jumps the clock to `to` (must not move backwards).
    pub fn set(&self, to: SimTime) {
        let prev = self.now_us.swap(to.as_micros(), Ordering::SeqCst);
        assert!(prev <= to.as_micros(), "mock clock moved backwards");
    }
}

impl Clock for MockClock {
    fn now(&self) -> SimTime {
        SimTime::from_micros(self.now_us.load(Ordering::SeqCst))
    }
}

/// Pending-timer queue for one hosted node. `T` is the timer token —
/// [`TimerId`] for plain node timers, or a transport-private enum that
/// also carries maintenance ticks.
///
/// Ordering matches [`psc_simnet::SimNet`]'s event queue: earliest
/// deadline first, ties broken by arm order. Cancellation is *not*
/// tracked here — [`psc_simnet::NodeHost::timer`] suppresses cancelled
/// ids at fire time, exactly like the simulator does.
#[derive(Debug)]
pub struct TimerDriver<T = TimerId> {
    heap: BinaryHeap<Reverse<(u64, u64, T)>>,
    seq: u64,
}

impl<T: Ord> Default for TimerDriver<T> {
    fn default() -> Self {
        TimerDriver { heap: BinaryHeap::new(), seq: 0 }
    }
}

impl<T: Ord> TimerDriver<T> {
    /// An empty driver.
    pub fn new() -> TimerDriver<T> {
        TimerDriver::default()
    }

    /// Arms `id` to fire at `at`.
    pub fn schedule(&mut self, at: SimTime, id: T) {
        self.seq += 1;
        self.heap.push(Reverse((at.as_micros(), self.seq, id)));
    }

    /// The earliest pending deadline, if any timers are armed.
    pub fn next_deadline(&self) -> Option<SimTime> {
        self.heap
            .peek()
            .map(|Reverse((at, _, _))| SimTime::from_micros(*at))
    }

    /// Pops the next timer whose deadline is `<= now`, in firing order.
    pub fn pop_due(&mut self, now: SimTime) -> Option<T> {
        match self.heap.peek() {
            Some(Reverse((at, _, _))) if *at <= now.as_micros() => {
                let Reverse((_, _, id)) = self.heap.pop().expect("peeked");
                Some(id)
            }
            _ => None,
        }
    }

    /// Number of armed (possibly already-cancelled) timers.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no timers are armed.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ties_fire_in_arm_order() {
        let mut d = TimerDriver::new();
        let t = SimTime::from_millis(5);
        d.schedule(t, TimerId(3));
        d.schedule(t, TimerId(1));
        d.schedule(t, TimerId(2));
        assert_eq!(d.pop_due(t), Some(TimerId(3)));
        assert_eq!(d.pop_due(t), Some(TimerId(1)));
        assert_eq!(d.pop_due(t), Some(TimerId(2)));
        assert_eq!(d.pop_due(t), None);
    }

    #[test]
    fn pop_due_respects_deadlines() {
        let mut d = TimerDriver::new();
        d.schedule(SimTime::from_millis(10), TimerId(1));
        d.schedule(SimTime::from_millis(2), TimerId(2));
        assert_eq!(d.next_deadline(), Some(SimTime::from_millis(2)));
        assert_eq!(d.pop_due(SimTime::from_millis(1)), None);
        assert_eq!(d.pop_due(SimTime::from_millis(2)), Some(TimerId(2)));
        assert_eq!(d.pop_due(SimTime::from_millis(2)), None);
        assert_eq!(d.pop_due(SimTime::from_millis(10)), Some(TimerId(1)));
        assert!(d.is_empty());
    }

    #[test]
    fn mock_clock_advances() {
        let c = MockClock::new();
        assert_eq!(c.now(), SimTime::from_micros(0));
        c.advance(Duration::from_millis(3));
        assert_eq!(c.now(), SimTime::from_millis(3));
        c.set(SimTime::from_millis(10));
        assert_eq!(c.now(), SimTime::from_millis(10));
    }
}
