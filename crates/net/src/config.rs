//! Static cluster configuration for the socket transport.
//!
//! Deployment stays deliberately simple — the paper's evaluation clusters
//! are fixed machine lists, and so are ours: every process knows its own
//! id, a listen address, and the `id → address` map of its peers. There is
//! no membership protocol at this layer; DACE's reflexive control obvents
//! handle liveness above it.

use std::fmt;

use psc_simnet::NodeId;

/// One peer in the static cluster map.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PeerSpec {
    /// The peer's node id.
    pub id: NodeId,
    /// The peer's listen address (`host:port`).
    pub addr: String,
}

/// Configuration of one transport endpoint.
#[derive(Debug, Clone)]
pub struct NetConfig {
    /// This node's id.
    pub id: NodeId,
    /// Address to listen on (`host:port`; port `0` picks an ephemeral
    /// port, exposed via `NetTransport::local_addr`).
    pub listen: String,
    /// The other cluster members to dial.
    pub peers: Vec<PeerSpec>,
    /// Bound on each per-peer outbound queue; a full queue to a connected
    /// peer blocks the sender (backpressure), a full queue to a down peer
    /// drops the oldest entry.
    pub outbound_capacity: usize,
    /// First reconnect delay after a failed dial or dropped connection.
    pub reconnect_base_ms: u64,
    /// Cap on the exponential reconnect backoff.
    pub reconnect_max_ms: u64,
    /// Interval of the transport's own health sweep (queue-depth gauges +
    /// `HealthMonitor` feed), in milliseconds.
    pub sweep_interval_ms: u64,
    /// Seed for the hosted node's RNG (deterministic protocol choices).
    pub seed: u64,
    /// When set, the node's write-ahead log is mirrored to real segment
    /// files under this directory ([`crate::FileWal`]), and startup
    /// reloads them — so a killed and restarted process recovers its
    /// durable channel state (certified sequences, parked obvents,
    /// durable subscriptions) exactly as a simulated node recovers from
    /// its stable storage. `None` (the default) keeps state in memory
    /// only.
    pub data_dir: Option<std::path::PathBuf>,
}

impl NetConfig {
    /// A config with the production defaults for `id`, listening on
    /// `listen`, with no peers yet.
    pub fn new(id: NodeId, listen: impl Into<String>) -> NetConfig {
        NetConfig {
            id,
            listen: listen.into(),
            peers: Vec::new(),
            outbound_capacity: 1024,
            reconnect_base_ms: 10,
            reconnect_max_ms: 2000,
            sweep_interval_ms: 100,
            seed: 0,
            data_dir: None,
        }
    }
}

/// Error from [`ClusterSpec::parse`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClusterParseError(String);

impl fmt::Display for ClusterParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bad cluster spec: {}", self.0)
    }
}

impl std::error::Error for ClusterParseError {}

/// A parsed `id=addr` cluster map, the `psc-node --cluster` format:
/// comma-separated `<id>=<host:port>` entries, e.g.
/// `0=127.0.0.1:7000,1=127.0.0.1:7001,2=127.0.0.1:7002`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClusterSpec {
    /// All members, in spec order.
    pub members: Vec<PeerSpec>,
}

impl ClusterSpec {
    /// Parses the comma-separated `id=addr` form.
    pub fn parse(spec: &str) -> Result<ClusterSpec, ClusterParseError> {
        let mut members = Vec::new();
        for entry in spec.split(',') {
            let entry = entry.trim();
            if entry.is_empty() {
                continue;
            }
            let Some((id, addr)) = entry.split_once('=') else {
                return Err(ClusterParseError(format!("entry {entry:?} is not id=host:port")));
            };
            let id: u64 = id
                .trim()
                .parse()
                .map_err(|_| ClusterParseError(format!("bad node id in {entry:?}")))?;
            let addr = addr.trim();
            if !addr.contains(':') {
                return Err(ClusterParseError(format!("address {addr:?} has no port")));
            }
            members.push(PeerSpec { id: NodeId(id), addr: addr.to_string() });
        }
        if members.is_empty() {
            return Err(ClusterParseError("no members".to_string()));
        }
        let mut ids: Vec<u64> = members.iter().map(|m| m.id.0).collect();
        ids.sort_unstable();
        ids.dedup();
        if ids.len() != members.len() {
            return Err(ClusterParseError("duplicate node ids".to_string()));
        }
        Ok(ClusterSpec { members })
    }

    /// All member ids, in spec order (the DACE cluster list).
    pub fn ids(&self) -> Vec<NodeId> {
        self.members.iter().map(|m| m.id).collect()
    }

    /// Builds this process's [`NetConfig`]: listen on `self_id`'s address,
    /// dial everyone else.
    pub fn config_for(&self, self_id: NodeId) -> Result<NetConfig, ClusterParseError> {
        let me = self
            .members
            .iter()
            .find(|m| m.id == self_id)
            .ok_or_else(|| ClusterParseError(format!("node {self_id} not in cluster spec")))?;
        let mut config = NetConfig::new(self_id, me.addr.clone());
        config.peers = self
            .members
            .iter()
            .filter(|m| m.id != self_id)
            .cloned()
            .collect();
        config.seed = self_id.0;
        Ok(config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_cluster_spec() {
        let spec = ClusterSpec::parse("0=127.0.0.1:7000, 1=127.0.0.1:7001,2=localhost:7002").unwrap();
        assert_eq!(spec.members.len(), 3);
        assert_eq!(spec.ids(), vec![NodeId(0), NodeId(1), NodeId(2)]);
        let cfg = spec.config_for(NodeId(1)).unwrap();
        assert_eq!(cfg.listen, "127.0.0.1:7001");
        assert_eq!(cfg.peers.len(), 2);
        assert!(cfg.peers.iter().all(|p| p.id != NodeId(1)));
    }

    #[test]
    fn rejects_malformed_specs() {
        assert!(ClusterSpec::parse("").is_err());
        assert!(ClusterSpec::parse("0:127.0.0.1:7000").is_err());
        assert!(ClusterSpec::parse("x=127.0.0.1:7000").is_err());
        assert!(ClusterSpec::parse("0=127.0.0.1").is_err());
        assert!(ClusterSpec::parse("0=a:1,0=b:2").is_err());
        assert!(ClusterSpec::parse("0=a:1").unwrap().config_for(NodeId(9)).is_err());
    }
}
