//! `psc-node` — one DACE cluster member on the socket transport.
//!
//! Static-cluster deployment CLI: every process gets the same
//! `--cluster 0=host:port,1=host:port,…` map plus its own `--id`. The
//! node joins the cluster, optionally subscribes and publishes, then
//! reports what it saw — scripted mode is what the CI loopback smoke and
//! `exp_real_wire` drive; `--interactive` gives a small REPL for poking a
//! live cluster by hand.
//!
//! ```text
//! psc-node --id 0 --cluster 0=127.0.0.1:7900,1=127.0.0.1:7901,2=127.0.0.1:7902 \
//!     --subscribe --run-ms 2000
//! psc-node --id 1 --cluster … --publish 10 --run-ms 2000
//! ```
//!
//! Scripted mode prints one machine-readable line at exit:
//! `RESULT node=<id> published=<n> delivered=<n>`.

use std::io::BufRead;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration as StdDuration;

use psc_dace::DaceConfig;
use psc_filter::rfilter;
use psc_net::{ClusterSpec, DaceEndpoint};
use psc_obvent::builtin::{Certified, Reliable};
use psc_obvent::declare_obvent_model;
use psc_simnet::{Duration, NodeId};
use pubsub_core::FilterSpec;

declare_obvent_model! {
    /// The cluster's demo obvent: a tagged value, reliably disseminated.
    pub class NetEvent implements [Reliable] { tag: u64, value: i64 }
}
declare_obvent_model! {
    /// The durable demo obvent: certified delivery, so with `--data-dir`
    /// a killed and restarted subscriber resumes the stream exactly once.
    pub class CertEvent implements [Certified] { tag: u64, value: i64 }
}

struct Args {
    id: u64,
    cluster: String,
    subscribe: bool,
    filter: String,
    publish: u64,
    pub_interval_ms: u64,
    shards: usize,
    run_ms: u64,
    snapshot: Option<String>,
    inspect: bool,
    interactive: bool,
    certified: bool,
    data_dir: Option<String>,
}

fn usage() -> ! {
    eprintln!(
        "usage: psc-node --id <n> --cluster <id=host:port,...> [options]\n\
         \n\
         options:\n\
           --subscribe              install a NetEvent subscription\n\
           --filter <none|negative|large>  content filter for --subscribe (default none)\n\
           --publish <n>            publish n NetEvents (tag=0..n, value=tag-50)\n\
           --pub-interval-ms <ms>   spacing between publishes (default 20)\n\
           --shards <n>             broker worker threads per node (default 1 = inline)\n\
           --run-ms <ms>            scripted run length after connect (default 2000)\n\
           --snapshot <path>        write the final telemetry snapshot JSON to <path>\n\
           --inspect                print the node+transport state report at exit\n\
           --interactive            REPL on stdin: sub | pub <value> | snapshot | metrics |\n\
                                    inspect | quit (snapshot = consistent cluster cut,\n\
                                    metrics = telemetry counters)\n\
           --certified              use certified CertEvents; --subscribe becomes a durable\n\
                                    subscription (durable id = 100 + node id)\n\
           --data-dir <path>        persist the write-ahead log under <path>: a killed and\n\
                                    restarted process resumes its durable channels"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args {
        id: u64::MAX,
        cluster: String::new(),
        subscribe: false,
        filter: "none".to_string(),
        publish: 0,
        pub_interval_ms: 20,
        shards: 1,
        run_ms: 2000,
        snapshot: None,
        inspect: false,
        interactive: false,
        certified: false,
        data_dir: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let value = |it: &mut dyn Iterator<Item = String>| {
            it.next().unwrap_or_else(|| usage())
        };
        match arg.as_str() {
            "--id" => args.id = value(&mut it).parse().unwrap_or_else(|_| usage()),
            "--cluster" => args.cluster = value(&mut it),
            "--subscribe" => args.subscribe = true,
            "--filter" => args.filter = value(&mut it),
            "--publish" => args.publish = value(&mut it).parse().unwrap_or_else(|_| usage()),
            "--pub-interval-ms" => {
                args.pub_interval_ms = value(&mut it).parse().unwrap_or_else(|_| usage())
            }
            "--shards" => args.shards = value(&mut it).parse().unwrap_or_else(|_| usage()),
            "--run-ms" => args.run_ms = value(&mut it).parse().unwrap_or_else(|_| usage()),
            "--snapshot" => args.snapshot = Some(value(&mut it)),
            "--inspect" => args.inspect = true,
            "--interactive" => args.interactive = true,
            "--certified" => args.certified = true,
            "--data-dir" => args.data_dir = Some(value(&mut it)),
            _ => usage(),
        }
    }
    if args.id == u64::MAX || args.cluster.is_empty() {
        usage();
    }
    args
}

fn filter_spec(name: &str) -> FilterSpec<NetEvent> {
    match name {
        "none" => FilterSpec::accept_all(),
        "negative" => FilterSpec::remote(rfilter!(value < 0)),
        "large" => FilterSpec::remote(rfilter!(value > 50)),
        other => {
            eprintln!("unknown filter {other:?}");
            usage();
        }
    }
}

fn install_subscription(endpoint: &DaceEndpoint, filter: String) -> Arc<AtomicU64> {
    let delivered = Arc::new(AtomicU64::new(0));
    let counter = Arc::clone(&delivered);
    endpoint.with_domain(move |domain| {
        let sub = domain.subscribe(filter_spec(&filter), move |_e: NetEvent| {
            counter.fetch_add(1, Ordering::SeqCst);
        });
        sub.activate().expect("activate subscription");
        sub.detach();
    });
    delivered
}

/// Durable subscription to the certified demo class: re-attaching under
/// the same durable id after a restart resumes the stream exactly once.
fn install_durable_subscription(endpoint: &DaceEndpoint, durable_id: u64) -> Arc<AtomicU64> {
    let delivered = Arc::new(AtomicU64::new(0));
    let counter = Arc::clone(&delivered);
    endpoint.with_domain(move |domain| {
        let sub = domain.subscribe(FilterSpec::accept_all(), move |_e: CertEvent| {
            counter.fetch_add(1, Ordering::SeqCst);
        });
        sub.activate_with_id(durable_id).expect("activate durable subscription");
        sub.detach();
    });
    delivered
}

fn publish_one(endpoint: &DaceEndpoint, certified: bool, tag: u64, value: i64) {
    endpoint.with_domain(move |domain| {
        if certified {
            domain.publish(CertEvent::new(tag, value)).expect("publish CertEvent");
        } else {
            domain.publish(NetEvent::new(tag, value)).expect("publish NetEvent");
        }
    });
}

fn main() {
    let args = parse_args();
    let spec = match ClusterSpec::parse(&args.cluster) {
        Ok(spec) => spec,
        Err(err) => {
            eprintln!("psc-node: {err}");
            std::process::exit(2);
        }
    };
    let id = NodeId(args.id);
    let mut net = match spec.config_for(id) {
        Ok(net) => net,
        Err(err) => {
            eprintln!("psc-node: {err}");
            std::process::exit(2);
        }
    };
    net.data_dir = args.data_dir.as_ref().map(std::path::PathBuf::from);
    // Keep the default simulation-tuned intervals: announce anti-entropy
    // every 200ms keeps late joiners converging on a real wire too.
    let dace = DaceConfig {
        watchdog: Some(Duration::from_millis(200)),
        shards: args.shards,
        ..DaceConfig::default()
    };
    let endpoint = match DaceEndpoint::start(net, spec.ids(), dace) {
        Ok(endpoint) => endpoint,
        Err(err) => {
            eprintln!("psc-node: bind failed: {err}");
            std::process::exit(1);
        }
    };
    eprintln!("psc-node: n{} listening on {}", args.id, endpoint.local_addr());
    if !endpoint.wait_connected(StdDuration::from_secs(30)) {
        eprintln!("psc-node: peers not reachable after 30s; continuing (reconnect stays on)");
    }

    let delivered = if args.subscribe && args.certified {
        Some(install_durable_subscription(&endpoint, 100 + args.id))
    } else if args.subscribe {
        Some(install_subscription(&endpoint, args.filter.clone()))
    } else {
        None
    };

    if args.interactive {
        interactive(&endpoint, delivered.as_ref());
        return;
    }

    // Let subscription announcements propagate before the first publish.
    std::thread::sleep(StdDuration::from_millis(300));
    for tag in 0..args.publish {
        publish_one(&endpoint, args.certified, tag, tag as i64 - 50);
        std::thread::sleep(StdDuration::from_millis(args.pub_interval_ms));
    }
    std::thread::sleep(StdDuration::from_millis(args.run_ms));

    if args.inspect {
        println!("{}", endpoint.inspect());
    }
    if let Some(path) = &args.snapshot {
        let json = endpoint.metrics().render_json();
        if let Err(err) = std::fs::write(path, json) {
            eprintln!("psc-node: snapshot write failed: {err}");
        }
    }
    let delivered_count = delivered.map(|d| d.load(Ordering::SeqCst)).unwrap_or(0);
    println!(
        "RESULT node={} published={} delivered={}",
        args.id, args.publish, delivered_count
    );
    endpoint.shutdown();
}

fn interactive(endpoint: &DaceEndpoint, delivered: Option<&Arc<AtomicU64>>) {
    let counter = delivered.cloned().unwrap_or_else(|| {
        install_subscription(endpoint, "none".to_string())
    });
    let stdin = std::io::stdin();
    let mut next_tag = 0u64;
    eprintln!(
        "psc-node: interactive — sub | pub <value> | snapshot | metrics | inspect | quit"
    );
    for line in stdin.lock().lines() {
        let line = match line {
            Ok(line) => line,
            Err(_) => break,
        };
        let mut words = line.split_whitespace();
        match words.next() {
            Some("pub") => {
                let value: i64 = words.next().and_then(|w| w.parse().ok()).unwrap_or(0);
                publish_one(endpoint, false, next_tag, value);
                next_tag += 1;
                println!("published tag={} value={}", next_tag - 1, value);
            }
            Some("sub") => {
                println!("delivered so far: {}", counter.load(Ordering::SeqCst));
            }
            Some("snapshot") => {
                // A cluster-wide Chandy–Lamport cut: this node initiates
                // the wave and prints the assembled byte-stable image.
                match endpoint.snapshot_capture(std::time::Duration::from_secs(5)) {
                    Some(render) => print!("{render}"),
                    None => println!("snapshot: wave did not complete within 5s"),
                }
            }
            Some("metrics") => print!("{}", endpoint.metrics().render_text()),
            Some("inspect") => println!("{}", endpoint.inspect()),
            Some("quit") | Some("exit") => break,
            Some(other) => println!("unknown command {other:?}"),
            None => {}
        }
    }
    endpoint.shutdown();
}
