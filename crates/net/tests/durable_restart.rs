//! The file-backed write-ahead log against the simulated disk.
//!
//! Two claims, each with its own test style:
//!
//! 1. **Byte equivalence** (property test): a random `WalOp` stream
//!    applied to a `psc_simnet::Storage` and mirrored through [`FileWal`]
//!    reloads into identical segments — same logs, same indices, same
//!    bytes. The file backend is *defined* by this equivalence: everything
//!    the fault-injection harness proved about the simulated disk then
//!    carries over to the real one.
//! 2. **Kill + restart exactly once** (integration): a durable certified
//!    subscriber endpoint with a `data_dir` is torn down mid-stream —
//!    process state gone, only segment files survive — and a fresh
//!    endpoint on the same directory and durable identity resumes the
//!    stream with every acked publish delivered exactly once.

use std::sync::{Arc, Mutex};
use std::time::{Duration as StdDuration, Instant};

use proptest::prelude::*;
use psc_dace::DaceConfig;
use psc_net::{DaceEndpoint, FileWal, NetConfig};
use psc_obvent::builtin::Certified;
use psc_obvent::declare_obvent_model;
use psc_simnet::{NodeId, Storage};
use pubsub_core::FilterSpec;

declare_obvent_model! {
    /// The restart test's certified workload.
    pub class WireTick implements [Certified] { n: u64 }
}

fn temp_root(tag: &str) -> std::path::PathBuf {
    let root =
        std::env::temp_dir().join(format!("psc-durable-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    root
}

// ---- 1. byte equivalence ----------------------------------------------

/// One generated WAL mutation (indices/rotation bookkeeping is derived
/// while replaying, mirroring how `DaceNode` drives the real API).
#[derive(Debug, Clone)]
enum GenOp {
    Append { log: usize, len: usize, fill: u8 },
    Sync { log: usize },
    Rotate { log: usize },
    DropThroughPrevious { log: usize },
}

const GEN_LOGS: [&str; 3] = ["node", "ch/00000000000000aa", "ch/ffffffffffffffff"];

fn gen_ops() -> impl Strategy<Value = Vec<GenOp>> {
    let op = (0usize..GEN_LOGS.len(), 0u32..10, 1usize..200, any::<u8>()).prop_map(
        |(log, kind, len, fill)| match kind {
            0..=5 => GenOp::Append { log, len, fill },
            6 | 7 => GenOp::Sync { log },
            8 => GenOp::Rotate { log },
            _ => GenOp::DropThroughPrevious { log },
        },
    );
    proptest::collection::vec(op, 1..60)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The defining property of the file backend: mirror the journal of a
    /// random op stream to disk, reload, and the segments are identical to
    /// the in-memory WAL — byte for byte, index for index.
    #[test]
    fn file_backend_mirrors_the_simulated_disk_byte_for_byte(ops in gen_ops(), case in 0u32..u32::MAX) {
        let root = temp_root(&format!("equiv-{case}"));
        let mut storage = Storage::new();
        storage.enable_wal_journal();
        let (_, mut file_wal) = FileWal::open(&root).unwrap();

        for op in &ops {
            match *op {
                GenOp::Append { log, len, fill } => {
                    storage.wal_append(GEN_LOGS[log], &vec![fill; len]);
                }
                GenOp::Sync { log } => storage.wal_sync(GEN_LOGS[log]),
                GenOp::Rotate { log } => {
                    storage.wal_rotate(GEN_LOGS[log]);
                }
                GenOp::DropThroughPrevious { log } => {
                    // Checkpoint shape: rotate, then drop everything before
                    // the fresh active segment (exactly what compaction does).
                    let index = storage.wal_rotate(GEN_LOGS[log]);
                    storage.wal_drop_through(GEN_LOGS[log], index - 1);
                }
            }
            // Mirror per mutation batch, like the transport drains per
            // callback.
            file_wal.apply(&storage.take_wal_journal()).unwrap();
        }

        let (reloaded, _) = FileWal::open(&root).unwrap();
        let mut logs = storage.wal_logs();
        logs.sort();
        for log in &logs {
            let mem = storage.wal_segments(log);
            let disk = reloaded.wal_segments(log);
            // In-memory logs may carry a trailing never-written segment
            // (lazy active); files only exist once something was appended
            // or rotated into them. Compare the written prefix.
            let mem_written: Vec<_> =
                mem.iter().filter(|s| !s.bytes.is_empty()).collect();
            let disk_written: Vec<_> =
                disk.iter().filter(|s| !s.bytes.is_empty()).collect();
            prop_assert_eq!(
                mem_written.len(),
                disk_written.len(),
                "segment count diverges for log {}",
                log
            );
            for (m, d) in mem_written.iter().zip(&disk_written) {
                prop_assert_eq!(m.index, d.index, "index diverges for log {}", log);
                prop_assert_eq!(&m.bytes, &d.bytes, "bytes diverge for log {}", log);
            }
        }
        let _ = std::fs::remove_dir_all(&root);
    }
}

// ---- 2. kill + restart exactly once -----------------------------------

fn endpoint(
    id: NodeId,
    listen: &str,
    cluster: Vec<NodeId>,
    data_dir: Option<&std::path::Path>,
) -> DaceEndpoint {
    let mut net = NetConfig::new(id, listen);
    net.seed = id.0;
    net.data_dir = data_dir.map(|p| p.to_path_buf());
    DaceEndpoint::start(net, cluster, DaceConfig::default()).expect("bind endpoint")
}

fn attach_durable(ep: &DaceEndpoint, durable_id: u64) -> Arc<Mutex<Vec<u64>>> {
    let seen: Arc<Mutex<Vec<u64>>> = Arc::new(Mutex::new(Vec::new()));
    let sink = Arc::clone(&seen);
    ep.with_domain(move |domain| {
        let sub = domain.subscribe(FilterSpec::accept_all(), move |t: WireTick| {
            sink.lock().unwrap().push(*t.n());
        });
        sub.activate_with_id(durable_id).expect("durable attach");
        sub.detach();
    });
    seen
}

fn publish(ep: &DaceEndpoint, n: u64) {
    ep.with_domain(move |domain| {
        domain.publish(WireTick::new(n)).expect("publish");
    });
}

fn wait_until(deadline_ms: u64, mut done: impl FnMut() -> bool) -> bool {
    let deadline = Instant::now() + StdDuration::from_millis(deadline_ms);
    while Instant::now() < deadline {
        if done() {
            return true;
        }
        std::thread::sleep(StdDuration::from_millis(20));
    }
    done()
}

/// The real-file acceptance run: subscriber killed mid-stream (only its
/// segment files survive), publishes continue while it is down, restart
/// on the same `--data-dir` + durable identity resumes exactly once.
#[test]
fn killed_subscriber_resumes_exactly_once_from_segment_files() {
    let data = temp_root("restart");
    let cluster = vec![NodeId(0), NodeId(1)];
    let publisher = endpoint(NodeId(0), "127.0.0.1:0", cluster.clone(), None);

    // First subscriber incarnation.
    let first_seen;
    {
        let subscriber = endpoint(NodeId(1), "127.0.0.1:0", cluster.clone(), Some(&data));
        publisher
            .transport()
            .add_peer(NodeId(1), &subscriber.local_addr().to_string());
        subscriber
            .transport()
            .add_peer(NodeId(0), &publisher.local_addr().to_string());
        assert!(publisher.wait_connected(StdDuration::from_secs(10)));

        first_seen = attach_durable(&subscriber, 7_001);
        // Announcement settles, then the first half of the stream arrives.
        std::thread::sleep(StdDuration::from_millis(400));
        for n in 0..3u64 {
            publish(&publisher, n);
        }
        assert!(
            wait_until(10_000, || first_seen.lock().unwrap().len() >= 3),
            "first incarnation must receive the head of the stream: {:?}",
            first_seen.lock().unwrap()
        );
        subscriber.shutdown();
        // The endpoint drops here: every byte of in-memory state is gone,
        // only <data>/ segment files remain.
    }

    // Publishes while the subscriber is down: certified retransmission
    // holds them for the durable subscription.
    for n in 3..6u64 {
        publish(&publisher, n);
    }
    std::thread::sleep(StdDuration::from_millis(200));

    // Second incarnation: same data dir, same durable identity, same port
    // is NOT required (fresh ephemeral bind; the publisher re-dials).
    let revived = endpoint(NodeId(1), "127.0.0.1:0", cluster, Some(&data));
    publisher.transport().add_peer(NodeId(1), &revived.local_addr().to_string());
    revived
        .transport()
        .add_peer(NodeId(0), &publisher.local_addr().to_string());
    let second_seen = attach_durable(&revived, 7_001);

    assert!(
        wait_until(20_000, || second_seen.lock().unwrap().len() >= 3),
        "second incarnation must resume the stream: {:?}",
        second_seen.lock().unwrap()
    );
    // Duplicate grace window: a lost delivered-set would resurface the
    // head of the stream via retransmission about now.
    std::thread::sleep(StdDuration::from_millis(500));

    let first: Vec<u64> = first_seen.lock().unwrap().clone();
    let mut second: Vec<u64> = second_seen.lock().unwrap().clone();
    second.sort_unstable();
    assert_eq!(first, vec![0, 1, 2], "head of the stream, in order, once");
    assert_eq!(
        second,
        vec![3, 4, 5],
        "tail of the stream exactly once — nothing lost, nothing re-delivered"
    );

    revived.shutdown();
    publisher.shutdown();
    let _ = std::fs::remove_dir_all(&data);
}
