//! The real wire against the oracle: harness-generated scenarios replayed
//! over loopback TCP clusters, compared with the simulator's run of the
//! same scenario — plus regression tests for the transport's failure
//! handling (rude peers, reconnects).

use std::sync::atomic::Ordering;
use std::sync::{Arc, Mutex};
use std::time::{Duration as StdDuration, Instant};

use psc_dace::DaceConfig;
use psc_harness::stack::{
    run_stack, FilterKind, FuzzBase, FuzzLeaf, FuzzMid, FuzzSide, Level, StackScenario,
};
use psc_net::{DaceEndpoint, NetConfig, NetTransport};
use psc_simnet::{Node, NodeId};
use psc_telemetry::{Inspect, Registry};

type Sink = Arc<Mutex<Vec<u64>>>;

/// Starts `n` endpoints on ephemeral loopback ports, fully meshed.
fn start_cluster(n: usize, dace: DaceConfig) -> Vec<DaceEndpoint> {
    let ids: Vec<NodeId> = (0..n as u64).map(NodeId).collect();
    let endpoints: Vec<DaceEndpoint> = ids
        .iter()
        .map(|&id| {
            let mut net = NetConfig::new(id, "127.0.0.1:0");
            net.seed = id.0;
            DaceEndpoint::start(net, ids.clone(), dace.clone()).expect("bind endpoint")
        })
        .collect();
    let addrs: Vec<String> = endpoints.iter().map(|e| e.local_addr().to_string()).collect();
    for endpoint in &endpoints {
        for (&id, addr) in ids.iter().zip(&addrs) {
            if id != endpoint.id() {
                endpoint.transport().add_peer(id, addr);
            }
        }
    }
    for endpoint in &endpoints {
        assert!(
            endpoint.wait_connected(StdDuration::from_secs(10)),
            "cluster failed to mesh"
        );
    }
    endpoints
}

fn install(endpoint: &DaceEndpoint, level: Level, filter: FilterKind) -> Sink {
    let sink: Sink = Arc::new(Mutex::new(Vec::new()));
    let recorder = Arc::clone(&sink);
    endpoint.with_domain(move |domain| {
        let sub = match level {
            Level::Base => domain.subscribe(filter.spec(), move |e: FuzzBase| {
                recorder.lock().unwrap().push(*e.tag());
            }),
            Level::Mid => domain.subscribe(filter.spec(), move |e: FuzzMid| {
                recorder.lock().unwrap().push(*e.tag());
            }),
            Level::Leaf => domain.subscribe(filter.spec(), move |e: FuzzLeaf| {
                recorder.lock().unwrap().push(*e.tag());
            }),
            Level::Side => domain.subscribe(filter.spec(), move |e: FuzzSide| {
                recorder.lock().unwrap().push(*e.tag());
            }),
        };
        sub.activate().expect("activate");
        sub.detach();
    });
    sink
}

fn publish(endpoint: &DaceEndpoint, level: Level, tag: u64, value: i64) {
    let base = FuzzBase::new(tag, value);
    endpoint.with_domain(move |domain| {
        match level {
            Level::Base => domain.publish(base).expect("publish"),
            Level::Mid => domain.publish(FuzzMid::new(base)).expect("publish"),
            Level::Leaf => domain.publish(FuzzLeaf::new(FuzzMid::new(base))).expect("publish"),
            Level::Side => domain.publish(FuzzSide::new(base)).expect("publish"),
        };
    });
}

/// Replays `scenario` over a real loopback cluster and returns the sorted
/// per-subscription tag sets.
fn run_real(scenario: &StackScenario) -> Vec<Vec<u64>> {
    let endpoints = start_cluster(scenario.nodes, DaceConfig::default());
    let sinks: Vec<Sink> = scenario
        .subs
        .iter()
        .map(|s| install(&endpoints[s.node], s.level, s.filter))
        .collect();
    // Subscription announcements settle (the simulator gives this 30ms of
    // virtual time; real loopback gets real milliseconds plus the 200ms
    // announce anti-entropy as a second chance).
    std::thread::sleep(StdDuration::from_millis(500));
    for plan in &scenario.pubs {
        publish(&endpoints[plan.node], plan.level, plan.tag, plan.value);
        std::thread::sleep(StdDuration::from_millis(10));
    }

    // Wait until every sink holds its expected count (or a deadline).
    let expected = scenario.expected();
    let deadline = Instant::now() + StdDuration::from_secs(20);
    loop {
        let done = sinks
            .iter()
            .zip(&expected)
            .all(|(sink, exp)| sink.lock().unwrap().len() >= exp.len());
        if done || Instant::now() >= deadline {
            break;
        }
        std::thread::sleep(StdDuration::from_millis(20));
    }
    // Grace window so late duplicates (a bug) would still be caught.
    std::thread::sleep(StdDuration::from_millis(300));

    let got = sinks
        .iter()
        .map(|sink| {
            let mut tags = sink.lock().unwrap().clone();
            tags.sort_unstable();
            tags
        })
        .collect();
    for endpoint in &endpoints {
        endpoint.shutdown();
    }
    got
}

/// The tentpole acceptance test: harness scenarios on a multi-endpoint
/// loopback cluster deliver **exactly** what the simulator (the oracle)
/// says they deliver.
#[test]
fn real_wire_matches_simnet_oracle() {
    for seed in [7u64, 21, 42] {
        let scenario = StackScenario::generate(seed);
        let sim = run_stack(&scenario);
        assert!(
            sim.violations.is_empty(),
            "oracle run itself failed for seed {seed}: {:?}",
            sim.violations
        );
        let real = run_real(&scenario);
        assert_eq!(
            real, sim.got,
            "seed {seed}: real-wire deliveries diverge from the simnet oracle\n{}",
            scenario.describe()
        );
    }
}

/// A peer that connects and vanishes mid-handshake, one that dies
/// mid-frame, and one that sends garbage: all three must surface as
/// counted transport events — never a panic, never a wedged reader.
#[test]
fn rude_peers_surface_as_clean_drops() {
    use std::io::Write;
    use std::net::TcpStream;

    struct NullNode;
    impl Node for NullNode {
        fn on_message(&mut self, _ctx: &mut psc_simnet::Ctx<'_>, _from: NodeId, _payload: &[u8]) {}
        fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
            self
        }
    }

    let registry = Arc::new(Registry::new());
    let transport = NetTransport::bind(
        NetConfig::new(NodeId(0), "127.0.0.1:0"),
        Box::new(NullNode),
        Arc::clone(&registry),
        None,
    )
    .expect("bind");
    let addr = transport.local_addr();

    // Rude peer 1: connects, says nothing, slams the door (mid-handshake).
    drop(TcpStream::connect(addr).expect("dial"));

    // Rude peer 2: valid hello, then half a frame, then gone (mid-frame).
    {
        let mut stream = TcpStream::connect(addr).expect("dial");
        let mut bytes = Vec::new();
        psc_codec::frame::encode_crc(&hello(NodeId(9)), &mut bytes);
        let mut partial = Vec::new();
        psc_codec::frame::encode_crc(b"cut off", &mut partial);
        bytes.extend_from_slice(&partial[..partial.len() / 2]);
        stream.write_all(&bytes).expect("write");
        drop(stream);
    }

    // Rude peer 3: straight garbage instead of a hello.
    {
        let mut stream = TcpStream::connect(addr).expect("dial");
        let mut bytes = Vec::new();
        psc_codec::frame::encode_crc(b"not a hello at all", &mut bytes);
        stream.write_all(&bytes).expect("write");
        drop(stream);
    }

    // All three connections end as counted drop events.
    let deadline = Instant::now() + StdDuration::from_secs(5);
    while registry.snapshot().counter("net.peer.drop") < 3 && Instant::now() < deadline {
        std::thread::sleep(StdDuration::from_millis(20));
    }
    let snapshot = registry.snapshot();
    assert_eq!(snapshot.counter("net.peer.drop"), 3, "each rude peer counts one drop");
    assert!(
        snapshot.counter("net.frames.corrupt") >= 1,
        "the garbage hello counts as corrupt"
    );
    // The transport is still healthy: a well-behaved peer gets through.
    {
        let mut stream = TcpStream::connect(addr).expect("dial");
        let mut bytes = Vec::new();
        psc_codec::frame::encode_crc(&hello(NodeId(5)), &mut bytes);
        psc_codec::frame::encode_crc(b"real payload", &mut bytes);
        stream.write_all(&bytes).expect("write");
        let deadline = Instant::now() + StdDuration::from_secs(5);
        while registry.snapshot().counter("net.msgs_recv") < 1 && Instant::now() < deadline {
            std::thread::sleep(StdDuration::from_millis(20));
        }
        assert_eq!(registry.snapshot().counter("net.msgs_recv"), 1);
    }
    let report = transport.inspect();
    assert!(report.contains("net.peer.drop=3"), "drops visible in inspect:\n{report}");
    transport.shutdown();
}

/// Hello frame payload, rebuilt here so the test exercises the public
/// wire format rather than internal helpers.
fn hello(id: NodeId) -> Vec<u8> {
    let mut out = Vec::with_capacity(14);
    out.extend_from_slice(b"PSCN");
    out.extend_from_slice(&1u16.to_le_bytes());
    out.extend_from_slice(&id.0.to_le_bytes());
    out
}

/// Killing a peer's endpoint and restarting it on the same port must heal
/// through the reconnect path: queued traffic drains to the revived peer
/// and `net.peer.reconnects` records the re-dial.
#[test]
fn reconnect_after_peer_restart() {
    use std::sync::atomic::AtomicU64;

    // Echo-less counter node: counts every message it is delivered.
    struct CountNode(Arc<AtomicU64>);
    impl Node for CountNode {
        fn on_message(&mut self, _ctx: &mut psc_simnet::Ctx<'_>, _from: NodeId, _payload: &[u8]) {
            self.0.fetch_add(1, Ordering::SeqCst);
        }
        fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
            self
        }
    }

    let sender_registry = Arc::new(Registry::new());
    let sender = NetTransport::bind(
        NetConfig::new(NodeId(0), "127.0.0.1:0"),
        Box::new(CountNode(Arc::new(AtomicU64::new(0)))),
        Arc::clone(&sender_registry),
        None,
    )
    .expect("bind sender");

    let received = Arc::new(AtomicU64::new(0));
    let receiver = NetTransport::bind(
        NetConfig::new(NodeId(1), "127.0.0.1:0"),
        Box::new(CountNode(Arc::clone(&received))),
        Arc::new(Registry::new()),
        None,
    )
    .expect("bind receiver");
    let receiver_addr = receiver.local_addr();
    sender.add_peer(NodeId(1), &receiver_addr.to_string());
    assert!(sender.wait_connected(StdDuration::from_secs(5)));

    let send = |n: u64| {
        for i in 0..n {
            sender.act_sync(move |_node, ctx| {
                ctx.send(NodeId(1), format!("msg-{i}").into_bytes());
            });
        }
    };
    send(5);
    let wait_for = |count: u64, received: &Arc<AtomicU64>| {
        let deadline = Instant::now() + StdDuration::from_secs(10);
        while received.load(Ordering::SeqCst) < count && Instant::now() < deadline {
            std::thread::sleep(StdDuration::from_millis(10));
        }
        received.load(Ordering::SeqCst)
    };
    assert_eq!(wait_for(5, &received), 5);

    // Kill the receiver. The writer only notices on its next failed
    // write (messages already in the kernel buffer are simply lost —
    // reliability is the group protocols' job, not the transport's), so
    // probe with pings until the failure surfaces.
    receiver.shutdown();
    drop(receiver);
    let deadline = Instant::now() + StdDuration::from_secs(10);
    while sender.peer_connected(NodeId(1)) && Instant::now() < deadline {
        sender.act_sync(|_node, ctx| ctx.send(NodeId(1), b"ping".to_vec()));
        std::thread::sleep(StdDuration::from_millis(20));
    }
    assert!(!sender.peer_connected(NodeId(1)), "writer noticed the loss");

    // Traffic sent while the peer is down queues (bounded).
    send(3);

    // Revive the receiver on the same port; reconnect drains the queue.
    let received2 = Arc::new(AtomicU64::new(0));
    let revived = NetTransport::bind(
        NetConfig::new(NodeId(1), receiver_addr.to_string()),
        Box::new(CountNode(Arc::clone(&received2))),
        Arc::new(Registry::new()),
        None,
    )
    .expect("rebind receiver");
    assert!(sender.wait_connected(StdDuration::from_secs(10)), "reconnect");
    // At least the 3 queued messages arrive (plus any pings that were
    // re-queued by the failed write that surfaced the loss).
    assert!(
        wait_for(3, &received2) >= 3,
        "queued traffic drained after reconnect"
    );
    assert!(
        sender_registry.snapshot().counter("net.peer.reconnects") >= 1,
        "reconnect counted"
    );
    revived.shutdown();
    sender.shutdown();
}

/// Self-sends never touch a socket: a single-node "cluster" with no peers
/// still delivers its own publishes through the loopback queue.
#[test]
fn single_node_loopback_delivers_locally() {
    let endpoint = DaceEndpoint::start(
        NetConfig::new(NodeId(0), "127.0.0.1:0"),
        vec![NodeId(0)],
        DaceConfig::default(),
    )
    .expect("bind");
    let sink = install(&endpoint, Level::Base, FilterKind::None);
    std::thread::sleep(StdDuration::from_millis(100));
    publish(&endpoint, Level::Base, 0, 7);
    publish(&endpoint, Level::Leaf, 1, -7);
    let deadline = Instant::now() + StdDuration::from_secs(5);
    while sink.lock().unwrap().len() < 2 && Instant::now() < deadline {
        std::thread::sleep(StdDuration::from_millis(10));
    }
    let mut tags = sink.lock().unwrap().clone();
    tags.sort_unstable();
    assert_eq!(tags, vec![0, 1]);
    assert_eq!(endpoint.metrics().counter("net.msgs_sent"), 0, "no socket traffic");
    endpoint.shutdown();
}
