//! Consistent cluster snapshots over the real socket transport.
//!
//! The same Chandy–Lamport plane the simulator fuzzes runs unchanged
//! behind TCP: a node initiates a wave via [`DaceEndpoint::snapshot_capture`],
//! markers and fragments travel as ordinary framed messages, and the
//! assembled [`ClusterCut`] renders the same byte-stable cluster image the
//! harness oracles check under simnet. Because the rendering excludes
//! wall-clock and addresses, a *quiesced* cluster is reproducible: two
//! freshly built clusters running the same workload render identical
//! images, and two waves over one idle cluster differ only in the wave id.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration as StdDuration, Instant};

use psc_dace::DaceConfig;
use psc_net::{DaceEndpoint, NetConfig};
use psc_obvent::builtin::Certified;
use psc_obvent::declare_obvent_model;
use psc_simnet::NodeId;
use pubsub_core::FilterSpec;

declare_obvent_model! {
    /// The live snapshot test's certified workload.
    pub class CutTick implements [Certified] { n: u64 }
}

/// Starts `n` endpoints on ephemeral loopback ports, fully meshed, with
/// the announce anti-entropy slowed to keep links silent once quiesced
/// (in-flight recordings must be empty for byte-stable replays).
fn start_cluster(n: usize) -> Vec<DaceEndpoint> {
    let dace = DaceConfig {
        announce_interval: psc_simnet::Duration::from_millis(10_000),
        ..DaceConfig::default()
    };
    let ids: Vec<NodeId> = (0..n as u64).map(NodeId).collect();
    let endpoints: Vec<DaceEndpoint> = ids
        .iter()
        .map(|&id| {
            let mut net = NetConfig::new(id, "127.0.0.1:0");
            net.seed = id.0;
            DaceEndpoint::start(net, ids.clone(), dace.clone()).expect("bind endpoint")
        })
        .collect();
    let addrs: Vec<String> = endpoints.iter().map(|e| e.local_addr().to_string()).collect();
    for endpoint in &endpoints {
        for (&id, addr) in ids.iter().zip(&addrs) {
            if id != endpoint.id() {
                endpoint.transport().add_peer(id, addr);
            }
        }
    }
    for endpoint in &endpoints {
        assert!(
            endpoint.wait_connected(StdDuration::from_secs(10)),
            "cluster failed to mesh"
        );
    }
    endpoints
}

fn subscribe(endpoint: &DaceEndpoint) -> Arc<AtomicU64> {
    let count = Arc::new(AtomicU64::new(0));
    let recorder = Arc::clone(&count);
    endpoint.with_domain(move |domain| {
        let sub = domain.subscribe(FilterSpec::accept_all(), move |_: CutTick| {
            recorder.fetch_add(1, Ordering::SeqCst);
        });
        sub.activate().expect("activate");
        sub.detach();
    });
    count
}

/// One full run: mesh, subscribe, publish a certified stream, quiesce,
/// snapshot from node 0, return the rendered cluster image.
fn run_once(pubs: u64) -> (String, Vec<DaceEndpoint>) {
    let endpoints = start_cluster(3);
    let sinks: Vec<Arc<AtomicU64>> =
        endpoints[1..].iter().map(subscribe).collect();
    // Subscription announcements converge before the first publish.
    std::thread::sleep(StdDuration::from_millis(500));
    for i in 0..pubs {
        endpoints[0].with_domain(move |domain| {
            domain.publish(CutTick::new(i)).expect("publish");
        });
    }
    let deadline = Instant::now() + StdDuration::from_secs(20);
    while sinks.iter().any(|s| s.load(Ordering::SeqCst) < pubs)
        && Instant::now() < deadline
    {
        std::thread::sleep(StdDuration::from_millis(20));
    }
    for (i, sink) in sinks.iter().enumerate() {
        assert_eq!(
            sink.load(Ordering::SeqCst),
            pubs,
            "subscriber {i} must deliver the full certified stream"
        );
    }
    // Let the certified acks drain the retransmit logs so the captured
    // channel state is settled (and the links are silent).
    std::thread::sleep(StdDuration::from_millis(500));
    let render = endpoints[0]
        .snapshot_capture(StdDuration::from_secs(10))
        .expect("wave completes on an idle cluster");
    (render, endpoints)
}

#[test]
fn live_cluster_snapshot_is_byte_stable_and_repeatable() {
    let (first, endpoints) = run_once(5);

    assert!(first.contains("cluster snapshot #1"), "{first}");
    for node in ["node n0", "node n1", "node n2"] {
        assert!(first.contains(node), "missing {node} in:\n{first}");
    }
    assert!(first.contains("proto=certified"), "{first}");
    assert!(first.contains("next_seq=5"), "{first}");
    assert!(first.contains("delivered=o0e0:1-5"), "{first}");
    assert!(
        !first.contains("retransmit"),
        "a quiesced cluster owes nothing:\n{first}"
    );

    // The snapshot plane lands in the same telemetry registry as
    // everything else, and the inspect report names the wave.
    let metrics = endpoints[0].metrics();
    assert_eq!(metrics.counter("snapshot.initiated"), 1);
    assert!(metrics.counter("snapshot.markers.sent") >= 2);
    assert_eq!(metrics.counter("snapshot.completed"), 1);
    let inspect = endpoints[0].inspect();
    assert!(inspect.contains("snapshot wave=1"), "{inspect}");

    // A second wave over the same idle cluster captures the same state —
    // only the wave id moves.
    let second = endpoints[0]
        .snapshot_capture(StdDuration::from_secs(10))
        .expect("second wave completes");
    assert_eq!(
        second.replace("cluster snapshot #2", "cluster snapshot #1"),
        first,
        "an idle cluster must render the same image wave after wave"
    );
    for endpoint in &endpoints {
        endpoint.shutdown();
    }

    // A freshly built cluster running the same workload renders the
    // identical byte-stable image (no ports, no wall-clock in the image).
    let (replay, endpoints) = run_once(5);
    assert_eq!(replay, first, "replayed cluster image must be byte-identical");
    for endpoint in &endpoints {
        endpoint.shutdown();
    }
}
