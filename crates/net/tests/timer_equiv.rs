//! The wall-clock timer driver against the simulator's virtual clock.
//!
//! The transport promises that a protocol's timer schedule — retransmit
//! ticks, heartbeats, one-shot deadlines, cancellations — plays out in
//! the same order under [`TimerDriver`] + [`MockClock`] as under
//! [`SimNet`]'s event queue. These tests run the *same node* under both
//! drivers and compare the full `(time, event)` logs byte for byte.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use psc_net::clock::{Clock, MockClock, TimerDriver};
use psc_simnet::{
    Ctx, Duration, HostEffect, Node, NodeHost, NodeId, SimConfig, SimNet, SimTime, TimerId,
};

type Log = Arc<Mutex<Vec<(u64, String)>>>;

/// A node with a protocol-shaped timer mix: a 40ms retransmit tick that
/// re-arms three times (the reliable protocol's interval), a 200ms
/// heartbeat that re-arms once (the announce interval), a one-shot that
/// gets cancelled before it can fire, and a canceller that does the
/// cancelling — including ties: retransmit #5 (at 200ms) collides with
/// heartbeat #1.
struct SchedNode {
    log: Log,
    labels: HashMap<TimerId, &'static str>,
    doomed: Option<TimerId>,
    retransmits_left: u32,
    heartbeats_left: u32,
}

impl SchedNode {
    fn new(log: Log) -> SchedNode {
        SchedNode {
            log,
            labels: HashMap::new(),
            doomed: None,
            retransmits_left: 4,
            heartbeats_left: 2,
        }
    }

    fn arm(&mut self, ctx: &mut Ctx<'_>, after: Duration, label: &'static str) -> TimerId {
        let id = ctx.set_timer(after);
        self.labels.insert(id, label);
        id
    }
}

impl Node for SchedNode {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        self.arm(ctx, Duration::from_millis(40), "retransmit");
        self.arm(ctx, Duration::from_millis(200), "heartbeat");
        let doomed = self.arm(ctx, Duration::from_millis(100), "doomed");
        self.doomed = Some(doomed);
        self.arm(ctx, Duration::from_millis(60), "canceller");
    }

    fn on_message(&mut self, _ctx: &mut Ctx<'_>, _from: NodeId, _payload: &[u8]) {}

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, timer: TimerId) {
        let label = self.labels.remove(&timer).expect("armed timer");
        self.log
            .lock()
            .unwrap()
            .push((ctx.now().as_micros(), label.to_string()));
        match label {
            "retransmit" if self.retransmits_left > 1 => {
                self.retransmits_left -= 1;
                self.arm(ctx, Duration::from_millis(40), "retransmit");
            }
            "heartbeat" if self.heartbeats_left > 1 => {
                self.heartbeats_left -= 1;
                self.arm(ctx, Duration::from_millis(200), "heartbeat");
            }
            "canceller" => {
                let doomed = self.doomed.take().expect("doomed armed");
                ctx.cancel_timer(doomed);
            }
            _ => {}
        }
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

/// Runs the node under the simulator's virtual clock.
fn simnet_schedule() -> Vec<(u64, String)> {
    let log: Log = Arc::new(Mutex::new(Vec::new()));
    let mut sim = SimNet::new(SimConfig::with_seed(1));
    let node_log = Arc::clone(&log);
    sim.add_node("sched", move || Box::new(SchedNode::new(Arc::clone(&node_log))));
    sim.run_until(SimTime::from_secs(2));
    let result = log.lock().unwrap().clone();
    result
}

/// Runs the same node under the transport's driver: [`NodeHost`] +
/// [`TimerDriver`], with a [`MockClock`] standing in for the wall clock.
fn driver_schedule() -> Vec<(u64, String)> {
    let log: Log = Arc::new(Mutex::new(Vec::new()));
    let clock = MockClock::new();
    let mut driver: TimerDriver = TimerDriver::new();
    let mut host = NodeHost::new(NodeId(0), Box::new(SchedNode::new(Arc::clone(&log))), 1);

    let apply = |effects: Vec<HostEffect>, now: SimTime, driver: &mut TimerDriver| {
        for effect in effects {
            match effect {
                HostEffect::SetTimer { id, after } => driver.schedule(now + after, id),
                HostEffect::Send { .. } => panic!("SchedNode does not send"),
            }
        }
    };

    let now = clock.now();
    let effects = host.start(now);
    apply(effects, now, &mut driver);

    // The event loop, with time warped forward instead of slept through:
    // exactly what `NetTransport`'s loop does between socket events.
    while let Some(deadline) = driver.next_deadline() {
        clock.set(deadline);
        let now = clock.now();
        while let Some(id) = driver.pop_due(now) {
            if let Some(effects) = host.timer(now, id) {
                apply(effects, now, &mut driver);
            }
        }
    }
    let result = log.lock().unwrap().clone();
    result
}

#[test]
fn wall_clock_schedule_matches_virtual_time() {
    let sim = simnet_schedule();
    let real = driver_schedule();
    assert!(!sim.is_empty(), "simulator fired timers");
    assert_eq!(
        sim, real,
        "timer driver diverged from the simulator's schedule"
    );
    // Sanity on the shape: the doomed timer never fired, and the chains
    // ran to their configured lengths (retransmits at 40/80/120/160ms,
    // heartbeats at 200/400ms, the canceller at 60ms).
    assert!(sim.iter().all(|(_, label)| label != "doomed"));
    let expected: Vec<(u64, String)> = [
        (40_000, "retransmit"),
        (60_000, "canceller"),
        (80_000, "retransmit"),
        (120_000, "retransmit"),
        (160_000, "retransmit"),
        (200_000, "heartbeat"),
        (400_000, "heartbeat"),
    ]
    .into_iter()
    .map(|(t, l)| (t, l.to_string()))
    .collect();
    assert_eq!(sim, expected, "protocol-shaped schedule");
}

/// Cancellation races: a timer cancelled *after* its deadline has been
/// queued (possible when a message callback cancels while the timer is
/// already due) must be suppressed by the host under both drivers.
#[test]
fn late_cancellation_is_suppressed_like_the_simulator() {
    struct CancelNode {
        fired: Arc<Mutex<Vec<&'static str>>>,
        victim: Option<TimerId>,
    }
    impl Node for CancelNode {
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            // Victim and killer due at the same instant; killer armed
            // first, so it runs first and cancels the already-queued
            // victim.
            let killer = ctx.set_timer(Duration::from_millis(10));
            let victim = ctx.set_timer(Duration::from_millis(10));
            self.victim = Some(victim);
            let _ = killer;
        }
        fn on_message(&mut self, _ctx: &mut Ctx<'_>, _from: NodeId, _payload: &[u8]) {}
        fn on_timer(&mut self, ctx: &mut Ctx<'_>, timer: TimerId) {
            match self.victim {
                Some(victim) if timer != victim => {
                    self.fired.lock().unwrap().push("killer");
                    ctx.cancel_timer(victim);
                }
                _ => self.fired.lock().unwrap().push("victim"),
            }
        }
        fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
            self
        }
    }

    // Simulator run.
    let sim_fired: Arc<Mutex<Vec<&'static str>>> = Arc::new(Mutex::new(Vec::new()));
    let mut sim = SimNet::new(SimConfig::with_seed(1));
    let log = Arc::clone(&sim_fired);
    sim.add_node("cancel", move || {
        Box::new(CancelNode { fired: Arc::clone(&log), victim: None })
    });
    sim.run_until(SimTime::from_secs(1));

    // Driver run.
    let real_fired: Arc<Mutex<Vec<&'static str>>> = Arc::new(Mutex::new(Vec::new()));
    let clock = MockClock::new();
    let mut driver: TimerDriver = TimerDriver::new();
    let mut host = NodeHost::new(
        NodeId(0),
        Box::new(CancelNode { fired: Arc::clone(&real_fired), victim: None }),
        1,
    );
    let effects = host.start(clock.now());
    for effect in effects {
        if let HostEffect::SetTimer { id, after } = effect {
            driver.schedule(clock.now() + after, id);
        }
    }
    while let Some(deadline) = driver.next_deadline() {
        clock.set(deadline);
        while let Some(id) = driver.pop_due(clock.now()) {
            if let Some(effects) = host.timer(clock.now(), id) {
                for effect in effects {
                    if let HostEffect::SetTimer { id, after } = effect {
                        driver.schedule(clock.now() + after, id);
                    }
                }
            }
        }
    }

    let sim_fired = sim_fired.lock().unwrap().clone();
    let real_fired = real_fired.lock().unwrap().clone();
    assert_eq!(sim_fired, vec!["killer"], "simulator suppresses the cancelled victim");
    assert_eq!(real_fired, sim_fired, "host matches the simulator exactly");
}
