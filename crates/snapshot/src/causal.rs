//! Vector and matrix clocks [Mat89] keyed by raw node id.
//!
//! `psc-group` already carries a `VectorClock` keyed by `NodeId` for the
//! causal protocol's dependency vectors; this module is the transport- and
//! layer-agnostic counterpart used by the snapshot plane. Keys are plain
//! `u64` node ids so the types can live below `psc-simnet` in the crate
//! DAG and be embedded in the wire envelope by `psc-obvent`.

use std::collections::BTreeMap;
use std::fmt;

use serde::{Deserialize, Serialize};

/// Ordering of two events under the happens-before partial order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Causality {
    /// Identical clocks.
    Equal,
    /// `self` happens-before `other`.
    Before,
    /// `other` happens-before `self`.
    After,
    /// Neither precedes the other.
    Concurrent,
}

/// A vector clock: one logical-event counter per node, missing entries
/// counting as zero (so clocks over different member sets compare
/// sensibly and the empty clock is a valid bottom element).
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct VClock {
    entries: BTreeMap<u64, u64>,
}

impl VClock {
    /// The all-zero clock.
    pub fn new() -> VClock {
        VClock::default()
    }

    /// The counter for `node` (zero when absent).
    pub fn get(&self, node: u64) -> u64 {
        self.entries.get(&node).copied().unwrap_or(0)
    }

    /// Sets `node`'s counter; setting zero removes the entry so that
    /// structurally different encodings of the same clock cannot exist.
    pub fn set(&mut self, node: u64, value: u64) {
        if value == 0 {
            self.entries.remove(&node);
        } else {
            self.entries.insert(node, value);
        }
    }

    /// Increments `node`'s counter (a local event), returning the new
    /// value.
    pub fn tick(&mut self, node: u64) -> u64 {
        let counter = self.entries.entry(node).or_insert(0);
        *counter += 1;
        *counter
    }

    /// Pointwise maximum with `other` — the merge applied on message
    /// receipt.
    pub fn merge(&mut self, other: &VClock) {
        for (&node, &value) in &other.entries {
            let mine = self.entries.entry(node).or_insert(0);
            if value > *mine {
                *mine = value;
            }
        }
    }

    /// Classifies `self` against `other` under happens-before.
    pub fn compare(&self, other: &VClock) -> Causality {
        let mut less = false;
        let mut greater = false;
        for &node in self.entries.keys().chain(other.entries.keys()) {
            let a = self.get(node);
            let b = other.get(node);
            less |= a < b;
            greater |= a > b;
        }
        match (less, greater) {
            (false, false) => Causality::Equal,
            (true, false) => Causality::Before,
            (false, true) => Causality::After,
            (true, true) => Causality::Concurrent,
        }
    }

    /// True when `self` ≤ `other` pointwise.
    pub fn le(&self, other: &VClock) -> bool {
        matches!(self.compare(other), Causality::Before | Causality::Equal)
    }

    /// Number of non-zero entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when every counter is zero.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// `(node, counter)` pairs in node order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.entries.iter().map(|(&n, &c)| (n, c))
    }
}

impl fmt::Display for VClock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, (node, counter)) in self.iter().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            write!(f, "n{node}:{counter}")?;
        }
        write!(f, "]")
    }
}

/// A matrix clock: `rows[m]` is the best known vector clock *at* member
/// `m` — what this node knows that `m` knows. The pointwise minimum over
/// the rows of a member set bounds what **every** member is guaranteed to
/// have observed, which is exactly the garbage-collection floor for
/// causal delivery buffers: an event at or below the min-row has been
/// delivered everywhere and can never be needed (or relayed afresh)
/// again.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct MatrixClock {
    rows: BTreeMap<u64, VClock>,
}

impl MatrixClock {
    /// The empty matrix (every row the zero clock).
    pub fn new() -> MatrixClock {
        MatrixClock::default()
    }

    /// The row for `node`, if anything is known about it.
    pub fn row(&self, node: u64) -> Option<&VClock> {
        self.rows.get(&node)
    }

    /// Merges `clock` into `node`'s row — knowledge about a node only
    /// ever grows.
    pub fn observe(&mut self, node: u64, clock: &VClock) {
        self.rows.entry(node).or_default().merge(clock);
    }

    /// Records a single observed counter in `node`'s row.
    pub fn observe_entry(&mut self, node: u64, origin: u64, count: u64) {
        let row = self.rows.entry(node).or_default();
        if row.get(origin) < count {
            row.set(origin, count);
        }
    }

    /// The GC floor for `origin` over `members`: the largest counter
    /// every member of the set is known to have reached. A member with no
    /// row yet contributes zero (nothing may be collected until every
    /// member has been heard from).
    pub fn min_entry(&self, origin: u64, members: impl IntoIterator<Item = u64>) -> u64 {
        let mut floor = u64::MAX;
        let mut any = false;
        for member in members {
            any = true;
            let known = self.rows.get(&member).map_or(0, |row| row.get(origin));
            floor = floor.min(known);
        }
        if any { floor } else { 0 }
    }

    /// The pointwise min-row over `members`: the full GC-floor clock.
    pub fn min_row(&self, members: &[u64]) -> VClock {
        let mut origins: Vec<u64> = Vec::new();
        for member in members {
            if let Some(row) = self.rows.get(member) {
                origins.extend(row.iter().map(|(n, _)| n));
            }
        }
        origins.sort_unstable();
        origins.dedup();
        let mut out = VClock::new();
        for origin in origins {
            out.set(origin, self.min_entry(origin, members.iter().copied()));
        }
        out
    }

    /// Number of known rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no row has been observed.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

/// The causal stamp carried in every wire envelope next to the
/// `TraceId`: the highest snapshot wave the sender has joined (zero when
/// none) and the sender's vector clock at send time.
///
/// The wave id is what makes the snapshot protocol robust over non-FIFO
/// links: a receiver that sees `snap` greater than its own current wave
/// captures its state *before* processing the message, so no post-capture
/// event at the sender can leak into the receiver's pre-capture state —
/// the Lai–Yang colouring argument, with markers retained purely as the
/// wave's ignition and completion signal.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct CausalStamp {
    /// Snapshot wave id (0 = no wave).
    pub snap: u64,
    /// Sender's vector clock at send time.
    pub clock: VClock,
}

impl CausalStamp {
    /// A stamp for `snap` carrying `clock`.
    pub fn new(snap: u64, clock: VClock) -> CausalStamp {
        CausalStamp { snap, clock }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn tick_merge_get() {
        let mut a = VClock::new();
        assert_eq!(a.tick(3), 1);
        assert_eq!(a.tick(3), 2);
        let mut b = VClock::new();
        b.set(3, 1);
        b.set(5, 4);
        a.merge(&b);
        assert_eq!(a.get(3), 2);
        assert_eq!(a.get(5), 4);
        assert_eq!(a.to_string(), "[n3:2 n5:4]");
    }

    #[test]
    fn concurrent_events_are_detected() {
        let mut a = VClock::new();
        a.tick(0);
        let mut b = VClock::new();
        b.tick(1);
        assert_eq!(a.compare(&b), Causality::Concurrent);
        assert_eq!(b.compare(&a), Causality::Concurrent);
        let mut c = a.clone();
        c.merge(&b);
        assert_eq!(a.compare(&c), Causality::Before);
        assert_eq!(c.compare(&b), Causality::After);
    }

    #[test]
    fn matrix_min_row_is_the_floor() {
        let mut m = MatrixClock::new();
        let mut r0 = VClock::new();
        r0.set(0, 5);
        r0.set(1, 2);
        let mut r1 = VClock::new();
        r1.set(0, 3);
        r1.set(1, 4);
        m.observe(0, &r0);
        m.observe(1, &r1);
        assert_eq!(m.min_entry(0, [0, 1]), 3);
        assert_eq!(m.min_entry(1, [0, 1]), 2);
        // A member never heard from pins the floor at zero.
        assert_eq!(m.min_entry(0, [0, 1, 2]), 0);
        let row = m.min_row(&[0, 1]);
        assert_eq!(row.get(0), 3);
        assert_eq!(row.get(1), 2);
    }

    fn arb_clock() -> impl Strategy<Value = VClock> {
        proptest::collection::btree_map(0u64..5, 0u64..6, 0..5).prop_map(|m| {
            let mut vc = VClock::new();
            for (k, v) in m {
                vc.set(k, v);
            }
            vc
        })
    }

    fn arb_matrix() -> impl Strategy<Value = MatrixClock> {
        proptest::collection::btree_map(0u64..4, arb_clock(), 0..4).prop_map(|rows| {
            let mut m = MatrixClock::new();
            for (node, clock) in rows {
                m.observe(node, &clock);
            }
            m
        })
    }

    proptest! {
        /// merge is the least upper bound: both inputs ≤ merged, and any
        /// common upper bound dominates the merge.
        #[test]
        fn prop_merge_is_lub(a in arb_clock(), b in arb_clock(), c in arb_clock()) {
            let mut merged = a.clone();
            merged.merge(&b);
            prop_assert!(a.le(&merged));
            prop_assert!(b.le(&merged));
            let mut upper = c.clone();
            upper.merge(&a);
            upper.merge(&b);
            prop_assert!(merged.le(&upper));
        }

        /// merge is commutative, associative and idempotent.
        #[test]
        fn prop_merge_laws(a in arb_clock(), b in arb_clock(), c in arb_clock()) {
            let mut ab = a.clone();
            ab.merge(&b);
            let mut ba = b.clone();
            ba.merge(&a);
            prop_assert_eq!(&ab, &ba);
            let mut ab_c = ab.clone();
            ab_c.merge(&c);
            let mut bc = b.clone();
            bc.merge(&c);
            let mut a_bc = a.clone();
            a_bc.merge(&bc);
            prop_assert_eq!(&ab_c, &a_bc);
            let mut aa = a.clone();
            aa.merge(&a);
            prop_assert_eq!(&aa, &a);
        }

        /// compare is a partial order: reflexive-equal, antisymmetric,
        /// and `le` is transitive.
        #[test]
        fn prop_compare_partial_order(a in arb_clock(), b in arb_clock(), c in arb_clock()) {
            prop_assert_eq!(a.compare(&a), Causality::Equal);
            let expected = match a.compare(&b) {
                Causality::Equal => Causality::Equal,
                Causality::Before => Causality::After,
                Causality::After => Causality::Before,
                Causality::Concurrent => Causality::Concurrent,
            };
            prop_assert_eq!(b.compare(&a), expected);
            if a.le(&b) && b.le(&c) {
                prop_assert!(a.le(&c));
            }
        }

        /// Concurrency is exactly "neither ≤": the detector cannot call
        /// ordered clocks concurrent or concurrent clocks ordered.
        #[test]
        fn prop_concurrent_iff_neither_le(a in arb_clock(), b in arb_clock()) {
            let concurrent = a.compare(&b) == Causality::Concurrent;
            prop_assert_eq!(concurrent, !a.le(&b) && !b.le(&a));
        }

        /// The matrix min-row is ≤ every member row, and observing more
        /// knowledge never lowers the floor.
        #[test]
        fn prop_matrix_min_row_bounds(m in arb_matrix(), extra in arb_clock(), node in 0u64..4) {
            let members: Vec<u64> = (0..4).collect();
            let floor = m.min_row(&members);
            for member in &members {
                if let Some(row) = m.row(*member) {
                    prop_assert!(floor.le(row));
                } else {
                    prop_assert!(floor.is_empty());
                }
            }
            let mut grown = m.clone();
            grown.observe(node, &extra);
            prop_assert!(floor.le(&grown.min_row(&members)));
        }

        /// Stamps survive the codec.
        #[test]
        fn prop_stamp_codec_roundtrip(snap in 0u64..9, clock in arb_clock()) {
            let stamp = CausalStamp::new(snap, clock);
            let bytes = psc_codec::to_bytes(&stamp).unwrap();
            let back: CausalStamp = psc_codec::from_bytes(&bytes).unwrap();
            prop_assert_eq!(back, stamp);
        }
    }
}
