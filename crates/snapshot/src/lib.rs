#![warn(missing_docs)]

//! # psc-snapshot — consistent cluster snapshots and causal clocks
//!
//! The per-node observability planes (telemetry registry, flight
//! recorders, `Inspect` reports) answer "what is *this* node doing?";
//! this crate supplies the vocabulary for the cluster-level question —
//! "what is the state of the *whole* system right now?" — as a
//! Chandy–Lamport [CL85] consistent global snapshot:
//!
//! - [`causal`] — vector and matrix clocks keyed by raw node id. A
//!   [`CausalStamp`] (snapshot wave id + vector clock) rides in every
//!   wire envelope next to the `TraceId`: the wave id propagates the
//!   snapshot cut even when marker messages are lost or overtaken
//!   (Lai–Yang-style piggybacking, so the protocol stays correct over
//!   the non-FIFO simulated network), and the vector clocks let an
//!   oracle *check* the assembled cut for consistency. The matrix
//!   clock's min-row gives the causal protocol a principled GC bound
//!   for its delivery buffers.
//! - [`capture`] — the cut data model: each participant captures a
//!   [`NodeFrag`] (per-channel protocol state via `ProtoCapture`,
//!   parked obvents, durable-subscription table, its clock) plus the
//!   obvents recorded in flight on each incoming link between its own
//!   capture and that link's marker; the initiator assembles the
//!   fragments into a [`ClusterCut`] whose [`ClusterCut::render`] is
//!   deterministic and byte-stable (sorted, no wall-clock, no
//!   addresses) — the harness compares replays of one seed
//!   byte-for-byte, and `psc-node snapshot` prints the same image for
//!   a live TCP cluster.
//!
//! The crate is deliberately leaf-level (serde + codec + report
//! rendering only): `psc-obvent` stamps envelopes with it, `psc-group`
//! protocols describe themselves through it, and `psc-dace` runs the
//! marker protocol over it.

pub mod capture;
pub mod causal;

pub use capture::{
    ChannelFrag, ClusterCut, InFlightObvent, InFlightRec, MsgRef, NodeFrag, ProtoCapture,
    RetransmitEntry,
};
pub use causal::{CausalStamp, Causality, MatrixClock, VClock};
