//! The cut data model: per-node capture fragments and the assembled
//! cluster cut.
//!
//! Everything here is plain serde data — the marker protocol in
//! `psc-dace` fills it in, ships fragments to the initiator as wire
//! messages, and the initiator assembles them into a [`ClusterCut`].
//! Rendering is deliberately austere: sorted iteration everywhere, no
//! wall-clock, no memory addresses, message ids compressed to per-origin
//! ranges — so two replays of one seed (or two polls of a quiesced live
//! cluster) produce byte-identical reports, and the harness can use the
//! rendering itself as a determinism oracle.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use psc_telemetry::ReportBuilder;

use crate::causal::VClock;

/// A group-layer message identity: `(origin, incarnation epoch, per-origin
/// sequence number)`.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct MsgRef {
    /// Publishing node.
    pub origin: u64,
    /// Publisher incarnation epoch.
    pub epoch: u64,
    /// Per-origin sequence number within the epoch.
    pub seq: u64,
}

impl MsgRef {
    /// Builds a message reference.
    pub fn new(origin: u64, epoch: u64, seq: u64) -> MsgRef {
        MsgRef { origin, epoch, seq }
    }
}

/// One entry of a publisher's retransmission log at capture time: a
/// certified publish not yet acknowledged by every target.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RetransmitEntry {
    /// The logged message.
    pub id: MsgRef,
    /// Members the publish was addressed to.
    pub targets: Vec<u64>,
    /// Targets whose acknowledgement had arrived by capture time.
    pub acked: Vec<u64>,
}

/// What one group-protocol instance looked like at capture time. Every
/// field a protocol does not track stays empty — the oracles only reason
/// over what a protocol claims.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct ProtoCapture {
    /// Protocol name (`certified`, `causal`, …).
    pub proto: String,
    /// This node's incarnation epoch on the channel.
    pub epoch: u64,
    /// Next local publish sequence number (== publishes so far this
    /// epoch).
    pub next_seq: u64,
    /// Exact delivered/deduplication set, where the protocol keeps one.
    pub delivered: Vec<MsgRef>,
    /// Per-origin delivered watermarks `(origin, epoch, count)` for
    /// protocols that track contiguous prefixes instead of id sets.
    pub watermarks: Vec<(u64, u64, u64)>,
    /// Publisher-side retransmission log (certified).
    pub retransmit: Vec<RetransmitEntry>,
    /// Messages parked undeliverable (hold-back / dependency queues).
    pub pending: u64,
    /// Protocol-specific scalars, sorted by key at capture time.
    pub extra: Vec<(String, u64)>,
}

impl ProtoCapture {
    /// An empty capture for `proto` — the default for protocols that
    /// keep no introspectable state.
    pub fn new(proto: &str) -> ProtoCapture {
        ProtoCapture { proto: proto.to_string(), ..ProtoCapture::default() }
    }

    /// Canonicalizes field order so captures compare and render
    /// deterministically regardless of the protocol's internal iteration
    /// order.
    pub fn normalize(&mut self) {
        self.delivered.sort_unstable();
        self.delivered.dedup();
        self.watermarks.sort_unstable();
        self.retransmit.sort_by_key(|e| e.id);
        for entry in &mut self.retransmit {
            entry.targets.sort_unstable();
            entry.acked.sort_unstable();
        }
        self.extra.sort();
    }
}

/// One channel of a node fragment: the protocol capture plus the
/// membership it ran against.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChannelFrag {
    /// Raw kind id of the multicast class.
    pub kind: u64,
    /// Kind name (render key; raw id shown alongside for collisions).
    pub name: String,
    /// Channel membership at capture time.
    pub members: Vec<u64>,
    /// The protocol state.
    pub capture: ProtoCapture,
}

/// One obvent recorded in flight on an incoming link.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize,
)]
pub struct InFlightObvent {
    /// Raw kind id of the channel the obvent belongs to.
    pub channel: u64,
    /// Message identity (trace origin/seq for direct routes, group
    /// origin/epoch/seq for channel data).
    pub id: MsgRef,
}

/// The recording of one incoming link: everything that arrived between
/// this node's capture and the link's marker, i.e. the messages that were
/// in the channel when the cut crossed it.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct InFlightRec {
    /// Sending peer.
    pub from: u64,
    /// Whether the link's marker (or the participant's completion
    /// timeout) closed the recording.
    pub closed: bool,
    /// Recorded obvents, capped by the recorder; sorted at capture.
    pub obvents: Vec<InFlightObvent>,
    /// Messages recorded past the cap or not carrying an obvent identity
    /// (control traffic, protocol internals).
    pub others: u64,
    /// Total payload bytes that crossed the link while recording.
    pub bytes: u64,
}

/// One node's contribution to the cut.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct NodeFrag {
    /// Capturing node.
    pub node: u64,
    /// Snapshot wave id.
    pub snap: u64,
    /// Capture time in node-local microseconds. Diagnostic only —
    /// deliberately **excluded from the rendering** (wall-clock breaks
    /// byte-stability across live runs).
    pub at_us: u64,
    /// Whether this node crash-recovered since the wave began (its
    /// in-memory clock restarted, so clock-based cut checks exempt it).
    pub recovered: bool,
    /// The node's vector clock at capture.
    pub clock: VClock,
    /// Durable subscription ids present in the table.
    pub dursubs: Vec<u64>,
    /// Parked obvents awaiting a durable re-attach, as `(trace origin,
    /// trace seq)` pairs.
    pub parked: Vec<(u64, u64)>,
    /// Per-channel protocol state.
    pub channels: Vec<ChannelFrag>,
    /// Per-incoming-link in-flight recordings.
    pub inflight: Vec<InFlightRec>,
}

impl NodeFrag {
    /// Canonicalizes ordering of every collection for deterministic
    /// comparison and rendering.
    pub fn normalize(&mut self) {
        self.dursubs.sort_unstable();
        self.parked.sort_unstable();
        self.channels.sort_by(|a, b| (&a.name, a.kind).cmp(&(&b.name, b.kind)));
        for channel in &mut self.channels {
            channel.members.sort_unstable();
            channel.capture.normalize();
        }
        self.inflight.sort_by_key(|r| r.from);
        for rec in &mut self.inflight {
            rec.obvents.sort_unstable();
        }
    }

    /// The channel fragment for `kind`, if captured.
    pub fn channel(&self, kind: u64) -> Option<&ChannelFrag> {
        self.channels.iter().find(|c| c.kind == kind)
    }
}

/// The assembled global snapshot: one fragment per cluster member.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClusterCut {
    /// Snapshot wave id.
    pub snap: u64,
    /// Initiating node.
    pub initiator: u64,
    /// Fragments keyed by node id.
    pub frags: BTreeMap<u64, NodeFrag>,
}

/// Renders a sorted id set as compact per-`(origin, epoch)` ranges:
/// `o0e0:1-5,7 o2e1:1-3`.
fn render_msg_refs(ids: &[MsgRef]) -> String {
    let mut out = String::new();
    let mut i = 0;
    while i < ids.len() {
        let (origin, epoch) = (ids[i].origin, ids[i].epoch);
        if !out.is_empty() {
            out.push(' ');
        }
        out.push_str(&format!("o{origin}e{epoch}:"));
        let mut first_in_group = true;
        while i < ids.len() && ids[i].origin == origin && ids[i].epoch == epoch {
            let lo = ids[i].seq;
            let mut hi = lo;
            while i + 1 < ids.len()
                && ids[i + 1].origin == origin
                && ids[i + 1].epoch == epoch
                && ids[i + 1].seq == hi + 1
            {
                hi = ids[i + 1].seq;
                i += 1;
            }
            if !first_in_group {
                out.push(',');
            }
            first_in_group = false;
            if lo == hi {
                out.push_str(&lo.to_string());
            } else {
                out.push_str(&format!("{lo}-{hi}"));
            }
            i += 1;
        }
    }
    out
}

fn render_ids(ids: &[u64]) -> String {
    let strs: Vec<String> = ids.iter().map(|n| format!("n{n}")).collect();
    format!("[{}]", strs.join(" "))
}

impl ClusterCut {
    /// An empty cut for wave `snap` initiated by `initiator`.
    pub fn new(snap: u64, initiator: u64) -> ClusterCut {
        ClusterCut { snap, initiator, frags: BTreeMap::new() }
    }

    /// Adds (or replaces) a fragment, normalizing it first.
    pub fn insert(&mut self, mut frag: NodeFrag) {
        frag.normalize();
        self.frags.insert(frag.node, frag);
    }

    /// True once every node of `cluster` has contributed a fragment.
    pub fn complete(&self, cluster: &[u64]) -> bool {
        cluster.iter().all(|n| self.frags.contains_key(n))
    }

    /// Clock-based cut-consistency findings: for a consistent cut, what
    /// node `i` had observed *about* node `j` at capture can never exceed
    /// what `j` had observed about itself — an excess means an event
    /// crossed the cut backwards. Fragments from crash-recovered nodes
    /// are exempt (their in-memory clocks restarted mid-wave).
    pub fn consistency_violations(&self) -> Vec<String> {
        let mut findings = Vec::new();
        for (i, fi) in &self.frags {
            if fi.recovered {
                continue;
            }
            for (j, fj) in &self.frags {
                if i == j || fj.recovered {
                    continue;
                }
                let observed = fi.clock.get(*j);
                let own = fj.clock.get(*j);
                if observed > own {
                    findings.push(format!(
                        "cut inconsistency: n{i} observed n{j} at {observed} but n{j} \
                         captured itself at {own}"
                    ));
                }
            }
        }
        findings
    }

    /// Total obvents recorded in flight across all fragments.
    pub fn inflight_obvents(&self) -> u64 {
        self.frags
            .values()
            .flat_map(|f| f.inflight.iter())
            .map(|r| r.obvents.len() as u64 + r.others)
            .sum()
    }

    /// Total payload bytes recorded in flight across all fragments.
    pub fn inflight_bytes(&self) -> u64 {
        self.frags.values().flat_map(|f| f.inflight.iter()).map(|r| r.bytes).sum()
    }

    /// The deterministic, byte-stable cluster image.
    pub fn render(&self) -> String {
        let mut report = ReportBuilder::new();
        report.section(format!("cluster snapshot #{}", self.snap));
        report.line(format!("initiator=n{} nodes={}", self.initiator, self.frags.len()));
        for frag in self.frags.values() {
            report.section(format!("node n{}", frag.node));
            report.line(format!(
                "clock={} recovered={}",
                frag.clock,
                u64::from(frag.recovered)
            ));
            if !frag.dursubs.is_empty() {
                let subs: Vec<String> =
                    frag.dursubs.iter().map(|d| format!("{d:#x}")).collect();
                report.line(format!("dursubs=[{}]", subs.join(" ")));
            }
            if !frag.parked.is_empty() {
                let parked: Vec<String> =
                    frag.parked.iter().map(|(o, s)| format!("t{o}:{s}")).collect();
                report.line(format!("parked=[{}]", parked.join(" ")));
            }
            for channel in &frag.channels {
                report.section(format!(
                    "channel {} proto={} members={}",
                    channel.name,
                    channel.capture.proto,
                    render_ids(&channel.members)
                ));
                let c = &channel.capture;
                report.line(format!(
                    "epoch={} next_seq={} pending={}",
                    c.epoch, c.next_seq, c.pending
                ));
                if !c.delivered.is_empty() {
                    report.line(format!("delivered={}", render_msg_refs(&c.delivered)));
                }
                for (origin, epoch, count) in &c.watermarks {
                    report.line(format!("watermark o{origin}e{epoch}={count}"));
                }
                for entry in &c.retransmit {
                    report.line(format!(
                        "retransmit o{}e{}:{} targets={} acked={}",
                        entry.id.origin,
                        entry.id.epoch,
                        entry.id.seq,
                        render_ids(&entry.targets),
                        render_ids(&entry.acked)
                    ));
                }
                for (key, value) in &c.extra {
                    report.line(format!("{key}={value}"));
                }
                report.end();
            }
            for rec in &frag.inflight {
                let ids = if rec.obvents.is_empty() {
                    String::new()
                } else {
                    let ids: Vec<MsgRef> = rec.obvents.iter().map(|o| o.id).collect();
                    format!(" obvents={}", render_msg_refs(&ids))
                };
                report.line(format!(
                    "inflight from=n{} closed={} recorded={} others={} bytes={}{}",
                    rec.from,
                    u64::from(rec.closed),
                    rec.obvents.len(),
                    rec.others,
                    rec.bytes,
                    ids
                ));
            }
            report.end();
        }
        report.end();
        report.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frag(node: u64, clock: &[(u64, u64)], recovered: bool) -> NodeFrag {
        let mut vc = VClock::new();
        for &(n, c) in clock {
            vc.set(n, c);
        }
        NodeFrag { node, snap: 1, clock: vc, recovered, ..NodeFrag::default() }
    }

    #[test]
    fn render_is_sorted_and_stable() {
        let mut cut = ClusterCut::new(1, 0);
        let mut f1 = frag(1, &[(0, 2)], false);
        f1.channels.push(ChannelFrag {
            kind: 9,
            name: "Tick".into(),
            members: vec![2, 0, 1],
            capture: ProtoCapture {
                proto: "certified".into(),
                delivered: vec![
                    MsgRef::new(0, 0, 3),
                    MsgRef::new(0, 0, 1),
                    MsgRef::new(0, 0, 2),
                    MsgRef::new(2, 0, 5),
                ],
                ..ProtoCapture::new("certified")
            },
        });
        f1.at_us = 123_456; // must not appear in the rendering
        cut.insert(f1);
        cut.insert(frag(0, &[(0, 4)], false));
        let text = cut.render();
        assert!(text.contains("cluster snapshot #1"));
        assert!(text.contains("delivered=o0e0:1-3 o2e0:5"), "{text}");
        assert!(text.contains("members=[n0 n1 n2]"), "{text}");
        assert!(!text.contains("123456"), "wall-clock leaked:\n{text}");
        // Node order is id order regardless of insertion order.
        let n0 = text.find("node n0").unwrap();
        let n1 = text.find("node n1").unwrap();
        assert!(n0 < n1);
    }

    #[test]
    fn consistency_check_fires_on_backward_cut() {
        let mut cut = ClusterCut::new(1, 0);
        cut.insert(frag(0, &[(0, 2), (1, 7)], false));
        cut.insert(frag(1, &[(1, 5)], false));
        let findings = cut.consistency_violations();
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(findings[0].contains("n0 observed n1 at 7"), "{findings:?}");

        // The same skew on a recovered node is exempt.
        let mut cut = ClusterCut::new(1, 0);
        cut.insert(frag(0, &[(0, 2), (1, 7)], false));
        cut.insert(frag(1, &[(1, 5)], true));
        assert!(cut.consistency_violations().is_empty());
    }

    #[test]
    fn completion_requires_every_member() {
        let mut cut = ClusterCut::new(3, 0);
        cut.insert(frag(0, &[], false));
        assert!(!cut.complete(&[0, 1]));
        cut.insert(frag(1, &[], false));
        assert!(cut.complete(&[0, 1]));
    }

    #[test]
    fn codec_roundtrip() {
        let mut cut = ClusterCut::new(2, 1);
        let mut f = frag(1, &[(1, 3)], false);
        f.inflight.push(InFlightRec {
            from: 0,
            closed: true,
            obvents: vec![InFlightObvent { channel: 9, id: MsgRef::new(0, 0, 4) }],
            others: 2,
            bytes: 88,
        });
        cut.insert(f);
        let bytes = psc_codec::to_bytes(&cut).unwrap();
        let back: ClusterCut = psc_codec::from_bytes(&bytes).unwrap();
        assert_eq!(back, cut);
        assert_eq!(back.inflight_obvents(), 3);
        assert_eq!(back.inflight_bytes(), 88);
    }
}
