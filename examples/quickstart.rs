//! Quickstart: the paper's running example (§2.3.3), nearly verbatim.
//!
//! A stock market publishes quotes; a broker subscribes to all stock quotes
//! of the Telco group cheaper than 100$, using the two language primitives:
//!
//! ```java
//! Subscription s =
//!   subscribe (StockQuote q) {
//!     return (q.getPrice() < 100 && q.getCompany().indexOf("Telco") != -1);
//!   } {
//!     System.out.print("Got offer: "); System.out.println(q.getPrice());
//!   };
//! s.activate();
//! ...
//! publish q;
//! ```
//!
//! Run with `cargo run --example quickstart`.

use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

use javaps::dace::inproc::Bus;
use javaps::pubsub::{obvent, publish, subscribe};

obvent! {
    /// Paper Fig. 2: the base class of all stock obvents.
    pub class StockObvent {
        company: String,
        price: f64,
        amount: u32,
    }
}

obvent! {
    /// Paper Fig. 2: stock quotes.
    pub class StockQuote extends StockObvent {}
}

fn main() {
    // Two address spaces on the in-process bus: the market and a broker.
    let bus = Bus::new();
    let market = bus.domain(2);
    let broker = bus.domain(2);

    let offers = Arc::new(AtomicU32::new(0));
    let seen = offers.clone();

    // The subscribe primitive: type + deferred filter + handler closure.
    let subscription = subscribe!(broker, (q: StockQuote)
        where { price < 100.0 && company contains "Telco" }
        => {
            println!("Got offer: {}", q.price());
            seen.fetch_add(1, Ordering::SeqCst);
        });
    subscription.activate().expect("activate subscription");

    // The publish primitive.
    publish!(
        market,
        StockQuote::new(StockObvent::new("Telco Mobiles".into(), 80.0, 10))
    )
    .expect("publish");
    publish!(
        market,
        StockQuote::new(StockObvent::new("Telco Mobiles".into(), 150.0, 10))
    )
    .expect("publish");
    publish!(
        market,
        StockQuote::new(StockObvent::new("Banco Verde".into(), 70.0, 5))
    )
    .expect("publish");

    market.drain();
    broker.drain();

    let got = offers.load(Ordering::SeqCst);
    println!("matched {got} of 3 published quotes (expected 1)");
    assert_eq!(got, 1);

    subscription.deactivate().expect("deactivate");
    println!("quickstart OK");
}
