//! The node introspection plane: deterministic state reports of a live
//! cluster (psc-telemetry `Inspect` + the DACE engine).
//!
//! Three nodes share a domain: a publisher of sensor `Measurement`s and two
//! monitoring stations subscribing with the *same* remote content filter
//! (`value > 50`) — so the publisher's factored filter index shares their
//! predicate — plus a FIFO `Command` channel. After the run, every node
//! renders its `Inspect` report: engine counters, transmit/parked queue
//! depths, the subscription table, per-channel protocol and membership, and
//! the filter-DAG sharing statistics.
//!
//! The reports are **deterministic**: the whole scenario runs twice and the
//! renderings must match byte for byte — that is what makes them usable in
//! tests and post-mortems, not just for eyeballing. The stall watchdog is
//! armed (50 ms sweeps) and each node carries a flight recorder, whose tail
//! the example prints alongside the reports.
//!
//! Run with `cargo run --example inspect_cluster`.

use std::sync::Arc;

use javaps::dace::{DaceConfig, DaceNode};
use javaps::filter::rfilter;
use javaps::obvent::builtin::{FifoOrder, Reliable};
use javaps::pubsub::{obvent, FilterSpec};
use javaps::simnet::{Duration, NodeId, SimConfig, SimNet, SimTime};
use javaps::telemetry::{
    FlightRecorder, HealthConfig, HealthMonitor, Registry, Tracer, DEFAULT_FLIGHT_CAPACITY,
};

obvent! {
    /// A sensor reading; stations filter on `value`.
    pub class Measurement implements [Reliable] {
        sensor: String,
        value: i64,
    }
}

obvent! {
    /// An operator command; per-sender ordering matters.
    pub class Command implements [FifoOrder] {
        target: String,
        action: String,
    }
}

/// One full scenario run: returns every node's `Inspect` report plus the
/// tail of station 2's flight recorder.
fn run_cluster() -> (Vec<String>, Vec<String>) {
    let mut sim = SimNet::new(SimConfig::with_seed(42));
    let ids: Vec<NodeId> = (0..3u64).map(NodeId).collect();
    let config = DaceConfig {
        watchdog: Some(Duration::from_millis(50)),
        ..DaceConfig::default()
    };
    let mut recorders = Vec::new();
    for i in 0..3 {
        let registry = Arc::new(Registry::new());
        let tracer = Arc::new(Tracer::default());
        let recorder = Arc::new(FlightRecorder::new(format!("n{i}"), DEFAULT_FLIGHT_CAPACITY));
        let monitor = Arc::new(HealthMonitor::new(
            registry.as_ref().clone(),
            Some(Arc::clone(&recorder)),
            HealthConfig::default(),
        ));
        recorders.push(Arc::clone(&recorder));
        sim.add_node(
            format!("node{i}"),
            DaceNode::factory_observable(
                ids.clone(),
                config.clone(),
                registry,
                tracer,
                Some(recorder),
                Some(monitor),
            ),
        );
    }

    // Both stations use the same predicate: the publisher's factored index
    // shares it (one predicate node, two filter roots).
    DaceNode::drive(&mut sim, ids[1], |domain| {
        let s = domain.subscribe(FilterSpec::remote(rfilter!(value > 50)), |_m: Measurement| {});
        s.activate().unwrap();
        s.detach();
    });
    DaceNode::drive(&mut sim, ids[2], |domain| {
        let s = domain.subscribe(FilterSpec::remote(rfilter!(value > 50)), |_m: Measurement| {});
        s.activate().unwrap();
        s.detach();
        let s2 = domain.subscribe(FilterSpec::accept_all(), |_c: Command| {});
        s2.activate().unwrap();
        s2.detach();
    });
    sim.run_until(SimTime::from_millis(30));

    for value in [10, 80, 99] {
        DaceNode::publish_from(&mut sim, ids[0], Measurement::new("temp".into(), value));
    }
    DaceNode::publish_from(
        &mut sim,
        ids[0],
        Command::new("pump".into(), "restart".into()),
    );
    sim.run_until(SimTime::from_millis(800));

    let reports = ids
        .iter()
        .map(|&id| DaceNode::inspect_of(&mut sim, id).expect("node is up"))
        .collect();
    let tail = recorders[2]
        .last(5)
        .iter()
        .map(|event| event.render())
        .collect();
    (reports, tail)
}

fn main() {
    let (reports, tail) = run_cluster();
    let (reports2, _) = run_cluster();
    assert_eq!(
        reports, reports2,
        "inspect reports must be byte-stable across identical runs"
    );

    for report in &reports {
        println!("{report}");
    }
    println!("flight recorder of station 2 (last {} events):", tail.len());
    for line in &tail {
        println!("  {line}");
    }

    // The reports carry what an operator would ask a node first.
    assert!(reports[0].contains("dace-node n0"));
    assert!(
        reports[0].contains("filters=2"),
        "the publisher's factored index must hold both stations' filters:\n{}",
        reports[0]
    );
    assert!(
        reports[2].contains("subscriptions count=2"),
        "station 2 subscribed twice:\n{}",
        reports[2]
    );
    assert!(
        reports[2].contains("proto=fifo"),
        "the Command channel runs FIFO:\n{}",
        reports[2]
    );
    assert!(
        reports.iter().all(|r| r.contains("queues")),
        "every report exposes its queue depths"
    );
    assert!(!tail.is_empty(), "the flight recorder must have narrated the run");

    println!("\ninspect_cluster OK");
}
