//! Two DACE endpoints over real loopback TCP (psc-net).
//!
//! This is the smallest end-to-end deployment of the socket transport:
//! two `NetTransport` endpoints on ephemeral loopback ports, hosting the
//! exact same `DaceNode` cores the simulator drives, exchanging a
//! **Certified**-QoS obvent. The assertion is the harness routing
//! oracle's, applied by hand: the subscriber receives exactly the
//! publications whose class it subscribed to and whose content passes its
//! filter — each exactly once — and the publisher's `net.*` counters show
//! the frames crossing a real wire (serialize-once intact: the fan-out
//! clones `WireBytes` handles, not payloads).
//!
//! Run with `cargo run --example real_wire_cluster`.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration as StdDuration, Instant};

use javaps::dace::DaceConfig;
use javaps::filter::rfilter;
use javaps::net::{DaceEndpoint, NetConfig};
use javaps::obvent::builtin::Certified;
use javaps::pubsub::{obvent, FilterSpec};
use javaps::simnet::NodeId;

obvent! {
    /// A payment instruction: exactly the kind of obvent the paper gives
    /// Certified QoS (stable-storage handoff, exactly-once).
    pub class Payment implements [Certified] {
        tag: u64,
        amount: i64,
    }
}

fn main() {
    // Bind both endpoints on ephemeral ports first, then exchange
    // addresses — the two-phase form tests the same `add_peer` path a
    // static `--cluster` map uses.
    let cluster = vec![NodeId(0), NodeId(1)];
    let a = DaceEndpoint::start(
        NetConfig::new(NodeId(0), "127.0.0.1:0"),
        cluster.clone(),
        DaceConfig::default(),
    )
    .expect("bind endpoint a");
    let b = DaceEndpoint::start(
        NetConfig::new(NodeId(1), "127.0.0.1:0"),
        cluster,
        DaceConfig::default(),
    )
    .expect("bind endpoint b");
    a.transport().add_peer(NodeId(1), &b.local_addr().to_string());
    b.transport().add_peer(NodeId(0), &a.local_addr().to_string());
    assert!(a.wait_connected(StdDuration::from_secs(5)), "a could not dial b");
    assert!(b.wait_connected(StdDuration::from_secs(5)), "b could not dial a");
    println!("endpoints up: n0 on {}, n1 on {}", a.local_addr(), b.local_addr());

    // Node 1 subscribes to large payments only.
    let delivered = Arc::new(AtomicU64::new(0));
    let tags: Arc<Mutex<Vec<u64>>> = Arc::new(Mutex::new(Vec::new()));
    {
        let delivered = Arc::clone(&delivered);
        let tags = Arc::clone(&tags);
        b.with_domain(move |domain| {
            let sub = domain.subscribe(
                FilterSpec::remote(rfilter!(amount > 100)),
                move |payment: Payment| {
                    delivered.fetch_add(1, Ordering::SeqCst);
                    tags.lock().unwrap().push(*payment.tag());
                },
            );
            sub.activate().expect("activate");
            sub.detach();
        });
    }

    // Let the subscription announcement reach node 0.
    std::thread::sleep(StdDuration::from_millis(400));

    // Publish from node 0: tags 0..6, amounts 60·tag. The oracle expects
    // exactly the ones with amount > 100 — tags 2..6 — delivered once each.
    for tag in 0..6u64 {
        let amount = 60 * tag as i64;
        a.with_domain(move |domain| {
            domain.publish(Payment::new(tag, amount)).expect("publish");
        });
    }
    let expected: Vec<u64> = (0..6u64).filter(|t| 60 * *t as i64 > 100).collect();

    // Certified delivery over loopback settles quickly; poll rather than
    // guess a sleep.
    let deadline = Instant::now() + StdDuration::from_secs(10);
    while (delivered.load(Ordering::SeqCst) as usize) < expected.len()
        && Instant::now() < deadline
    {
        std::thread::sleep(StdDuration::from_millis(20));
    }
    std::thread::sleep(StdDuration::from_millis(200)); // catch any duplicates

    let mut got = tags.lock().unwrap().clone();
    got.sort_unstable();
    assert_eq!(
        got, expected,
        "routing oracle violated: certified delivery must be exactly-once"
    );
    println!("subscriber got tags {got:?} — exactly the filtered set, once each");

    let snapshot = a.metrics();
    assert!(snapshot.counter("net.msgs_sent") > 0, "publisher wrote no frames");
    println!(
        "publisher wire stats: msgs_sent={} bytes_sent={} reconnects={}",
        snapshot.counter("net.msgs_sent"),
        snapshot.counter("net.bytes_sent"),
        snapshot.counter("net.peer.reconnects"),
    );
    a.shutdown();
    b.shutdown();
    println!("real_wire_cluster: ok");
}
