//! Fig. 8 — "RMI and publish/subscribe, hand in hand".
//!
//! Quotes are disseminated by publish/subscribe (scales to many brokers),
//! while *purchasing* uses a synchronous remote invocation on a
//! `StockMarket` remote object whose reference travels **inside the
//! obvents**: "a combination of both represents a very powerful tool for
//! devising distributed applications, e.g., by passing object references
//! with obvents" (§5.4).
//!
//! Run with `cargo run --example stock_trading`.

use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::{Arc, Mutex};

use javaps::dace::inproc::Bus;
use javaps::pubsub::{obvent, publish, subscribe};
use javaps::rmi::{remote_iface, DgcMode, RmiError, RmiNetwork, RmiRuntime, RemoteRefData};

remote_iface! {
    /// The remotely invocable market (Fig. 8's `StockMarket extends Remote`).
    pub trait StockMarket {
        fn buy(&self, company: String, price: f64, amount: u32, buyer: String) -> bool;
    }
}

obvent! {
    /// A quote carrying the reference of the market that issued it.
    pub class StockQuote {
        company: String,
        price: f64,
        amount: u32,
        market_node: u64,
        market_object: u64,
    }
}

/// The market's server-side implementation.
struct Market {
    sales: AtomicU32,
}

impl StockMarket for Market {
    fn buy(
        &self,
        company: String,
        price: f64,
        amount: u32,
        buyer: String,
    ) -> Result<bool, RmiError> {
        println!("market: {buyer} buys {amount} x {company} at {price}");
        self.sales.fetch_add(1, Ordering::SeqCst);
        Ok(true)
    }
}

fn broker(
    name: &str,
    bus: &Bus,
    rmi: RmiRuntime,
    max_price: f64,
    purchases: Arc<Mutex<Vec<String>>>,
) -> (javaps::pubsub::Domain, javaps::pubsub::Subscription) {
    let domain = bus.domain(2);
    let buyer = name.to_string();
    // NOTE: the filter constant must be a literal for the rfilter! grammar;
    // brokers with distinct thresholds use the typed DSL instead.
    let schema = StockQuote::schema();
    let filter = (schema.price().lt(max_price) & schema.company().contains("Telco")).into_filter();
    let sub = domain.subscribe(
        javaps::pubsub::FilterSpec::remote(filter),
        move |q: StockQuote| {
            // Synchronous leg: invoke the market carried by the obvent.
            let market_ref = RemoteRefData {
                node: *q.market_node(),
                object: *q.market_object(),
            };
            let stub = StockMarketStub::attach(&rmi, market_ref).expect("attach market");
            let bought = stub
                .buy(q.company().clone(), *q.price(), *q.amount(), buyer.clone())
                .expect("remote buy");
            if bought {
                purchases
                    .lock()
                    .unwrap()
                    .push(format!("{}@{}", q.company(), q.price()));
            }
        },
    );
    sub.activate().expect("activate");
    (domain, sub)
}

fn main() {
    // Pub/sub fabric and RMI fabric side by side (nodes: 0=market, 1..=2 brokers).
    let bus = Bus::new();
    let rmi_net = RmiNetwork::new(3, DgcMode::Leases { ttl_ms: 60_000 });
    let rts = rmi_net.runtimes();

    // Export the market and keep it alive via the registry.
    let market_impl = Arc::new(Market {
        sales: AtomicU32::new(0),
    });
    let market_ref = StockMarketStub::export(&rts[0], market_impl.clone());
    rts[0].bind("markets/main", market_ref);

    let market_domain = bus.domain(2);

    let cheap_purchases = Arc::new(Mutex::new(Vec::new()));
    let any_purchases = Arc::new(Mutex::new(Vec::new()));
    let (_d1, _s1) = broker("alice", &bus, rts[1].clone(), 100.0, cheap_purchases.clone());
    let (_d2, _s2) = broker("bob", &bus, rts[2].clone(), 1_000.0, any_purchases.clone());

    // A third party that just watches the tape (pure pub/sub leg).
    let watcher = bus.domain(2);
    let ticks = Arc::new(AtomicU32::new(0));
    let tick_count = ticks.clone();
    let watch = subscribe!(watcher, (q: StockQuote) => {
        let _ = q.company();
        tick_count.fetch_add(1, Ordering::SeqCst);
    });
    watch.activate().expect("activate watcher");

    // The market publishes its quotes, each carrying its own reference.
    for (company, price) in [
        ("Telco Mobiles", 80.0),
        ("Telco Mobiles", 130.0),
        ("Banco Verde", 70.0),
    ] {
        publish!(
            market_domain,
            StockQuote::new(
                company.into(),
                price,
                10,
                market_ref.node,
                market_ref.object
            )
        )
        .expect("publish quote");
    }

    for domain in [&market_domain, &watcher] {
        domain.drain();
    }
    // Brokers buy from inside handlers on pool threads; wait for them.
    for _ in 0..200 {
        if market_impl.sales.load(Ordering::SeqCst) >= 3 {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(5));
    }

    println!("watcher saw {} quotes", ticks.load(Ordering::SeqCst));
    println!("alice bought: {:?}", cheap_purchases.lock().unwrap());
    println!("bob bought:   {:?}", any_purchases.lock().unwrap());

    assert_eq!(ticks.load(Ordering::SeqCst), 3);
    // alice: only the cheap Telco quote; bob: both Telco quotes.
    assert_eq!(cheap_purchases.lock().unwrap().len(), 1);
    assert_eq!(any_purchases.lock().unwrap().len(), 2);
    assert_eq!(market_impl.sales.load(Ordering::SeqCst), 3);
    println!("stock_trading OK");
}
