//! Transmission semantics under full observability (§3.1.2 + psc-telemetry).
//!
//! A sensor node feeds a monitoring station over a slow link:
//!
//! - routine readings are `Timely` — stale data is worthless, so backlogged
//!   readings expire in transit;
//! - alarms are `Prioritary` — they overtake queued readings;
//! - audit records are `Certified` — they must survive the station
//!   crashing and recovering.
//!
//! The whole run records into one `psc-telemetry` registry and tracer:
//! at the end the example prints the live metric snapshot (stack-wide
//! counters, including the codec's global-registry instrumentation) and
//! replays the causal hop-by-hop path of the alarm's wire-carried trace id.
//!
//! Run with `cargo run --example qos_telemetry`.

use std::sync::{Arc, Mutex};

use javaps::dace::{DaceConfig, DaceNode};
use javaps::obvent::builtin::{Certified, Prioritary, Timely};
use javaps::pubsub::{obvent, FilterSpec};
use javaps::simnet::{Duration, NodeId, SimConfig, SimNet, SimTime};
use javaps::telemetry::{Registry, TraceStage, Tracer};

obvent! {
    /// Routine reading: expires after `ttl_ms` in transit.
    pub class Reading implements [Timely] {
        sensor: String,
        value: f64,
        ttl_ms: u64,
        birth_ms: u64,
    }
}

obvent! {
    /// Alarm: jumps the transmit queue.
    pub class Alarm implements [Prioritary] {
        sensor: String,
        message: String,
        priority: i32,
    }
}

obvent! {
    /// Audit record: certified delivery across crashes.
    pub class AuditRecord implements [Certified] {
        seq: u64,
        entry: String,
    }
}

fn main() {
    // Opt the process-global registry in: the codec's encode/decode
    // counters start accumulating from here on.
    javaps::telemetry::set_global_enabled(true);

    // One registry and one tracer for the whole deployment — both nodes
    // record into them, so a single snapshot covers the full run and a
    // trace id can be followed across the sensor→station hop.
    let telemetry = Arc::new(Registry::new());
    let tracer = Arc::new(Tracer::default());

    // 10 ms serialization delay per message: a very slow uplink.
    let config = DaceConfig {
        transmit_interval: Duration::from_millis(10),
        ..DaceConfig::default()
    };
    let mut sim = SimNet::new(SimConfig::with_seed(7));
    let ids: Vec<NodeId> = vec![NodeId(0), NodeId(1)];
    for name in ["sensor", "station"] {
        sim.add_node(
            name,
            DaceNode::factory_with_telemetry(
                ids.clone(),
                config.clone(),
                Arc::clone(&telemetry),
                Arc::clone(&tracer),
            ),
        );
    }
    let (sensor, station) = (ids[0], ids[1]);

    let readings: Arc<Mutex<Vec<f64>>> = Arc::new(Mutex::new(Vec::new()));
    let arrivals: Arc<Mutex<Vec<String>>> = Arc::new(Mutex::new(Vec::new()));
    let audits: Arc<Mutex<Vec<u64>>> = Arc::new(Mutex::new(Vec::new()));
    let (r, a, au) = (readings.clone(), arrivals.clone(), audits.clone());
    let a2 = arrivals.clone();
    DaceNode::drive(&mut sim, station, move |domain| {
        let s1 = domain.subscribe(FilterSpec::accept_all(), move |x: Reading| {
            r.lock().unwrap().push(*x.value());
            a.lock().unwrap().push(format!("reading {}", x.value()));
        });
        s1.activate().unwrap();
        s1.detach();
        let s2 = domain.subscribe(FilterSpec::accept_all(), move |x: Alarm| {
            a2.lock().unwrap().push(format!("ALARM {}", x.message()));
        });
        s2.activate().unwrap();
        s2.detach();
        let s3 = domain.subscribe(FilterSpec::accept_all(), move |x: AuditRecord| {
            au.lock().unwrap().push(*x.seq());
        });
        s3.activate_with_id(1).unwrap();
        s3.detach();
    });
    sim.run_until(SimTime::from_millis(10));

    // Burst of readings (25 ms TTL over a 10 ms/message link: the tail
    // expires), then an alarm published last but needed first.
    DaceNode::drive(&mut sim, sensor, |domain| {
        for i in 0..5u64 {
            domain
                .publish(Reading::new("temp".into(), 20.0 + i as f64, 25, 0))
                .unwrap();
        }
        domain
            .publish(Alarm::new("temp".into(), "overheat".into(), 100))
            .unwrap();
    });
    // The alarm was the sensor's most recent publish: capture its
    // wire-carried trace id before anything else is published.
    let alarm_trace = DaceNode::last_trace_of(&mut sim, sensor);
    assert!(!alarm_trace.is_none(), "the publish must have minted a trace id");
    sim.run_until(SimTime::from_millis(400));

    let order = arrivals.lock().unwrap().clone();
    println!("arrival order at the station: {order:?}");
    assert!(
        order.first().is_some_and(|first| first.starts_with("ALARM")),
        "the prioritary alarm must arrive first"
    );
    let delivered_readings = readings.lock().unwrap().len();
    let sensor_stats = DaceNode::stats_of(&mut sim, sensor);
    println!(
        "readings delivered: {delivered_readings}/5, expired in transit: {}",
        sensor_stats.expired
    );
    assert!(delivered_readings < 5, "some readings must expire");
    assert_eq!(sensor_stats.expired as usize, 5 - delivered_readings);

    // One traced publish path: every hop of the alarm, across both nodes,
    // in virtual-time order — publish at the sensor, filter evaluation,
    // transmit-queue entry, arrival and handler dispatch at the station.
    println!("\ntrace of the alarm ({alarm_trace}):");
    let path = tracer.events_for(alarm_trace);
    print!("{}", tracer.render_path(alarm_trace));
    assert!(
        path.iter().any(|e| e.stage == TraceStage::Publish),
        "trace must start at the publish hop"
    );
    assert!(
        path.iter().any(|e| e.stage == TraceStage::Deliver),
        "trace must reach the station's handler dispatch"
    );

    // Audit records survive a station crash.
    DaceNode::drive(&mut sim, sensor, |domain| {
        domain.publish(AuditRecord::new(1, "calibration".into())).unwrap();
    });
    sim.run_until(sim.now() + Duration::from_millis(100));
    sim.crash(station);
    DaceNode::drive(&mut sim, sensor, |domain| {
        domain
            .publish(AuditRecord::new(2, "fault detected".into()))
            .unwrap();
    });
    sim.run_until(sim.now() + Duration::from_millis(200));
    sim.recover(station);
    let audits_after: Arc<Mutex<Vec<u64>>> = Arc::new(Mutex::new(Vec::new()));
    let au2 = audits_after.clone();
    DaceNode::drive(&mut sim, station, move |domain| {
        let s = domain.subscribe(FilterSpec::accept_all(), move |x: AuditRecord| {
            au2.lock().unwrap().push(*x.seq());
        });
        s.activate_with_id(1).unwrap();
        s.detach();
    });
    sim.run_until(sim.now() + Duration::from_secs(2));

    println!(
        "\naudit records before crash: {:?}, recovered after crash: {:?}",
        audits.lock().unwrap(),
        audits_after.lock().unwrap()
    );
    assert_eq!(*audits.lock().unwrap(), vec![1]);
    assert_eq!(
        *audits_after.lock().unwrap(),
        vec![2],
        "the certified record published during the crash must arrive"
    );

    // Live metric snapshot: the registry survived the station's crash (it
    // models an external collector), so the counters cover the whole run.
    let snapshot = telemetry.snapshot();
    println!("\nstack metrics (registry snapshot):");
    print!("{}", snapshot.render_text());
    assert_eq!(snapshot.counter("dace.published"), 8, "5 readings + 1 alarm + 2 audits");
    assert_eq!(snapshot.counter("dace.channel.qos_telemetry::Alarm.published"), 1);
    assert!(snapshot.counter("dace.expired") >= 1, "some readings expired");
    assert!(
        snapshot.counter("group.certified.retransmits") > 0,
        "the audit published into the crash must have been retransmitted"
    );

    // The codec's counters live in the process-global registry.
    let global = javaps::telemetry::global().snapshot();
    println!(
        "codec: {} encodes / {} bytes, {} decodes / {} bytes",
        global.counter("codec.encodes"),
        global.counter("codec.encode_bytes"),
        global.counter("codec.decodes"),
        global.counter("codec.decode_bytes"),
    );
    assert!(global.counter("codec.encodes") > 0);

    println!("\nqos_telemetry OK");
}
