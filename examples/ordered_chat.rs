//! Composable event semantics in action (§3.1.2): a chat room where the
//! message class decides its own delivery guarantees by subtyping QoS
//! markers — unordered chatter vs. totally ordered moderated messages.
//!
//! Three simulated participants publish concurrently. With plain obvents
//! their logs may diverge; with `TotalOrder` obvents every participant
//! sees the identical sequence (the paper's subscriber-side order).
//!
//! Run with `cargo run --example ordered_chat`.

use std::sync::{Arc, Mutex};

use javaps::dace::{DaceConfig, DaceNode};
use javaps::obvent::builtin::TotalOrder;
use javaps::pubsub::{obvent, FilterSpec};
use javaps::simnet::{NodeId, SimConfig, SimNet, SimTime};

obvent! {
    /// Fire-and-forget chatter (default: unreliable, unordered).
    pub class Chat {
        author: String,
        text: String,
    }
}

obvent! {
    /// Moderated messages: all participants must agree on the order.
    pub class ModeratedChat implements [TotalOrder] {
        author: String,
        text: String,
    }
}

type Log = Arc<Mutex<Vec<String>>>;

fn subscribe_logs(sim: &mut SimNet, ids: &[NodeId]) -> (Vec<Log>, Vec<Log>) {
    let mut plain_logs = Vec::new();
    let mut moderated_logs = Vec::new();
    for &id in ids {
        let plain: Log = Arc::new(Mutex::new(Vec::new()));
        let moderated: Log = Arc::new(Mutex::new(Vec::new()));
        let (p, m) = (plain.clone(), moderated.clone());
        DaceNode::drive(sim, id, move |domain| {
            let s1 = domain.subscribe(FilterSpec::accept_all(), move |c: Chat| {
                p.lock().unwrap().push(format!("{}: {}", c.author(), c.text()));
            });
            s1.activate().unwrap();
            s1.detach();
            let s2 = domain.subscribe(FilterSpec::accept_all(), move |c: ModeratedChat| {
                m.lock().unwrap().push(format!("{}: {}", c.author(), c.text()));
            });
            s2.activate().unwrap();
            s2.detach();
        });
        plain_logs.push(plain);
        moderated_logs.push(moderated);
    }
    (plain_logs, moderated_logs)
}

fn main() {
    let mut sim = SimNet::new(SimConfig::with_seed(2026));
    let ids: Vec<NodeId> = (0..3u64).map(NodeId).collect();
    for i in 0..3 {
        sim.add_node(
            format!("user{i}"),
            DaceNode::factory(ids.clone(), DaceConfig::default()),
        );
    }
    let (plain_logs, moderated_logs) = subscribe_logs(&mut sim, &ids);
    sim.run_until(SimTime::from_millis(10));

    // Everyone talks at once, on both channels.
    let users = ["ada", "bob", "cyd"];
    for round in 0..4 {
        for (i, &id) in ids.iter().enumerate() {
            let author = users[i].to_string();
            let text = format!("msg {round}");
            DaceNode::publish_from(&mut sim, id, Chat::new(author.clone(), text.clone()));
            DaceNode::publish_from(&mut sim, id, ModeratedChat::new(author, text));
        }
    }
    sim.run_until(SimTime::from_secs(3));

    println!("-- plain chat (no ordering guarantee) --");
    for (user, log) in users.iter().zip(&plain_logs) {
        println!("{user} saw {} messages", log.lock().unwrap().len());
    }

    println!("-- moderated chat (TotalOrder) --");
    let reference = moderated_logs[0].lock().unwrap().clone();
    for (user, log) in users.iter().zip(&moderated_logs) {
        let log = log.lock().unwrap().clone();
        assert_eq!(log.len(), 12, "{user} missed moderated messages");
        assert_eq!(log, reference, "{user} diverged from the total order");
        println!("{user} saw the agreed sequence of {} messages", log.len());
    }
    println!("first three in the agreed order: {:?}", &reference[..3]);
    println!("ordered_chat OK");
}
