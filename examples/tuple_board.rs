//! Pub/sub's spiritual ancestor at work (§5.5.2, §6.3): a job board on a
//! tuple space — `out`/`in` coordination plus a JavaSpaces-style reaction
//! playing the role of a subscription.
//!
//! Contrast with `quickstart`: the space *couples flow* (workers pull
//! synchronously) and consumes tuples (an `in` removes the job for
//! everyone), whereas publish/subscribe notifies every subscriber
//! asynchronously with its own copy.
//!
//! Run with `cargo run --example tuple_board`.

use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;
use std::time::Duration;

use javaps::tuplespace::{template, tuple, TupleSpace, Value};

fn main() {
    let board = TupleSpace::new();

    // A "subscription": the auditor reacts to every posted job without
    // consuming it.
    let audited = Arc::new(AtomicU32::new(0));
    let audit_count = audited.clone();
    let _audit = board.react(template![= "job", str, int], move |job| {
        println!(
            "audit: job {} posted (difficulty {})",
            job.get(1).unwrap(),
            job.get(2).unwrap()
        );
        audit_count.fetch_add(1, Ordering::SeqCst);
    });

    // Three workers compete for jobs with a destructive `in`.
    let done = Arc::new(AtomicU32::new(0));
    let workers: Vec<_> = (0..3)
        .map(|w| {
            let board = board.clone();
            let done = done.clone();
            std::thread::spawn(move || {
                let mut mine = 0;
                while let Some(job) =
                    board.take_wait(&template![= "job", str, int], Duration::from_millis(300))
                {
                    let name = job
                        .get(1)
                        .and_then(Value::as_str)
                        .map(str::to_string)
                        .unwrap_or_default();
                    println!("worker {w}: doing {name}");
                    board.out(tuple!["result", w as i64, name]);
                    done.fetch_add(1, Ordering::SeqCst);
                    mine += 1;
                }
                mine
            })
        })
        .collect();

    // The foreman posts jobs.
    for (i, name) in ["index", "compress", "verify", "upload", "report", "archive"]
        .iter()
        .enumerate()
    {
        board.out(tuple!["job", *name, i as i64]);
    }

    let per_worker: Vec<i32> = workers.into_iter().map(|w| w.join().unwrap()).collect();
    println!("jobs per worker: {per_worker:?}");

    // Every job was audited (reaction), done exactly once (in), and left a
    // result tuple (out).
    assert_eq!(audited.load(Ordering::SeqCst), 6);
    assert_eq!(done.load(Ordering::SeqCst), 6);
    assert_eq!(per_worker.iter().sum::<i32>(), 6);
    let mut results = 0;
    while board.take(&template![= "result", int, str]).is_some() {
        results += 1;
    }
    assert_eq!(results, 6);
    println!("tuple_board OK");
}
