//! Vendored stand-in for the `parking_lot` crate.
//!
//! The container this repository builds in has no network access and no
//! crates.io cache, so the real `parking_lot` cannot be fetched. This crate
//! reimplements the (small) subset of its API the workspace uses on top of
//! `std::sync`: panic-free `lock()`/`read()`/`write()` that ignore
//! poisoning, and a `Condvar` whose `wait`/`wait_until` take `&mut guard`
//! instead of consuming it.

use std::ops::{Deref, DerefMut};
use std::sync::{self, PoisonError};
use std::time::{Duration, Instant};

/// Mutual exclusion primitive; `lock()` never returns a poison error.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

/// RAII guard for [`Mutex`].
pub struct MutexGuard<'a, T: ?Sized>(Option<sync::MutexGuard<'a, T>>);

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available. Poisoning is ignored.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(Some(self.0.lock().unwrap_or_else(PoisonError::into_inner)))
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(MutexGuard(Some(g))),
            Err(sync::TryLockError::Poisoned(p)) => Some(MutexGuard(Some(p.into_inner()))),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.0.as_ref().expect("guard present")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.0.as_mut().expect("guard present")
    }
}

/// Reader–writer lock; `read()`/`write()` never return poison errors.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

/// Shared read guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized>(sync::RwLockReadGuard<'a, T>);
/// Exclusive write guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized>(sync::RwLockWriteGuard<'a, T>);

impl<T> RwLock<T> {
    /// Creates a new reader–writer lock.
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard(self.0.read().unwrap_or_else(PoisonError::into_inner))
    }

    /// Acquires an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard(self.0.write().unwrap_or_else(PoisonError::into_inner))
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

/// Result of a timed wait on a [`Condvar`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// True when the wait returned because the timeout elapsed.
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// Condition variable working on [`MutexGuard`]s held by reference.
#[derive(Debug, Default)]
pub struct Condvar(sync::Condvar);

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Self {
        Condvar(sync::Condvar::new())
    }

    /// Blocks until notified; the guard is atomically released while
    /// waiting and re-acquired before returning.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.0.take().expect("guard present");
        let inner = self.0.wait(inner).unwrap_or_else(PoisonError::into_inner);
        guard.0 = Some(inner);
    }

    /// Blocks until notified or `timeout` elapses.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let inner = guard.0.take().expect("guard present");
        let (inner, result) = self
            .0
            .wait_timeout(inner, timeout)
            .unwrap_or_else(PoisonError::into_inner);
        guard.0 = Some(inner);
        WaitTimeoutResult(result.timed_out())
    }

    /// Blocks until notified or the absolute `deadline` passes.
    pub fn wait_until<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        deadline: Instant,
    ) -> WaitTimeoutResult {
        let now = Instant::now();
        let timeout = deadline.saturating_duration_since(now);
        if timeout.is_zero() {
            return WaitTimeoutResult(true);
        }
        self.wait_for(guard, timeout)
    }

    /// Wakes one blocked waiter.
    pub fn notify_one(&self) -> bool {
        self.0.notify_one();
        true
    }

    /// Wakes all blocked waiters.
    pub fn notify_all(&self) -> usize {
        self.0.notify_all();
        0
    }
}
