//! Vendored stand-in for the `rand` crate (0.8 API subset).
//!
//! The build container has no crates.io access, so this crate reimplements
//! exactly the surface the workspace uses: [`RngCore`], [`SeedableRng`],
//! the extension trait [`Rng`] (`gen`, `gen_range`, `gen_bool`),
//! [`rngs::StdRng`], and [`seq::SliceRandom`]. The generator is
//! xoshiro256** seeded through SplitMix64 — deterministic for a given seed,
//! which is all the simulator requires (the stream differs from upstream
//! `StdRng`, which is fine: nothing in the repo pins the upstream stream).

/// The core of a random number generator: raw integer output.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rest = chunks.into_remainder();
        if !rest.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rest.copy_from_slice(&bytes[..rest.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> RngCore for Box<R> {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A generator constructible from a seed.
pub trait SeedableRng: Sized {
    /// The seed type (a byte array for [`rngs::StdRng`]).
    type Seed: Default + AsMut<[u8]>;

    /// Builds the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a `u64`, expanding it with SplitMix64.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64(state);
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = sm.next().to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }
}

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256**.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        #[inline]
        fn rotl(x: u64, k: u32) -> u64 {
            x.rotate_left(k)
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let result = Self::rotl(self.s[1].wrapping_mul(5), 7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = Self::rotl(self.s[3], 45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().expect("8 bytes"));
            }
            // An all-zero state is a fixed point of xoshiro; nudge it.
            if s == [0; 4] {
                s = [0x9E3779B97F4A7C15, 0x6A09E667F3BCC909, 1, 2];
            }
            StdRng { s }
        }
    }
}

/// A range usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Samples a value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    // Modulo bias is ~span/2^64: irrelevant for simulation workloads, and
    // keeping the mapping simple keeps replay streams easy to reason about.
    if span == 0 {
        rng.next_u64()
    } else {
        rng.next_u64() % span
    }
}

macro_rules! impl_int_range {
    ($($ty:ty),*) => {$(
        impl SampleRange<$ty> for std::ops::Range<$ty> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + uniform_u64(rng, span) as i128) as $ty
            }
        }
        impl SampleRange<$ty> for std::ops::RangeInclusive<$ty> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128 + 1) as u64; // 0 means the full u64 range
                (lo as i128 + uniform_u64(rng, span) as i128) as $ty
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range {
    ($($ty:ty),*) => {$(
        impl SampleRange<$ty> for std::ops::Range<$ty> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                assert!(self.start < self.end, "gen_range: empty range");
                let unit = (rng.next_u64() >> 11) as $ty / (1u64 << 53) as $ty;
                self.start + unit * (self.end - self.start)
            }
        }
        impl SampleRange<$ty> for std::ops::RangeInclusive<$ty> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let unit = (rng.next_u64() >> 11) as $ty / ((1u64 << 53) - 1) as $ty;
                lo + unit * (hi - lo)
            }
        }
    )*};
}

impl_float_range!(f32, f64);

/// Types generatable by [`Rng::gen`] (the `Standard` distribution).
pub trait Standard: Sized {
    /// Generates a uniform value.
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($ty:ty),*) => {$(
        impl Standard for $ty {
            fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $ty
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}
impl Standard for f64 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}
impl Standard for f32 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 / (1u32 << 24) as f32
    }
}

/// Convenience methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform value from `range` (half-open or inclusive).
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// True with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }

    /// A uniform value of `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::standard(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Slice helpers mirroring `rand::seq`.
pub mod seq {
    use super::{Rng, RngCore};

    /// Random-order and random-choice operations on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly random element, `None` when empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get(rng.gen_range(0..self.len()))
            }
        }
    }
}
