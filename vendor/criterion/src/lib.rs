//! Vendored stand-in for the `criterion` crate.
//!
//! Supports the API the workspace's benches use — `criterion_group!` /
//! `criterion_main!`, `Criterion::benchmark_group`, `bench_function`,
//! `bench_with_input`, `BenchmarkId`, `Throughput`, `black_box`, and the
//! `Bencher::iter*` family — with a simple calibrated wall-clock measurement
//! instead of criterion's statistical machinery. Good enough to keep the
//! benches compiling and producing comparable numbers offline.

use std::fmt;
use std::time::{Duration, Instant};

/// Prevents the optimizer from eliding a computed value.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Throughput annotation for a benchmark group (recorded, echoed in output).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A parameterized benchmark identifier, e.g. `BenchmarkId::new("fanout", 64)`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// Creates an id from a function name and a displayable parameter.
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            name: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Creates an id from a parameter only.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            name: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name)
    }
}

/// Batch-size hint for [`Bencher::iter_batched`]; only a tag here.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One batch per iteration.
    PerIteration,
}

/// Per-benchmark measurement driver passed to the closure.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` over the calibrated iteration count.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Times `routine` over fresh inputs built by `setup` (setup excluded
    /// from the measurement).
    pub fn iter_batched<I, O, S: FnMut() -> I, R: FnMut(I) -> O>(
        &mut self,
        mut setup: S,
        mut routine: R,
        _size: BatchSize,
    ) {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }
}

/// Entry point mirroring `criterion::Criterion`.
pub struct Criterion {
    _private: (),
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { _private: () }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            throughput: None,
            _sample_size: 10,
            _marker: std::marker::PhantomData,
        }
    }

    /// Runs a standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        run_one("", id, None, f);
        self
    }
}

/// A group of benchmarks sharing a name prefix and throughput annotation.
pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    _sample_size: usize,
    _marker: std::marker::PhantomData<&'a ()>,
}

impl BenchmarkGroup<'_> {
    /// Sets the sample size (recorded only; the stand-in self-calibrates).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self._sample_size = n;
        self
    }

    /// Sets measurement time (accepted for API compatibility).
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Annotates per-iteration throughput.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl fmt::Display,
        f: F,
    ) -> &mut Self {
        run_one(&self.name, &id.to_string(), self.throughput, f);
        self
    }

    /// Runs one benchmark taking a borrowed input.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl fmt::Display,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        run_one(&self.name, &id.to_string(), self.throughput, |b| f(b, input));
        self
    }

    /// Ends the group (no-op; output is printed per benchmark).
    pub fn finish(&mut self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(group: &str, id: &str, throughput: Option<Throughput>, mut f: F) {
    // Calibrate: grow the iteration count until the routine runs >= 20ms.
    let mut iters: u64 = 1;
    let mut bencher = Bencher {
        iters,
        elapsed: Duration::ZERO,
    };
    loop {
        bencher.iters = iters;
        f(&mut bencher);
        if bencher.elapsed >= Duration::from_millis(20) || iters >= (1 << 24) {
            break;
        }
        iters = iters.saturating_mul(4).max(4);
    }
    let per_iter = if bencher.iters == 0 {
        Duration::ZERO
    } else {
        bencher.elapsed / bencher.iters as u32
    };
    let label = if group.is_empty() {
        id.to_string()
    } else {
        format!("{group}/{id}")
    };
    match throughput {
        Some(Throughput::Elements(n)) if per_iter > Duration::ZERO => {
            let rate = n as f64 / per_iter.as_secs_f64();
            println!("{label:<48} {per_iter:>12.2?}/iter  {rate:>14.0} elem/s");
        }
        Some(Throughput::Bytes(n)) if per_iter > Duration::ZERO => {
            let rate = n as f64 / per_iter.as_secs_f64() / (1024.0 * 1024.0);
            println!("{label:<48} {per_iter:>12.2?}/iter  {rate:>10.1} MiB/s");
        }
        _ => println!("{label:<48} {per_iter:>12.2?}/iter"),
    }
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
