//! Vendored stand-in for the `crossbeam` crate.
//!
//! Only the `channel` module is provided — it is the only part of crossbeam
//! this workspace uses. Channels are multi-producer multi-consumer, built on
//! a `Mutex<VecDeque>` plus two condvars; `Sender` and `Receiver` are both
//! `Clone + Send + Sync` like the originals. The `select!` macro supports
//! the two-arm `recv(..) -> msg => ..` form used in this repository, by
//! polling; arm bodies run outside any internal loop so `break`/`continue`
//! inside them bind to the caller's loop exactly as with real crossbeam.

pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    struct Shared<T> {
        queue: Mutex<VecDeque<T>>,
        /// `None` for unbounded channels.
        capacity: Option<usize>,
        senders: AtomicUsize,
        receivers: AtomicUsize,
        not_empty: Condvar,
        not_full: Condvar,
    }

    /// The sending half of a channel.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// The receiving half of a channel.
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// Error returned by [`Sender::send`] when all receivers are gone; the
    /// unsent message is given back.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// all senders are gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// Channel currently holds no message.
        Empty,
        /// All senders are gone and the queue is drained.
        Disconnected,
    }

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// The timeout elapsed with no message.
        Timeout,
        /// All senders are gone and the queue is drained.
        Disconnected,
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }
    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("receiving on an empty and disconnected channel")
        }
    }
    impl fmt::Display for TryRecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TryRecvError::Empty => f.write_str("receiving on an empty channel"),
                TryRecvError::Disconnected => {
                    f.write_str("receiving on an empty and disconnected channel")
                }
            }
        }
    }
    impl fmt::Display for RecvTimeoutError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                RecvTimeoutError::Timeout => f.write_str("timed out waiting on channel"),
                RecvTimeoutError::Disconnected => {
                    f.write_str("channel is empty and disconnected")
                }
            }
        }
    }
    impl<T: fmt::Debug> std::error::Error for SendError<T> {}
    impl std::error::Error for RecvError {}
    impl std::error::Error for TryRecvError {}
    impl std::error::Error for RecvTimeoutError {}

    /// Creates a channel of unlimited capacity.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        with_capacity(None)
    }

    /// Creates a channel holding at most `cap` messages; sends block while
    /// full. A capacity of zero behaves as capacity one (the rendezvous
    /// special case is not needed by this workspace).
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        with_capacity(Some(cap.max(1)))
    }

    fn with_capacity<T>(capacity: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            capacity,
            senders: AtomicUsize::new(1),
            receivers: AtomicUsize::new(1),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.senders.fetch_add(1, Ordering::SeqCst);
            Sender {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if self.shared.senders.fetch_sub(1, Ordering::SeqCst) == 1 {
                self.shared.not_empty.notify_all();
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared.receivers.fetch_add(1, Ordering::SeqCst);
            Receiver {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            if self.shared.receivers.fetch_sub(1, Ordering::SeqCst) == 1 {
                self.shared.not_full.notify_all();
            }
        }
    }

    impl<T> fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Sender { .. }")
        }
    }
    impl<T> fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Receiver { .. }")
        }
    }

    impl<T> Sender<T> {
        /// Sends a message, blocking while a bounded channel is full.
        ///
        /// # Errors
        ///
        /// Returns the message when every receiver has been dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut queue = self.shared.queue.lock().unwrap_or_else(|p| p.into_inner());
            loop {
                if self.shared.receivers.load(Ordering::SeqCst) == 0 {
                    return Err(SendError(value));
                }
                match self.shared.capacity {
                    Some(cap) if queue.len() >= cap => {
                        queue = self
                            .shared
                            .not_full
                            .wait(queue)
                            .unwrap_or_else(|p| p.into_inner());
                    }
                    _ => break,
                }
            }
            queue.push_back(value);
            drop(queue);
            self.shared.not_empty.notify_one();
            Ok(())
        }
    }

    impl<T> Receiver<T> {
        /// Blocking receive.
        ///
        /// # Errors
        ///
        /// [`RecvError`] when the queue is drained and all senders are gone.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut queue = self.shared.queue.lock().unwrap_or_else(|p| p.into_inner());
            loop {
                if let Some(value) = queue.pop_front() {
                    drop(queue);
                    self.shared.not_full.notify_one();
                    return Ok(value);
                }
                if self.shared.senders.load(Ordering::SeqCst) == 0 {
                    return Err(RecvError);
                }
                queue = self
                    .shared
                    .not_empty
                    .wait(queue)
                    .unwrap_or_else(|p| p.into_inner());
            }
        }

        /// Non-blocking receive.
        ///
        /// # Errors
        ///
        /// `Empty` when no message is ready, `Disconnected` when drained and
        /// all senders are gone.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut queue = self.shared.queue.lock().unwrap_or_else(|p| p.into_inner());
            if let Some(value) = queue.pop_front() {
                drop(queue);
                self.shared.not_full.notify_one();
                return Ok(value);
            }
            if self.shared.senders.load(Ordering::SeqCst) == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }

        /// Blocking receive with a timeout.
        ///
        /// # Errors
        ///
        /// `Timeout` after `timeout` with no message, `Disconnected` when
        /// drained and all senders are gone.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut queue = self.shared.queue.lock().unwrap_or_else(|p| p.into_inner());
            loop {
                if let Some(value) = queue.pop_front() {
                    drop(queue);
                    self.shared.not_full.notify_one();
                    return Ok(value);
                }
                if self.shared.senders.load(Ordering::SeqCst) == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (q, result) = self
                    .shared
                    .not_empty
                    .wait_timeout(queue, deadline - now)
                    .unwrap_or_else(|p| p.into_inner());
                queue = q;
                if result.timed_out() && queue.is_empty() {
                    return Err(RecvTimeoutError::Timeout);
                }
            }
        }

        /// True when no message is currently queued.
        pub fn is_empty(&self) -> bool {
            self.shared
                .queue
                .lock()
                .unwrap_or_else(|p| p.into_inner())
                .is_empty()
        }

        /// Number of queued messages.
        pub fn len(&self) -> usize {
            self.shared.queue.lock().unwrap_or_else(|p| p.into_inner()).len()
        }
    }

    pub use crate::select;
}

/// Two-arm `select!` over `recv(..)` operations, by polling.
///
/// Supports the shape used in this workspace:
///
/// ```ignore
/// select! {
///     recv(rx) -> msg => { .. },
///     recv(stop_rx) -> _ => break,
/// }
/// ```
///
/// Arm bodies execute *outside* the internal polling loop, so control-flow
/// statements in them (`break`, `continue`, `return`) apply to the caller's
/// context, matching real crossbeam semantics.
#[macro_export]
macro_rules! select {
    (
        recv($rx1:expr) -> $pat1:pat => $body1:expr,
        recv($rx2:expr) -> $pat2:pat => $body2:expr $(,)?
    ) => {{
        // Ok(..) carries arm-1's result, Err(..) carries arm-2's.
        let __psc_choice;
        loop {
            match $crate::channel::Receiver::try_recv(&$rx1) {
                ::core::result::Result::Ok(v) => {
                    __psc_choice = ::core::result::Result::Ok(::core::result::Result::Ok(v));
                    break;
                }
                ::core::result::Result::Err($crate::channel::TryRecvError::Disconnected) => {
                    __psc_choice = ::core::result::Result::Ok(::core::result::Result::Err(
                        $crate::channel::RecvError,
                    ));
                    break;
                }
                ::core::result::Result::Err($crate::channel::TryRecvError::Empty) => {}
            }
            match $crate::channel::Receiver::try_recv(&$rx2) {
                ::core::result::Result::Ok(v) => {
                    __psc_choice = ::core::result::Result::Err(::core::result::Result::Ok(v));
                    break;
                }
                ::core::result::Result::Err($crate::channel::TryRecvError::Disconnected) => {
                    __psc_choice = ::core::result::Result::Err(::core::result::Result::Err(
                        $crate::channel::RecvError,
                    ));
                    break;
                }
                ::core::result::Result::Err($crate::channel::TryRecvError::Empty) => {}
            }
            ::std::thread::sleep(::std::time::Duration::from_millis(1));
        }
        match __psc_choice {
            ::core::result::Result::Ok($pat1) => $body1,
            ::core::result::Result::Err($pat2) => $body2,
        }
    }};
}
