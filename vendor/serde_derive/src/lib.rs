//! Vendored stand-in for `serde_derive`.
//!
//! `syn`/`quote` cannot be fetched in this offline container, so the item is
//! parsed with a hand-rolled `proc_macro::TokenTree` walker and the impls
//! are emitted as source strings parsed back into a `TokenStream`. Supported
//! shapes are exactly what the workspace derives on: non-generic named /
//! tuple / unit structs and enums whose variants are unit, newtype, tuple,
//! or struct-like. Unsupported shapes fail the build with a clear message
//! rather than silently producing a wrong impl.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// One parsed field: optional name (None for tuple fields) and its type
/// rendered back to source text.
struct Field {
    name: Option<String>,
    ty: String,
}

enum Payload {
    Unit,
    Tuple(Vec<Field>),
    Named(Vec<Field>),
}

struct Variant {
    name: String,
    payload: Payload,
}

enum Item {
    Struct { name: String, payload: Payload },
    Enum { name: String, variants: Vec<Variant> },
}

/// Derives `serde::Serialize` for non-generic structs and enums.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let src = match &item {
        Item::Struct { name, payload } => serialize_struct(name, payload),
        Item::Enum { name, variants } => serialize_enum(name, variants),
    };
    src.parse().expect("generated Serialize impl parses")
}

/// Derives `serde::Deserialize` for non-generic structs and enums.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let src = match &item {
        Item::Struct { name, payload } => deserialize_struct(name, payload),
        Item::Enum { name, variants } => deserialize_enum(name, variants),
    };
    src.parse().expect("generated Deserialize impl parses")
}

// ---- parsing ----

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attrs_and_vis(&tokens, &mut i);
    let kind = match &tokens[i] {
        TokenTree::Ident(ident) => ident.to_string(),
        other => panic!("serde_derive: expected `struct` or `enum`, found `{other}`"),
    };
    i += 1;
    let name = match &tokens[i] {
        TokenTree::Ident(ident) => ident.to_string(),
        other => panic!("serde_derive: expected item name, found `{other}`"),
    };
    i += 1;
    if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde_derive (vendored): generic type `{name}` is not supported");
    }
    match kind.as_str() {
        "struct" => {
            let payload = match tokens.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Payload::Named(parse_named_fields(g.stream()))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Payload::Tuple(parse_tuple_fields(g.stream()))
                }
                Some(TokenTree::Punct(p)) if p.as_char() == ';' => Payload::Unit,
                other => panic!("serde_derive: unexpected struct body: {other:?}"),
            };
            Item::Struct { name, payload }
        }
        "enum" => {
            let body = match tokens.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
                other => panic!("serde_derive: unexpected enum body: {other:?}"),
            };
            Item::Enum {
                name,
                variants: parse_variants(body),
            }
        }
        other => panic!("serde_derive: cannot derive for `{other}` items"),
    }
}

/// Advances past `#[..]` attributes and `pub` / `pub(..)` visibility.
fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 2; // `#` and the bracketed group
            }
            Some(TokenTree::Ident(ident)) if ident.to_string() == "pub" => {
                *i += 1;
                if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    *i += 1;
                }
            }
            _ => return,
        }
    }
}

/// Splits a field-list token stream on commas that sit outside any `<..>`.
/// (Nested `()`/`[]`/`{}` arrive as single opaque groups, so only angle
/// brackets need depth tracking.)
fn split_top_level(stream: TokenStream) -> Vec<Vec<TokenTree>> {
    let mut out = Vec::new();
    let mut current = Vec::new();
    let mut angle_depth = 0i32;
    for token in stream {
        if let TokenTree::Punct(p) = &token {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => {
                    out.push(std::mem::take(&mut current));
                    continue;
                }
                _ => {}
            }
        }
        current.push(token);
    }
    if !current.is_empty() {
        out.push(current);
    }
    out
}

fn tokens_to_string(tokens: &[TokenTree]) -> String {
    tokens
        .iter()
        .map(|t| t.to_string())
        .collect::<Vec<_>>()
        .join(" ")
}

fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    split_top_level(stream)
        .into_iter()
        .filter(|seg| !seg.is_empty())
        .map(|seg| {
            let mut i = 0;
            skip_attrs_and_vis(&seg, &mut i);
            let name = match &seg[i] {
                TokenTree::Ident(ident) => ident.to_string(),
                other => panic!("serde_derive: expected field name, found `{other}`"),
            };
            i += 1;
            match &seg[i] {
                TokenTree::Punct(p) if p.as_char() == ':' => {}
                other => panic!("serde_derive: expected `:` after field name, found `{other}`"),
            }
            i += 1;
            Field {
                name: Some(name),
                ty: tokens_to_string(&seg[i..]),
            }
        })
        .collect()
}

fn parse_tuple_fields(stream: TokenStream) -> Vec<Field> {
    split_top_level(stream)
        .into_iter()
        .filter(|seg| !seg.is_empty())
        .map(|seg| {
            let mut i = 0;
            skip_attrs_and_vis(&seg, &mut i);
            Field {
                name: None,
                ty: tokens_to_string(&seg[i..]),
            }
        })
        .collect()
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let mut variants = Vec::new();
    for seg in split_top_level(stream) {
        if seg.is_empty() {
            continue;
        }
        let mut i = 0;
        skip_attrs_and_vis(&seg, &mut i);
        let name = match &seg[i] {
            TokenTree::Ident(ident) => ident.to_string(),
            other => panic!("serde_derive: expected variant name, found `{other}`"),
        };
        i += 1;
        let payload = match seg.get(i) {
            None => Payload::Unit,
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Payload::Tuple(parse_tuple_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Payload::Named(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == '=' => {
                panic!("serde_derive (vendored): explicit discriminants are not supported")
            }
            other => panic!("serde_derive: unexpected variant payload: {other:?}"),
        };
        variants.push(Variant { name, payload });
    }
    variants
}

// ---- code generation: Serialize ----

fn serialize_struct(name: &str, payload: &Payload) -> String {
    let body = match payload {
        Payload::Unit => format!("__serializer.serialize_unit_struct(\"{name}\")"),
        Payload::Tuple(fields) if fields.len() == 1 => {
            format!("__serializer.serialize_newtype_struct(\"{name}\", &self.0)")
        }
        Payload::Tuple(fields) => {
            let mut out = format!(
                "let mut __st = ::serde::ser::Serializer::serialize_tuple_struct(__serializer, \"{name}\", {})?;",
                fields.len()
            );
            for idx in 0..fields.len() {
                out.push_str(&format!(
                    "::serde::ser::SerializeTupleStruct::serialize_field(&mut __st, &self.{idx})?;"
                ));
            }
            out.push_str("::serde::ser::SerializeTupleStruct::end(__st)");
            out
        }
        Payload::Named(fields) => {
            let mut out = format!(
                "let mut __st = ::serde::ser::Serializer::serialize_struct(__serializer, \"{name}\", {})?;",
                fields.len()
            );
            for field in fields {
                let fname = field.name.as_ref().expect("named field");
                out.push_str(&format!(
                    "::serde::ser::SerializeStruct::serialize_field(&mut __st, \"{fname}\", &self.{fname})?;"
                ));
            }
            out.push_str("::serde::ser::SerializeStruct::end(__st)");
            out
        }
    };
    format!(
        "impl ::serde::ser::Serialize for {name} {{\n\
             fn serialize<__S: ::serde::ser::Serializer>(&self, __serializer: __S)\n\
                 -> ::core::result::Result<__S::Ok, __S::Error> {{ {body} }}\n\
         }}"
    )
}

fn serialize_enum(name: &str, variants: &[Variant]) -> String {
    let mut arms = String::new();
    for (index, variant) in variants.iter().enumerate() {
        let vname = &variant.name;
        match &variant.payload {
            Payload::Unit => {
                arms.push_str(&format!(
                    "{name}::{vname} => ::serde::ser::Serializer::serialize_unit_variant(__serializer, \"{name}\", {index}u32, \"{vname}\"),"
                ));
            }
            Payload::Tuple(fields) if fields.len() == 1 => {
                arms.push_str(&format!(
                    "{name}::{vname}(__f0) => ::serde::ser::Serializer::serialize_newtype_variant(__serializer, \"{name}\", {index}u32, \"{vname}\", __f0),"
                ));
            }
            Payload::Tuple(fields) => {
                let binders: Vec<String> = (0..fields.len()).map(|i| format!("__f{i}")).collect();
                let mut arm = format!(
                    "{name}::{vname}({}) => {{ let mut __st = ::serde::ser::Serializer::serialize_tuple_variant(__serializer, \"{name}\", {index}u32, \"{vname}\", {})?;",
                    binders.join(", "),
                    fields.len()
                );
                for binder in &binders {
                    arm.push_str(&format!(
                        "::serde::ser::SerializeTupleVariant::serialize_field(&mut __st, {binder})?;"
                    ));
                }
                arm.push_str("::serde::ser::SerializeTupleVariant::end(__st) },");
                arms.push_str(&arm);
            }
            Payload::Named(fields) => {
                let names: Vec<&str> = fields
                    .iter()
                    .map(|f| f.name.as_deref().expect("named field"))
                    .collect();
                let mut arm = format!(
                    "{name}::{vname} {{ {} }} => {{ let mut __st = ::serde::ser::Serializer::serialize_struct_variant(__serializer, \"{name}\", {index}u32, \"{vname}\", {})?;",
                    names.join(", "),
                    fields.len()
                );
                for fname in &names {
                    arm.push_str(&format!(
                        "::serde::ser::SerializeStructVariant::serialize_field(&mut __st, \"{fname}\", {fname})?;"
                    ));
                }
                arm.push_str("::serde::ser::SerializeStructVariant::end(__st) },");
                arms.push_str(&arm);
            }
        }
    }
    format!(
        "impl ::serde::ser::Serialize for {name} {{\n\
             fn serialize<__S: ::serde::ser::Serializer>(&self, __serializer: __S)\n\
                 -> ::core::result::Result<__S::Ok, __S::Error> {{\n\
                 match self {{ {arms} }}\n\
             }}\n\
         }}"
    )
}

// ---- code generation: Deserialize ----

/// Emits statements reading `fields` from a `SeqAccess` binding them to
/// `__f0..__fN`, erroring (via the given error type path) on short input.
fn read_seq_fields(fields: &[Field], what: &str) -> String {
    let mut out = String::new();
    for (i, field) in fields.iter().enumerate() {
        let ty = &field.ty;
        out.push_str(&format!(
            "let __f{i}: {ty} = match ::serde::de::SeqAccess::next_element(&mut __seq)? {{\n\
                 ::core::option::Option::Some(__v) => __v,\n\
                 ::core::option::Option::None => return ::core::result::Result::Err(\n\
                     ::serde::de::Error::custom(\"{what}: input ended early\")),\n\
             }};"
        ));
    }
    out
}

fn construct(name: &str, variant: Option<&str>, payload: &Payload) -> String {
    let path = match variant {
        Some(v) => format!("{name}::{v}"),
        None => name.to_string(),
    };
    match payload {
        Payload::Unit => path,
        Payload::Tuple(fields) => {
            let args: Vec<String> = (0..fields.len()).map(|i| format!("__f{i}")).collect();
            format!("{path}({})", args.join(", "))
        }
        Payload::Named(fields) => {
            let args: Vec<String> = fields
                .iter()
                .enumerate()
                .map(|(i, f)| format!("{}: __f{i}", f.name.as_ref().expect("named field")))
                .collect();
            format!("{path} {{ {} }}", args.join(", "))
        }
    }
}

/// A visitor struct definition reading `payload` via `visit_seq`, producing
/// `construct_expr` of type `value_ty`.
fn seq_visitor(visitor_name: &str, value_ty: &str, payload: &Payload, construct_expr: &str) -> String {
    let fields = match payload {
        Payload::Tuple(f) | Payload::Named(f) => f.as_slice(),
        Payload::Unit => &[],
    };
    let reads = read_seq_fields(fields, value_ty);
    format!(
        "struct {visitor_name};\n\
         impl<'de> ::serde::de::Visitor<'de> for {visitor_name} {{\n\
             type Value = {value_ty};\n\
             fn expecting(&self, __f: &mut ::core::fmt::Formatter<'_>) -> ::core::fmt::Result {{\n\
                 __f.write_str(\"{value_ty}\")\n\
             }}\n\
             fn visit_seq<__A: ::serde::de::SeqAccess<'de>>(self, mut __seq: __A)\n\
                 -> ::core::result::Result<Self::Value, __A::Error> {{\n\
                 let _ = &mut __seq;\n\
                 {reads}\n\
                 ::core::result::Result::Ok({construct_expr})\n\
             }}\n\
         }}"
    )
}

fn deserialize_struct(name: &str, payload: &Payload) -> String {
    let body = match payload {
        Payload::Unit => format!(
            "struct __V;\n\
             impl<'de> ::serde::de::Visitor<'de> for __V {{\n\
                 type Value = {name};\n\
                 fn expecting(&self, __f: &mut ::core::fmt::Formatter<'_>) -> ::core::fmt::Result {{\n\
                     __f.write_str(\"unit struct {name}\")\n\
                 }}\n\
                 fn visit_unit<__E: ::serde::de::Error>(self) -> ::core::result::Result<{name}, __E> {{\n\
                     ::core::result::Result::Ok({name})\n\
                 }}\n\
             }}\n\
             ::serde::de::Deserializer::deserialize_unit_struct(__deserializer, \"{name}\", __V)"
        ),
        Payload::Tuple(fields) if fields.len() == 1 => {
            let ty = &fields[0].ty;
            format!(
                "struct __V;\n\
                 impl<'de> ::serde::de::Visitor<'de> for __V {{\n\
                     type Value = {name};\n\
                     fn expecting(&self, __f: &mut ::core::fmt::Formatter<'_>) -> ::core::fmt::Result {{\n\
                         __f.write_str(\"newtype struct {name}\")\n\
                     }}\n\
                     fn visit_newtype_struct<__D: ::serde::de::Deserializer<'de>>(self, __d: __D)\n\
                         -> ::core::result::Result<{name}, __D::Error> {{\n\
                         ::core::result::Result::Ok({name}(<{ty} as ::serde::de::Deserialize>::deserialize(__d)?))\n\
                     }}\n\
                 }}\n\
                 ::serde::de::Deserializer::deserialize_newtype_struct(__deserializer, \"{name}\", __V)"
            )
        }
        Payload::Tuple(fields) => {
            let visitor = seq_visitor("__V", name, payload, &construct(name, None, payload));
            format!(
                "{visitor}\n\
                 ::serde::de::Deserializer::deserialize_tuple_struct(__deserializer, \"{name}\", {}, __V)",
                fields.len()
            )
        }
        Payload::Named(fields) => {
            let visitor = seq_visitor("__V", name, payload, &construct(name, None, payload));
            let field_names: Vec<String> = fields
                .iter()
                .map(|f| format!("\"{}\"", f.name.as_ref().expect("named field")))
                .collect();
            format!(
                "{visitor}\n\
                 const __FIELDS: &[&str] = &[{}];\n\
                 ::serde::de::Deserializer::deserialize_struct(__deserializer, \"{name}\", __FIELDS, __V)",
                field_names.join(", ")
            )
        }
    };
    format!(
        "impl<'de> ::serde::de::Deserialize<'de> for {name} {{\n\
             fn deserialize<__D: ::serde::de::Deserializer<'de>>(__deserializer: __D)\n\
                 -> ::core::result::Result<Self, __D::Error> {{ {body} }}\n\
         }}"
    )
}

fn deserialize_enum(name: &str, variants: &[Variant]) -> String {
    let mut arms = String::new();
    let mut helper_visitors = String::new();
    for (index, variant) in variants.iter().enumerate() {
        let vname = &variant.name;
        match &variant.payload {
            Payload::Unit => {
                arms.push_str(&format!(
                    "{index}u32 => {{ ::serde::de::VariantAccess::unit_variant(__variant)?;\n\
                         ::core::result::Result::Ok({name}::{vname}) }}"
                ));
            }
            Payload::Tuple(fields) if fields.len() == 1 => {
                let ty = &fields[0].ty;
                arms.push_str(&format!(
                    "{index}u32 => {{ let __v: {ty} = ::serde::de::VariantAccess::newtype_variant(__variant)?;\n\
                         ::core::result::Result::Ok({name}::{vname}(__v)) }}"
                ));
            }
            Payload::Tuple(fields) => {
                let visitor_name = format!("__V{index}");
                helper_visitors.push_str(&seq_visitor(
                    &visitor_name,
                    name,
                    &variant.payload,
                    &construct(name, Some(vname), &variant.payload),
                ));
                arms.push_str(&format!(
                    "{index}u32 => ::serde::de::VariantAccess::tuple_variant(__variant, {}, {visitor_name}),",
                    fields.len()
                ));
            }
            Payload::Named(fields) => {
                let visitor_name = format!("__V{index}");
                helper_visitors.push_str(&seq_visitor(
                    &visitor_name,
                    name,
                    &variant.payload,
                    &construct(name, Some(vname), &variant.payload),
                ));
                let field_names: Vec<String> = fields
                    .iter()
                    .map(|f| format!("\"{}\"", f.name.as_ref().expect("named field")))
                    .collect();
                arms.push_str(&format!(
                    "{index}u32 => ::serde::de::VariantAccess::struct_variant(__variant, &[{}], {visitor_name}),",
                    field_names.join(", ")
                ));
            }
        }
    }
    let variant_names: Vec<String> = variants.iter().map(|v| format!("\"{}\"", v.name)).collect();
    format!(
        "impl<'de> ::serde::de::Deserialize<'de> for {name} {{\n\
             fn deserialize<__D: ::serde::de::Deserializer<'de>>(__deserializer: __D)\n\
                 -> ::core::result::Result<Self, __D::Error> {{\n\
                 {helper_visitors}\n\
                 struct __V;\n\
                 impl<'de> ::serde::de::Visitor<'de> for __V {{\n\
                     type Value = {name};\n\
                     fn expecting(&self, __f: &mut ::core::fmt::Formatter<'_>) -> ::core::fmt::Result {{\n\
                         __f.write_str(\"enum {name}\")\n\
                     }}\n\
                     fn visit_enum<__A: ::serde::de::EnumAccess<'de>>(self, __data: __A)\n\
                         -> ::core::result::Result<Self::Value, __A::Error> {{\n\
                         let (__idx, __variant): (u32, __A::Variant) =\n\
                             ::serde::de::EnumAccess::variant(__data)?;\n\
                         match __idx {{\n\
                             {arms}\n\
                             __other => ::core::result::Result::Err(::serde::de::Error::invalid_variant(__other, \"{name}\")),\n\
                         }}\n\
                     }}\n\
                 }}\n\
                 const __VARIANTS: &[&str] = &[{}];\n\
                 ::serde::de::Deserializer::deserialize_enum(__deserializer, \"{name}\", __VARIANTS, __V)\n\
             }}\n\
         }}",
        variant_names.join(", ")
    )
}
