//! Vendored stand-in for `proptest`, covering the subset this workspace
//! uses: `proptest!` with mixed `name in strategy` / `name: Type` params,
//! `prop_oneof!`, `prop_assert*!`, `Just`, `any`, range and regex-subset
//! string strategies, tuples, `collection::{vec, btree_map}`, and
//! `sample::{select, subsequence}`.
//!
//! Differences from upstream: no shrinking (failures report the base seed
//! so a run is reproducible via `PROPTEST_SEED`), and string "regexes"
//! support only the `.`/`[a-z]` atom + `*`/`{m,n}` quantifier shapes the
//! tests actually use.

pub mod strategy {
    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::rc::Rc;

    /// A generator of values of type `Self::Value`.
    ///
    /// Unlike upstream there is no `ValueTree`/shrinking layer: `generate`
    /// produces a value directly from the deterministic RNG.
    pub trait Strategy {
        /// The type of value this strategy produces.
        type Value;

        /// Produces one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Erases the concrete strategy type.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Rc::new(self))
        }
    }

    /// A strategy that always yields a clone of its payload.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Type-erased strategy handle.
    pub struct BoxedStrategy<T>(Rc<dyn Strategy<Value = T>>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy(Rc::clone(&self.0))
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.0.generate(rng)
        }
    }

    /// Uniform choice among several strategies; backs `prop_oneof!`.
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// Builds a union over `options`; panics if empty.
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let idx = rng.gen_range(0..self.options.len());
            self.options[idx].generate(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }
    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

    /// String strategies from the regex subset (see [`crate::string`]).
    impl Strategy for &'static str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            crate::string::generate_from_pattern(self, rng)
        }
    }

    macro_rules! tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }
    tuple_strategy!(A);
    tuple_strategy!(A, B);
    tuple_strategy!(A, B, C);
    tuple_strategy!(A, B, C, D);
    tuple_strategy!(A, B, C, D, E);
    tuple_strategy!(A, B, C, D, E, F);
}

pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::{Rng, RngCore};
    use std::marker::PhantomData;

    /// Types with a canonical "anything goes" strategy.
    pub trait Arbitrary: Sized {
        /// Produces one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    /// The strategy returned by [`any`].
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// Strategy over the full domain of `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }

    macro_rules! int_arbitrary {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    // Truncating a full random u64 keeps high bits exercised
                    // for the wide types.
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    // Like upstream's default float strategies, NaN and infinities are
    // excluded so roundtrip tests can compare with `==`.
    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            loop {
                let v = f64::from_bits(rng.next_u64());
                if v.is_finite() {
                    return v;
                }
            }
        }
    }

    impl Arbitrary for f32 {
        fn arbitrary(rng: &mut TestRng) -> f32 {
            loop {
                let v = f32::from_bits(rng.next_u32());
                if v.is_finite() {
                    return v;
                }
            }
        }
    }

    impl Arbitrary for char {
        fn arbitrary(rng: &mut TestRng) -> char {
            char::from_u32(rng.gen_range(0u32..0xD800)).expect("below surrogate range")
        }
    }

    impl Arbitrary for String {
        fn arbitrary(rng: &mut TestRng) -> String {
            crate::string::generate_from_pattern(".*", rng)
        }
    }
}

pub mod string {
    use crate::test_runner::TestRng;
    use rand::Rng;

    enum Atom {
        /// `.` — any char (we sample ASCII printable plus a slice of
        /// multi-byte code points to exercise codecs).
        AnyChar,
        /// `[a-c]`-style class, expanded to its member chars.
        Class(Vec<char>),
    }

    /// Generates a string from the tiny regex subset the tests use:
    /// one atom (`.` or `[...]`) followed by `*` or `{m,n}`.
    pub fn generate_from_pattern(pattern: &str, rng: &mut TestRng) -> String {
        let chars: Vec<char> = pattern.chars().collect();
        let (atom, rest) = parse_atom(&chars);
        let (min, max) = parse_quantifier(rest, pattern);
        let len = if min == max { min } else { rng.gen_range(min..=max) };
        (0..len).map(|_| gen_char(&atom, rng)).collect()
    }

    fn parse_atom(chars: &[char]) -> (Atom, &[char]) {
        match chars.first() {
            Some('.') => (Atom::AnyChar, &chars[1..]),
            Some('[') => {
                let close = chars
                    .iter()
                    .position(|&c| c == ']')
                    .unwrap_or_else(|| panic!("unterminated char class in pattern"));
                let mut members = Vec::new();
                let body = &chars[1..close];
                let mut i = 0;
                while i < body.len() {
                    if i + 2 < body.len() && body[i + 1] == '-' {
                        let (lo, hi) = (body[i] as u32, body[i + 2] as u32);
                        for c in lo..=hi {
                            members.push(char::from_u32(c).expect("class range char"));
                        }
                        i += 3;
                    } else {
                        members.push(body[i]);
                        i += 1;
                    }
                }
                (Atom::Class(members), &chars[close + 1..])
            }
            other => panic!("unsupported pattern atom {other:?} (vendored proptest regex subset)"),
        }
    }

    fn parse_quantifier(rest: &[char], pattern: &str) -> (usize, usize) {
        match rest.first() {
            None => (1, 1),
            Some('*') => (0, 16),
            Some('{') => {
                let body: String = rest[1..rest.len() - 1].iter().collect();
                assert_eq!(
                    rest.last(),
                    Some(&'}'),
                    "unterminated quantifier in pattern {pattern:?}"
                );
                let (m, n) = body
                    .split_once(',')
                    .unwrap_or_else(|| panic!("quantifier without comma in {pattern:?}"));
                (
                    m.trim().parse().expect("quantifier min"),
                    n.trim().parse().expect("quantifier max"),
                )
            }
            Some(other) => panic!("unsupported quantifier {other:?} in pattern {pattern:?}"),
        }
    }

    fn gen_char(atom: &Atom, rng: &mut TestRng) -> char {
        match atom {
            Atom::AnyChar => {
                if rng.gen_bool(0.8) {
                    // Printable ASCII.
                    char::from_u32(rng.gen_range(0x20u32..0x7F)).expect("ascii")
                } else {
                    // Multi-byte but below the surrogate range.
                    char::from_u32(rng.gen_range(0xA0u32..0xD800)).expect("below surrogates")
                }
            }
            Atom::Class(members) => members[rng.gen_range(0..members.len())],
        }
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::collections::BTreeMap;
    use std::ops::Range;

    /// Inclusive-exclusive size bound for collection strategies.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        start: usize,
        end: usize,
    }

    impl SizeRange {
        pub(crate) fn bounds(&self) -> (usize, usize) {
            (self.start, self.end)
        }

        pub(crate) fn sample(&self, rng: &mut TestRng) -> usize {
            if self.start >= self.end {
                self.start
            } else {
                rng.gen_range(self.start..self.end)
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            SizeRange { start: r.start, end: r.end }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { start: n, end: n }
        }
    }

    /// See [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.sample(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Vectors of `size` elements drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    /// See [`btree_map`].
    pub struct BTreeMapStrategy<K, V> {
        key: K,
        value: V,
        size: SizeRange,
    }

    impl<K, V> Strategy for BTreeMapStrategy<K, V>
    where
        K: Strategy,
        K::Value: Ord,
        V: Strategy,
    {
        type Value = BTreeMap<K::Value, V::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.size.sample(rng);
            // Duplicate keys collapse, so like upstream the size bound is an
            // upper bound, not exact.
            (0..n)
                .map(|_| (self.key.generate(rng), self.value.generate(rng)))
                .collect()
        }
    }

    /// Maps with up to `size` entries drawn from `key`/`value`.
    pub fn btree_map<K: Strategy, V: Strategy>(
        key: K,
        value: V,
        size: impl Into<SizeRange>,
    ) -> BTreeMapStrategy<K, V>
    where
        K::Value: Ord,
    {
        BTreeMapStrategy { key, value, size: size.into() }
    }
}

pub mod sample {
    use crate::collection::SizeRange;
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::seq::SliceRandom;
    use rand::Rng;

    /// See [`select`].
    pub struct Select<T> {
        options: Vec<T>,
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.options[rng.gen_range(0..self.options.len())].clone()
        }
    }

    /// One element of `options`, uniformly.
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "sample::select needs a non-empty vec");
        Select { options }
    }

    /// See [`subsequence`].
    pub struct Subsequence<T> {
        options: Vec<T>,
        size: SizeRange,
    }

    impl<T: Clone> Strategy for Subsequence<T> {
        type Value = Vec<T>;
        fn generate(&self, rng: &mut TestRng) -> Vec<T> {
            let mut indices: Vec<usize> = (0..self.options.len()).collect();
            indices.shuffle(rng);
            let (lo, hi) = self.size.bounds();
            let lo = lo.min(self.options.len());
            let hi = hi.min(self.options.len() + 1).max(lo + 1);
            let want = rng.gen_range(lo..hi);
            indices.truncate(want);
            indices.sort_unstable();
            indices.into_iter().map(|i| self.options[i].clone()).collect()
        }
    }

    /// An order-preserving random subsequence of `options` whose length
    /// falls in `size` (clamped to the available elements).
    pub fn subsequence<T: Clone>(options: Vec<T>, size: impl Into<SizeRange>) -> Subsequence<T> {
        Subsequence { options, size: size.into() }
    }
}

pub mod test_runner {
    use crate::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::{RngCore, SeedableRng};

    /// Run configuration; only `cases` is honored.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of random cases per property.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    impl ProptestConfig {
        /// Default config with a custom case count.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    /// The RNG handed to strategies: a deterministic seeded generator.
    pub struct TestRng(StdRng);

    impl TestRng {
        /// Builds a generator from a 64-bit seed.
        pub fn seeded(seed: u64) -> Self {
            TestRng(StdRng::seed_from_u64(seed))
        }
    }

    impl RngCore for TestRng {
        fn next_u32(&mut self) -> u32 {
            self.0.next_u32()
        }
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
        fn fill_bytes(&mut self, dest: &mut [u8]) {
            self.0.fill_bytes(dest)
        }
    }

    /// A failed (or, upstream, rejected) test case.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// Assertion failure with its message.
        Fail(String),
    }

    impl TestCaseError {
        /// Builds a failure.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }
    }

    const DEFAULT_BASE_SEED: u64 = 0x5eed_0bad_f00d_cafe;

    fn base_seed() -> u64 {
        std::env::var("PROPTEST_SEED")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(DEFAULT_BASE_SEED)
    }

    /// Drives `config.cases` random cases of `f` over `strat`. Panics on
    /// the first failing case with enough seed information to replay the
    /// whole run via `PROPTEST_SEED`.
    pub fn run_cases<S: Strategy>(
        config: ProptestConfig,
        strat: S,
        mut f: impl FnMut(S::Value) -> Result<(), TestCaseError>,
    ) {
        let base = base_seed();
        for case in 0..config.cases as u64 {
            let case_seed = base ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15);
            let mut rng = TestRng::seeded(case_seed);
            let value = strat.generate(&mut rng);
            if let Err(TestCaseError::Fail(msg)) = f(value) {
                panic!(
                    "proptest case {case} failed (replay with PROPTEST_SEED={base}): {msg}"
                );
            }
        }
    }
}

pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Uniform choice among strategy expressions.
#[macro_export]
macro_rules! prop_oneof {
    ($($item:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($item)),+
        ])
    };
}

/// Property assertion returning a test-case failure instead of panicking.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Equality assertion variant of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let __left = $left;
        let __right = $right;
        if !(__left == __right) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "prop_assert_eq!({}, {}): {:?} != {:?}",
                    stringify!($left),
                    stringify!($right),
                    __left,
                    __right
                ),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let __left = $left;
        let __right = $right;
        if !(__left == __right) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "prop_assert_eq failed ({:?} != {:?}): {}",
                    __left,
                    __right,
                    format!($($fmt)+)
                ),
            ));
        }
    }};
}

/// Inequality assertion variant of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let __left = $left;
        let __right = $right;
        if __left == __right {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "prop_assert_ne!({}, {}): both {:?}",
                    stringify!($left),
                    stringify!($right),
                    __left
                ),
            ));
        }
    }};
}

/// Declares `#[test]` functions whose arguments are drawn from strategies.
///
/// Supports an optional leading `#![proptest_config(..)]` and parameters in
/// both `name in strategy` and `name: Type` (meaning `any::<Type>()`) forms.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@fns ($config); $($rest)*);
    };
    (@fns ($config:expr); ) => {};
    (@fns ($config:expr);
        $(#[$meta:meta])*
        fn $name:ident($($params:tt)*) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            $crate::__proptest_case!(@munch ($config) ($body) () () $($params)*);
        }
        $crate::proptest!(@fns ($config); $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@fns ($crate::test_runner::ProptestConfig::default()); $($rest)*);
    };
}

/// Internal: folds a `proptest!` parameter list into one tuple strategy and
/// one tuple pattern, then runs the cases.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_case {
    // All parameters consumed: run.
    (@munch ($config:expr) ($body:block) ($($pat:tt)*) ($($strat:tt)*)) => {
        $crate::test_runner::run_cases(
            $config,
            ($($strat)*),
            |($($pat)*)| -> ::core::result::Result<(), $crate::test_runner::TestCaseError> {
                $body
                ::core::result::Result::Ok(())
            },
        )
    };
    // `name in strategy, ...`
    (@munch ($config:expr) ($body:block) ($($pat:tt)*) ($($strat:tt)*)
        $name:ident in $strategy:expr, $($rest:tt)*) => {
        $crate::__proptest_case!(@munch ($config) ($body)
            ($($pat)* $name,) ($($strat)* ($strategy),) $($rest)*)
    };
    // `name in strategy` (final, no trailing comma)
    (@munch ($config:expr) ($body:block) ($($pat:tt)*) ($($strat:tt)*)
        $name:ident in $strategy:expr) => {
        $crate::__proptest_case!(@munch ($config) ($body)
            ($($pat)* $name,) ($($strat)* ($strategy),))
    };
    // `name: Type, ...`
    (@munch ($config:expr) ($body:block) ($($pat:tt)*) ($($strat:tt)*)
        $name:ident : $ty:ty, $($rest:tt)*) => {
        $crate::__proptest_case!(@munch ($config) ($body)
            ($($pat)* $name,) ($($strat)* ($crate::arbitrary::any::<$ty>()),) $($rest)*)
    };
    // `name: Type` (final, no trailing comma)
    (@munch ($config:expr) ($body:block) ($($pat:tt)*) ($($strat:tt)*)
        $name:ident : $ty:ty) => {
        $crate::__proptest_case!(@munch ($config) ($body)
            ($($pat)* $name,) ($($strat)* ($crate::arbitrary::any::<$ty>()),))
    };
}
