//! `Serialize`/`Deserialize` implementations for the std types the
//! workspace's derived and hand-written types contain.

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet, VecDeque};
use std::fmt;
use std::hash::{BuildHasher, Hash};
use std::marker::PhantomData;

use crate::de::{self, Deserialize, DeserializeOwned, Deserializer, MapAccess, SeqAccess, Visitor};
use crate::ser::{
    Serialize, SerializeMap, SerializeSeq, SerializeTuple, Serializer,
};

// ---- primitives ----

macro_rules! primitive_impl {
    ($ty:ty, $ser:ident, $de:ident, $visit:ident, $expecting:expr) => {
        impl Serialize for $ty {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                serializer.$ser(*self)
            }
        }

        impl<'de> Deserialize<'de> for $ty {
            fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
                struct V;
                impl<'de> Visitor<'de> for V {
                    type Value = $ty;
                    fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                        f.write_str($expecting)
                    }
                    fn $visit<E: de::Error>(self, v: $ty) -> Result<$ty, E> {
                        Ok(v)
                    }
                }
                deserializer.$de(V)
            }
        }
    };
}

primitive_impl!(bool, serialize_bool, deserialize_bool, visit_bool, "a boolean");
primitive_impl!(i8, serialize_i8, deserialize_i8, visit_i8, "an i8");
primitive_impl!(i16, serialize_i16, deserialize_i16, visit_i16, "an i16");
primitive_impl!(i32, serialize_i32, deserialize_i32, visit_i32, "an i32");
primitive_impl!(i64, serialize_i64, deserialize_i64, visit_i64, "an i64");
primitive_impl!(u8, serialize_u8, deserialize_u8, visit_u8, "a u8");
primitive_impl!(u16, serialize_u16, deserialize_u16, visit_u16, "a u16");
primitive_impl!(u32, serialize_u32, deserialize_u32, visit_u32, "a u32");
primitive_impl!(u64, serialize_u64, deserialize_u64, visit_u64, "a u64");
primitive_impl!(f32, serialize_f32, deserialize_f32, visit_f32, "an f32");
primitive_impl!(f64, serialize_f64, deserialize_f64, visit_f64, "an f64");
primitive_impl!(char, serialize_char, deserialize_char, visit_char, "a char");

impl Serialize for usize {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_u64(*self as u64)
    }
}

impl<'de> Deserialize<'de> for usize {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let v = u64::deserialize(deserializer)?;
        usize::try_from(v).map_err(|_| de::Error::custom("usize out of range"))
    }
}

impl Serialize for isize {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_i64(*self as i64)
    }
}

impl<'de> Deserialize<'de> for isize {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let v = i64::deserialize(deserializer)?;
        isize::try_from(v).map_err(|_| de::Error::custom("isize out of range"))
    }
}

// ---- strings ----

impl Serialize for str {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(self)
    }
}

impl Serialize for String {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(self)
    }
}

impl<'de> Deserialize<'de> for String {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct V;
        impl<'de> Visitor<'de> for V {
            type Value = String;
            fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str("a string")
            }
            fn visit_str<E: de::Error>(self, v: &str) -> Result<String, E> {
                Ok(v.to_owned())
            }
            fn visit_string<E: de::Error>(self, v: String) -> Result<String, E> {
                Ok(v)
            }
        }
        deserializer.deserialize_string(V)
    }
}

// ---- unit ----

impl Serialize for () {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_unit()
    }
}

impl<'de> Deserialize<'de> for () {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct V;
        impl<'de> Visitor<'de> for V {
            type Value = ();
            fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str("unit")
            }
            fn visit_unit<E: de::Error>(self) -> Result<(), E> {
                Ok(())
            }
        }
        deserializer.deserialize_unit(V)
    }
}

// ---- references and boxes ----

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Box<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        T::deserialize(deserializer).map(Box::new)
    }
}

// ---- option ----

impl<T: Serialize> Serialize for Option<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        match self {
            Some(value) => serializer.serialize_some(value),
            None => serializer.serialize_none(),
        }
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct V<T>(PhantomData<T>);
        impl<'de, T: Deserialize<'de>> Visitor<'de> for V<T> {
            type Value = Option<T>;
            fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str("an option")
            }
            fn visit_none<E: de::Error>(self) -> Result<Self::Value, E> {
                Ok(None)
            }
            fn visit_unit<E: de::Error>(self) -> Result<Self::Value, E> {
                Ok(None)
            }
            fn visit_some<D: Deserializer<'de>>(
                self,
                deserializer: D,
            ) -> Result<Self::Value, D::Error> {
                T::deserialize(deserializer).map(Some)
            }
        }
        deserializer.deserialize_option(V(PhantomData))
    }
}

// ---- result ----

impl<T: Serialize, E: Serialize> Serialize for Result<T, E> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        match self {
            Ok(value) => serializer.serialize_newtype_variant("Result", 0, "Ok", value),
            Err(error) => serializer.serialize_newtype_variant("Result", 1, "Err", error),
        }
    }
}

impl<'de, T: Deserialize<'de>, E: Deserialize<'de>> Deserialize<'de> for Result<T, E> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct V<T, E>(PhantomData<(T, E)>);
        impl<'de, T: Deserialize<'de>, E: Deserialize<'de>> Visitor<'de> for V<T, E> {
            type Value = Result<T, E>;
            fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str("a Result")
            }
            fn visit_enum<A: de::EnumAccess<'de>>(self, data: A) -> Result<Self::Value, A::Error> {
                let (index, variant): (u32, A::Variant) = data.variant()?;
                match index {
                    0 => de::VariantAccess::newtype_variant(variant).map(Ok),
                    1 => de::VariantAccess::newtype_variant(variant).map(Err),
                    other => Err(de::Error::invalid_variant(other, "Result")),
                }
            }
        }
        deserializer.deserialize_enum("Result", &["Ok", "Err"], V(PhantomData))
    }
}

// ---- sequences ----

fn serialize_iter<S: Serializer, I>(serializer: S, len: usize, iter: I) -> Result<S::Ok, S::Error>
where
    I: IntoIterator,
    I::Item: Serialize,
{
    let mut seq = serializer.serialize_seq(Some(len))?;
    for element in iter {
        seq.serialize_element(&element)?;
    }
    seq.end()
}

impl<T: Serialize> Serialize for [T] {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serialize_iter(serializer, self.len(), self.iter())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serialize_iter(serializer, self.len(), self.iter())
    }
}

impl<T: Serialize> Serialize for VecDeque<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serialize_iter(serializer, self.len(), self.iter())
    }
}

macro_rules! seq_de_impl {
    ($ty:ident, $insert:ident $(, $tbound:ident)*) => {
        impl<'de, T: Deserialize<'de> $(+ $tbound)*> Deserialize<'de>
            for $ty<T>
        {
            fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
                struct V<E>(PhantomData<E>);
                impl<'de, E: Deserialize<'de> $(+ $tbound)*> Visitor<'de>
                    for V<E>
                {
                    type Value = $ty<E>;
                    fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                        f.write_str("a sequence")
                    }
                    fn visit_seq<A: SeqAccess<'de>>(
                        self,
                        mut seq: A,
                    ) -> Result<Self::Value, A::Error> {
                        let mut out = $ty::new();
                        while let Some(element) = seq.next_element::<E>()? {
                            out.$insert(element);
                        }
                        Ok(out)
                    }
                }
                deserializer.deserialize_seq(V::<T>(PhantomData))
            }
        }
    };
}

seq_de_impl!(Vec, push);
seq_de_impl!(VecDeque, push_back);
seq_de_impl!(BTreeSet, insert, Ord);

impl<T: Serialize> Serialize for BTreeSet<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serialize_iter(serializer, self.len(), self.iter())
    }
}

impl<T: Serialize, H> Serialize for HashSet<T, H> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serialize_iter(serializer, self.len(), self.iter())
    }
}

impl<'de, T, H> Deserialize<'de> for HashSet<T, H>
where
    T: Deserialize<'de> + Eq + Hash,
    H: BuildHasher + Default,
{
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct V<T, H>(PhantomData<(T, H)>);
        impl<'de, T, H> Visitor<'de> for V<T, H>
        where
            T: Deserialize<'de> + Eq + Hash,
            H: BuildHasher + Default,
        {
            type Value = HashSet<T, H>;
            fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str("a set")
            }
            fn visit_seq<A: SeqAccess<'de>>(self, mut seq: A) -> Result<Self::Value, A::Error> {
                let mut out = HashSet::with_hasher(H::default());
                while let Some(element) = seq.next_element::<T>()? {
                    out.insert(element);
                }
                Ok(out)
            }
        }
        deserializer.deserialize_seq(V(PhantomData))
    }
}

// ---- maps ----

fn serialize_map_iter<'a, S, K, V, I>(serializer: S, len: usize, iter: I) -> Result<S::Ok, S::Error>
where
    S: Serializer,
    K: Serialize + 'a,
    V: Serialize + 'a,
    I: IntoIterator<Item = (&'a K, &'a V)>,
{
    let mut map = serializer.serialize_map(Some(len))?;
    for (key, value) in iter {
        map.serialize_key(key)?;
        map.serialize_value(value)?;
    }
    map.end()
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serialize_map_iter(serializer, self.len(), self.iter())
    }
}

impl<'de, K: Deserialize<'de> + Ord, V: Deserialize<'de>> Deserialize<'de> for BTreeMap<K, V> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct Vis<K, V>(PhantomData<(K, V)>);
        impl<'de, K: Deserialize<'de> + Ord, V: Deserialize<'de>> Visitor<'de> for Vis<K, V> {
            type Value = BTreeMap<K, V>;
            fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str("a map")
            }
            fn visit_map<A: MapAccess<'de>>(self, mut map: A) -> Result<Self::Value, A::Error> {
                let mut out = BTreeMap::new();
                while let Some((key, value)) = map.next_entry::<K, V>()? {
                    out.insert(key, value);
                }
                Ok(out)
            }
        }
        deserializer.deserialize_map(Vis(PhantomData))
    }
}

impl<K: Serialize, V: Serialize, H> Serialize for HashMap<K, V, H> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serialize_map_iter(serializer, self.len(), self.iter())
    }
}

impl<'de, K, V, H> Deserialize<'de> for HashMap<K, V, H>
where
    K: Deserialize<'de> + Eq + Hash,
    V: Deserialize<'de>,
    H: BuildHasher + Default,
{
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct Vis<K, V, H>(PhantomData<(K, V, H)>);
        impl<'de, K, V, H> Visitor<'de> for Vis<K, V, H>
        where
            K: Deserialize<'de> + Eq + Hash,
            V: Deserialize<'de>,
            H: BuildHasher + Default,
        {
            type Value = HashMap<K, V, H>;
            fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str("a map")
            }
            fn visit_map<A: MapAccess<'de>>(self, mut map: A) -> Result<Self::Value, A::Error> {
                let mut out = HashMap::with_hasher(H::default());
                while let Some((key, value)) = map.next_entry::<K, V>()? {
                    out.insert(key, value);
                }
                Ok(out)
            }
        }
        deserializer.deserialize_map(Vis(PhantomData))
    }
}

// ---- tuples ----

macro_rules! tuple_impl {
    ($len:expr => $(($idx:tt $name:ident $tyvar:ident))+) => {
        impl<$($tyvar: Serialize),+> Serialize for ($($tyvar,)+) {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                let mut tuple = serializer.serialize_tuple($len)?;
                $( tuple.serialize_element(&self.$idx)?; )+
                tuple.end()
            }
        }

        impl<'de, $($tyvar: Deserialize<'de>),+> Deserialize<'de> for ($($tyvar,)+) {
            fn deserialize<__D: Deserializer<'de>>(deserializer: __D) -> Result<Self, __D::Error> {
                struct V<$($tyvar),+>(PhantomData<($($tyvar,)+)>);
                impl<'de, $($tyvar: Deserialize<'de>),+> Visitor<'de> for V<$($tyvar),+> {
                    type Value = ($($tyvar,)+);
                    fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                        write!(f, "a tuple of {} elements", $len)
                    }
                    fn visit_seq<__A: SeqAccess<'de>>(
                        self,
                        mut seq: __A,
                    ) -> Result<Self::Value, __A::Error> {
                        $(
                            let $name = seq
                                .next_element::<$tyvar>()?
                                .ok_or_else(|| de::Error::custom("tuple too short"))?;
                        )+
                        Ok(($($name,)+))
                    }
                }
                deserializer.deserialize_tuple($len, V(PhantomData))
            }
        }
    };
}

tuple_impl!(1 => (0 a A));
tuple_impl!(2 => (0 a A) (1 b B));
tuple_impl!(3 => (0 a A) (1 b B) (2 c C));
tuple_impl!(4 => (0 a A) (1 b B) (2 c C) (3 d D));
tuple_impl!(5 => (0 a A) (1 b B) (2 c C) (3 d D) (4 e E));
tuple_impl!(6 => (0 a A) (1 b B) (2 c C) (3 d D) (4 e E) (5 f F));

// ---- fixed-size arrays ----

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut tuple = serializer.serialize_tuple(N)?;
        for element in self {
            tuple.serialize_element(element)?;
        }
        tuple.end()
    }
}

impl<'de, T: DeserializeOwned, const N: usize> Deserialize<'de> for [T; N] {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct V<T, const N: usize>(PhantomData<T>);
        impl<'de, T: DeserializeOwned, const N: usize> Visitor<'de> for V<T, N> {
            type Value = [T; N];
            fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "an array of {N} elements")
            }
            fn visit_seq<A: SeqAccess<'de>>(self, mut seq: A) -> Result<Self::Value, A::Error> {
                let mut out = Vec::with_capacity(N);
                for _ in 0..N {
                    out.push(
                        seq.next_element::<T>()?
                            .ok_or_else(|| de::Error::custom("array too short"))?,
                    );
                }
                out.try_into()
                    .map_err(|_| de::Error::custom("array length mismatch"))
            }
        }
        deserializer.deserialize_tuple(N, V::<T, N>(PhantomData))
    }
}
