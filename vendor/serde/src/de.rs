//! Deserialization half of the data model.

use std::fmt::{self, Display};
use std::marker::PhantomData;

/// Error raised by a [`Deserializer`]; mirrors `serde::de::Error`.
pub trait Error: Sized + std::error::Error {
    /// Builds an error carrying a custom message.
    fn custom<T: Display>(msg: T) -> Self;

    /// Reports a value of the wrong type (convenience over [`Error::custom`]).
    fn invalid_type(unexp: &str, exp: &dyn Expected) -> Self {
        Self::custom(format_args!("invalid type: {unexp}, expected {exp}"))
    }

    /// Reports a missing struct field.
    fn missing_field(field: &'static str) -> Self {
        Self::custom(format_args!("missing field `{field}`"))
    }

    /// Reports an out-of-range enum variant index.
    fn invalid_variant(index: u32, name: &'static str) -> Self {
        Self::custom(format_args!("invalid variant index {index} for enum {name}"))
    }
}

/// What a [`Visitor`] expected, for error messages.
pub trait Expected {
    /// Writes the expectation, e.g. "struct Foo".
    fn fmt(&self, formatter: &mut fmt::Formatter<'_>) -> fmt::Result;
}

impl<'de, V: Visitor<'de>> Expected for V {
    fn fmt(&self, formatter: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.expecting(formatter)
    }
}

impl Display for dyn Expected + '_ {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        Expected::fmt(self, f)
    }
}

/// A value deserializable from any serde data format.
pub trait Deserialize<'de>: Sized {
    /// Reads this value from `deserializer`.
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error>;
}

/// A value deserializable without borrowing from the input.
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}
impl<T: for<'de> Deserialize<'de>> DeserializeOwned for T {}

/// Stateful deserialization seed; mirrors `serde::de::DeserializeSeed`.
pub trait DeserializeSeed<'de>: Sized {
    /// The produced value.
    type Value;
    /// Reads the value from `deserializer`.
    fn deserialize<D: Deserializer<'de>>(self, deserializer: D) -> Result<Self::Value, D::Error>;
}

impl<'de, T: Deserialize<'de>> DeserializeSeed<'de> for PhantomData<T> {
    type Value = T;
    fn deserialize<D: Deserializer<'de>>(self, deserializer: D) -> Result<T, D::Error> {
        T::deserialize(deserializer)
    }
}

macro_rules! default_visit {
    ($name:ident, $ty:ty, $what:expr) => {
        /// Visits a value of this shape; default errors with a type mismatch.
        fn $name<E: Error>(self, _v: $ty) -> Result<Self::Value, E> {
            Err(E::invalid_type($what, &self))
        }
    };
}

/// Walks values produced by a [`Deserializer`]; mirrors `serde::de::Visitor`.
pub trait Visitor<'de>: Sized {
    /// The value built by this visitor.
    type Value;

    /// Writes what this visitor expects, for error messages.
    fn expecting(&self, formatter: &mut fmt::Formatter<'_>) -> fmt::Result;

    default_visit!(visit_bool, bool, "a boolean");
    default_visit!(visit_i8, i8, "an i8");
    default_visit!(visit_i16, i16, "an i16");
    default_visit!(visit_i32, i32, "an i32");
    default_visit!(visit_i64, i64, "an i64");
    default_visit!(visit_u8, u8, "a u8");
    default_visit!(visit_u16, u16, "a u16");
    default_visit!(visit_u32, u32, "a u32");
    default_visit!(visit_u64, u64, "a u64");
    default_visit!(visit_f32, f32, "an f32");
    default_visit!(visit_f64, f64, "an f64");
    default_visit!(visit_char, char, "a char");

    /// Visits a borrowed-for-the-call string slice.
    fn visit_str<E: Error>(self, _v: &str) -> Result<Self::Value, E> {
        Err(E::invalid_type("a string", &self))
    }

    /// Visits a string borrowed from the input; defaults to [`Visitor::visit_str`].
    fn visit_borrowed_str<E: Error>(self, v: &'de str) -> Result<Self::Value, E> {
        self.visit_str(v)
    }

    /// Visits an owned string; defaults to [`Visitor::visit_str`].
    fn visit_string<E: Error>(self, v: String) -> Result<Self::Value, E> {
        self.visit_str(&v)
    }

    /// Visits a borrowed-for-the-call byte slice.
    fn visit_bytes<E: Error>(self, _v: &[u8]) -> Result<Self::Value, E> {
        Err(E::invalid_type("bytes", &self))
    }

    /// Visits bytes borrowed from the input; defaults to [`Visitor::visit_bytes`].
    fn visit_borrowed_bytes<E: Error>(self, v: &'de [u8]) -> Result<Self::Value, E> {
        self.visit_bytes(v)
    }

    /// Visits an owned byte buffer; defaults to [`Visitor::visit_bytes`].
    fn visit_byte_buf<E: Error>(self, v: Vec<u8>) -> Result<Self::Value, E> {
        self.visit_bytes(&v)
    }

    /// Visits `None`.
    fn visit_none<E: Error>(self) -> Result<Self::Value, E> {
        Err(E::invalid_type("none", &self))
    }

    /// Visits `Some(..)`, recursing into the deserializer.
    fn visit_some<D: Deserializer<'de>>(self, _deserializer: D) -> Result<Self::Value, D::Error> {
        Err(D::Error::invalid_type("some", &self))
    }

    /// Visits `()`.
    fn visit_unit<E: Error>(self) -> Result<Self::Value, E> {
        Err(E::invalid_type("unit", &self))
    }

    /// Visits a newtype struct, recursing into the deserializer.
    fn visit_newtype_struct<D: Deserializer<'de>>(
        self,
        _deserializer: D,
    ) -> Result<Self::Value, D::Error> {
        Err(D::Error::invalid_type("newtype struct", &self))
    }

    /// Visits a sequence.
    fn visit_seq<A: SeqAccess<'de>>(self, _seq: A) -> Result<Self::Value, A::Error> {
        Err(A::Error::invalid_type("a sequence", &self))
    }

    /// Visits a map.
    fn visit_map<A: MapAccess<'de>>(self, _map: A) -> Result<Self::Value, A::Error> {
        Err(A::Error::invalid_type("a map", &self))
    }

    /// Visits an enum.
    fn visit_enum<A: EnumAccess<'de>>(self, _data: A) -> Result<Self::Value, A::Error> {
        Err(A::Error::invalid_type("an enum", &self))
    }
}

/// A data format that can deserialize the serde data model.
pub trait Deserializer<'de>: Sized {
    /// Error type.
    type Error: Error;

    /// Deserializes whatever the input holds (self-describing formats only).
    fn deserialize_any<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Deserializes a `bool`.
    fn deserialize_bool<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Deserializes an `i8`.
    fn deserialize_i8<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Deserializes an `i16`.
    fn deserialize_i16<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Deserializes an `i32`.
    fn deserialize_i32<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Deserializes an `i64`.
    fn deserialize_i64<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Deserializes a `u8`.
    fn deserialize_u8<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Deserializes a `u16`.
    fn deserialize_u16<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Deserializes a `u32`.
    fn deserialize_u32<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Deserializes a `u64`.
    fn deserialize_u64<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Deserializes an `f32`.
    fn deserialize_f32<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Deserializes an `f64`.
    fn deserialize_f64<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Deserializes a `char`.
    fn deserialize_char<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Deserializes a string slice.
    fn deserialize_str<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Deserializes an owned string.
    fn deserialize_string<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Deserializes borrowed bytes.
    fn deserialize_bytes<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Deserializes an owned byte buffer.
    fn deserialize_byte_buf<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Deserializes an `Option`.
    fn deserialize_option<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Deserializes `()`.
    fn deserialize_unit<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Deserializes a unit struct.
    fn deserialize_unit_struct<V: Visitor<'de>>(
        self,
        name: &'static str,
        visitor: V,
    ) -> Result<V::Value, Self::Error>;
    /// Deserializes a newtype struct.
    fn deserialize_newtype_struct<V: Visitor<'de>>(
        self,
        name: &'static str,
        visitor: V,
    ) -> Result<V::Value, Self::Error>;
    /// Deserializes a variable-length sequence.
    fn deserialize_seq<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Deserializes a fixed-length tuple.
    fn deserialize_tuple<V: Visitor<'de>>(
        self,
        len: usize,
        visitor: V,
    ) -> Result<V::Value, Self::Error>;
    /// Deserializes a tuple struct.
    fn deserialize_tuple_struct<V: Visitor<'de>>(
        self,
        name: &'static str,
        len: usize,
        visitor: V,
    ) -> Result<V::Value, Self::Error>;
    /// Deserializes a map.
    fn deserialize_map<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Deserializes a struct with named fields.
    fn deserialize_struct<V: Visitor<'de>>(
        self,
        name: &'static str,
        fields: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value, Self::Error>;
    /// Deserializes an enum.
    fn deserialize_enum<V: Visitor<'de>>(
        self,
        name: &'static str,
        variants: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value, Self::Error>;
    /// Deserializes a field/variant identifier.
    fn deserialize_identifier<V: Visitor<'de>>(self, visitor: V)
        -> Result<V::Value, Self::Error>;
    /// Skips whatever the input holds (self-describing formats only).
    fn deserialize_ignored_any<V: Visitor<'de>>(
        self,
        visitor: V,
    ) -> Result<V::Value, Self::Error>;

    /// Whether the format is human readable (binary formats return false).
    fn is_human_readable(&self) -> bool {
        true
    }
}

/// Element-by-element access to a sequence.
pub trait SeqAccess<'de> {
    /// Error type.
    type Error: Error;

    /// Reads the next element through `seed`; `None` at the end.
    fn next_element_seed<T: DeserializeSeed<'de>>(
        &mut self,
        seed: T,
    ) -> Result<Option<T::Value>, Self::Error>;

    /// Reads the next element of a known type.
    fn next_element<T: Deserialize<'de>>(&mut self) -> Result<Option<T>, Self::Error> {
        self.next_element_seed(PhantomData)
    }

    /// Remaining length, if known.
    fn size_hint(&self) -> Option<usize> {
        None
    }
}

/// Entry-by-entry access to a map.
pub trait MapAccess<'de> {
    /// Error type.
    type Error: Error;

    /// Reads the next key through `seed`; `None` at the end.
    fn next_key_seed<K: DeserializeSeed<'de>>(
        &mut self,
        seed: K,
    ) -> Result<Option<K::Value>, Self::Error>;

    /// Reads the value of the entry whose key was just read.
    fn next_value_seed<V: DeserializeSeed<'de>>(
        &mut self,
        seed: V,
    ) -> Result<V::Value, Self::Error>;

    /// Reads the next key of a known type.
    fn next_key<K: Deserialize<'de>>(&mut self) -> Result<Option<K>, Self::Error> {
        self.next_key_seed(PhantomData)
    }

    /// Reads the next value of a known type.
    fn next_value<V: Deserialize<'de>>(&mut self) -> Result<V, Self::Error> {
        self.next_value_seed(PhantomData)
    }

    /// Reads the next full entry of known types.
    fn next_entry<K: Deserialize<'de>, V: Deserialize<'de>>(
        &mut self,
    ) -> Result<Option<(K, V)>, Self::Error> {
        match self.next_key()? {
            Some(key) => Ok(Some((key, self.next_value()?))),
            None => Ok(None),
        }
    }

    /// Remaining length, if known.
    fn size_hint(&self) -> Option<usize> {
        None
    }
}

/// Access to the variant tag of an enum.
pub trait EnumAccess<'de>: Sized {
    /// Error type.
    type Error: Error;
    /// Accessor for the chosen variant's payload.
    type Variant: VariantAccess<'de, Error = Self::Error>;

    /// Reads the variant tag through `seed`.
    fn variant_seed<V: DeserializeSeed<'de>>(
        self,
        seed: V,
    ) -> Result<(V::Value, Self::Variant), Self::Error>;

    /// Reads the variant tag as a known type.
    fn variant<V: Deserialize<'de>>(self) -> Result<(V, Self::Variant), Self::Error> {
        self.variant_seed(PhantomData)
    }
}

/// Access to an enum variant's payload.
pub trait VariantAccess<'de>: Sized {
    /// Error type.
    type Error: Error;

    /// Finishes a dataless variant.
    fn unit_variant(self) -> Result<(), Self::Error>;

    /// Reads a single-payload variant through `seed`.
    fn newtype_variant_seed<T: DeserializeSeed<'de>>(
        self,
        seed: T,
    ) -> Result<T::Value, Self::Error>;

    /// Reads a single-payload variant of a known type.
    fn newtype_variant<T: Deserialize<'de>>(self) -> Result<T, Self::Error> {
        self.newtype_variant_seed(PhantomData)
    }

    /// Reads a tuple variant's fields.
    fn tuple_variant<V: Visitor<'de>>(self, len: usize, visitor: V)
        -> Result<V::Value, Self::Error>;

    /// Reads a struct variant's fields.
    fn struct_variant<V: Visitor<'de>>(
        self,
        fields: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value, Self::Error>;
}

/// Trivial deserializers wrapping already-decoded values.
pub mod value {
    use super::{Deserializer, Error, Visitor};
    use std::marker::PhantomData;

    /// A deserializer holding one `u32` (used for enum variant indices).
    #[derive(Debug, Clone, Copy)]
    pub struct U32Deserializer<E> {
        value: u32,
        marker: PhantomData<E>,
    }

    impl<E> U32Deserializer<E> {
        /// Wraps `value`.
        pub fn new(value: u32) -> Self {
            U32Deserializer {
                value,
                marker: PhantomData,
            }
        }
    }

    macro_rules! forward_to_visit_u32 {
        ($($method:ident)*) => {$(
            fn $method<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, E> {
                visitor.visit_u32(self.value)
            }
        )*};
    }

    impl<'de, E: Error> Deserializer<'de> for U32Deserializer<E> {
        type Error = E;

        forward_to_visit_u32! {
            deserialize_any deserialize_bool
            deserialize_i8 deserialize_i16 deserialize_i32 deserialize_i64
            deserialize_u8 deserialize_u16 deserialize_u32 deserialize_u64
            deserialize_f32 deserialize_f64 deserialize_char
            deserialize_str deserialize_string deserialize_bytes
            deserialize_byte_buf deserialize_option deserialize_unit
            deserialize_seq deserialize_map deserialize_identifier
            deserialize_ignored_any
        }

        fn deserialize_unit_struct<V: Visitor<'de>>(
            self,
            _name: &'static str,
            visitor: V,
        ) -> Result<V::Value, E> {
            visitor.visit_u32(self.value)
        }

        fn deserialize_newtype_struct<V: Visitor<'de>>(
            self,
            _name: &'static str,
            visitor: V,
        ) -> Result<V::Value, E> {
            visitor.visit_u32(self.value)
        }

        fn deserialize_tuple<V: Visitor<'de>>(
            self,
            _len: usize,
            visitor: V,
        ) -> Result<V::Value, E> {
            visitor.visit_u32(self.value)
        }

        fn deserialize_tuple_struct<V: Visitor<'de>>(
            self,
            _name: &'static str,
            _len: usize,
            visitor: V,
        ) -> Result<V::Value, E> {
            visitor.visit_u32(self.value)
        }

        fn deserialize_struct<V: Visitor<'de>>(
            self,
            _name: &'static str,
            _fields: &'static [&'static str],
            visitor: V,
        ) -> Result<V::Value, E> {
            visitor.visit_u32(self.value)
        }

        fn deserialize_enum<V: Visitor<'de>>(
            self,
            _name: &'static str,
            _variants: &'static [&'static str],
            visitor: V,
        ) -> Result<V::Value, E> {
            visitor.visit_u32(self.value)
        }
    }
}
