//! Serialization half of the data model.

use std::fmt::Display;

/// Error raised by a [`Serializer`]; mirrors `serde::ser::Error`.
pub trait Error: Sized + std::error::Error {
    /// Builds an error carrying a custom message.
    fn custom<T: Display>(msg: T) -> Self;
}

/// A value serializable into any serde data format.
pub trait Serialize {
    /// Feeds this value into `serializer`.
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error>;
}

/// A data format that can serialize the serde data model.
pub trait Serializer: Sized {
    /// Output of a successful serialization.
    type Ok;
    /// Error type.
    type Error: Error;
    /// Sub-serializer for sequences.
    type SerializeSeq: SerializeSeq<Ok = Self::Ok, Error = Self::Error>;
    /// Sub-serializer for tuples.
    type SerializeTuple: SerializeTuple<Ok = Self::Ok, Error = Self::Error>;
    /// Sub-serializer for tuple structs.
    type SerializeTupleStruct: SerializeTupleStruct<Ok = Self::Ok, Error = Self::Error>;
    /// Sub-serializer for tuple enum variants.
    type SerializeTupleVariant: SerializeTupleVariant<Ok = Self::Ok, Error = Self::Error>;
    /// Sub-serializer for maps.
    type SerializeMap: SerializeMap<Ok = Self::Ok, Error = Self::Error>;
    /// Sub-serializer for structs.
    type SerializeStruct: SerializeStruct<Ok = Self::Ok, Error = Self::Error>;
    /// Sub-serializer for struct enum variants.
    type SerializeStructVariant: SerializeStructVariant<Ok = Self::Ok, Error = Self::Error>;

    /// Serializes a `bool`.
    fn serialize_bool(self, v: bool) -> Result<Self::Ok, Self::Error>;
    /// Serializes an `i8`.
    fn serialize_i8(self, v: i8) -> Result<Self::Ok, Self::Error>;
    /// Serializes an `i16`.
    fn serialize_i16(self, v: i16) -> Result<Self::Ok, Self::Error>;
    /// Serializes an `i32`.
    fn serialize_i32(self, v: i32) -> Result<Self::Ok, Self::Error>;
    /// Serializes an `i64`.
    fn serialize_i64(self, v: i64) -> Result<Self::Ok, Self::Error>;
    /// Serializes a `u8`.
    fn serialize_u8(self, v: u8) -> Result<Self::Ok, Self::Error>;
    /// Serializes a `u16`.
    fn serialize_u16(self, v: u16) -> Result<Self::Ok, Self::Error>;
    /// Serializes a `u32`.
    fn serialize_u32(self, v: u32) -> Result<Self::Ok, Self::Error>;
    /// Serializes a `u64`.
    fn serialize_u64(self, v: u64) -> Result<Self::Ok, Self::Error>;
    /// Serializes an `f32`.
    fn serialize_f32(self, v: f32) -> Result<Self::Ok, Self::Error>;
    /// Serializes an `f64`.
    fn serialize_f64(self, v: f64) -> Result<Self::Ok, Self::Error>;
    /// Serializes a `char`.
    fn serialize_char(self, v: char) -> Result<Self::Ok, Self::Error>;
    /// Serializes a string slice.
    fn serialize_str(self, v: &str) -> Result<Self::Ok, Self::Error>;
    /// Serializes raw bytes.
    fn serialize_bytes(self, v: &[u8]) -> Result<Self::Ok, Self::Error>;
    /// Serializes `Option::None`.
    fn serialize_none(self) -> Result<Self::Ok, Self::Error>;
    /// Serializes `Option::Some(value)`.
    fn serialize_some<T: Serialize + ?Sized>(self, value: &T) -> Result<Self::Ok, Self::Error>;
    /// Serializes `()`.
    fn serialize_unit(self) -> Result<Self::Ok, Self::Error>;
    /// Serializes a unit struct like `struct Unit;`.
    fn serialize_unit_struct(self, name: &'static str) -> Result<Self::Ok, Self::Error>;
    /// Serializes a dataless enum variant.
    fn serialize_unit_variant(
        self,
        name: &'static str,
        variant_index: u32,
        variant: &'static str,
    ) -> Result<Self::Ok, Self::Error>;
    /// Serializes a newtype struct like `struct Meters(f64);`.
    fn serialize_newtype_struct<T: Serialize + ?Sized>(
        self,
        name: &'static str,
        value: &T,
    ) -> Result<Self::Ok, Self::Error>;
    /// Serializes a single-payload enum variant.
    fn serialize_newtype_variant<T: Serialize + ?Sized>(
        self,
        name: &'static str,
        variant_index: u32,
        variant: &'static str,
        value: &T,
    ) -> Result<Self::Ok, Self::Error>;
    /// Begins a variable-length sequence.
    fn serialize_seq(self, len: Option<usize>) -> Result<Self::SerializeSeq, Self::Error>;
    /// Begins a fixed-length tuple.
    fn serialize_tuple(self, len: usize) -> Result<Self::SerializeTuple, Self::Error>;
    /// Begins a tuple struct.
    fn serialize_tuple_struct(
        self,
        name: &'static str,
        len: usize,
    ) -> Result<Self::SerializeTupleStruct, Self::Error>;
    /// Begins a tuple enum variant.
    fn serialize_tuple_variant(
        self,
        name: &'static str,
        variant_index: u32,
        variant: &'static str,
        len: usize,
    ) -> Result<Self::SerializeTupleVariant, Self::Error>;
    /// Begins a map.
    fn serialize_map(self, len: Option<usize>) -> Result<Self::SerializeMap, Self::Error>;
    /// Begins a struct with named fields.
    fn serialize_struct(
        self,
        name: &'static str,
        len: usize,
    ) -> Result<Self::SerializeStruct, Self::Error>;
    /// Begins a struct enum variant.
    fn serialize_struct_variant(
        self,
        name: &'static str,
        variant_index: u32,
        variant: &'static str,
        len: usize,
    ) -> Result<Self::SerializeStructVariant, Self::Error>;

    /// Whether the format is human readable (binary formats return false).
    fn is_human_readable(&self) -> bool {
        true
    }
}

/// In-progress serialization of a sequence.
pub trait SerializeSeq {
    /// Output type matching the parent serializer.
    type Ok;
    /// Error type matching the parent serializer.
    type Error: Error;
    /// Serializes one element.
    fn serialize_element<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), Self::Error>;
    /// Finishes the sequence.
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

/// In-progress serialization of a tuple.
pub trait SerializeTuple {
    /// Output type matching the parent serializer.
    type Ok;
    /// Error type matching the parent serializer.
    type Error: Error;
    /// Serializes one element.
    fn serialize_element<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), Self::Error>;
    /// Finishes the tuple.
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

/// In-progress serialization of a tuple struct.
pub trait SerializeTupleStruct {
    /// Output type matching the parent serializer.
    type Ok;
    /// Error type matching the parent serializer.
    type Error: Error;
    /// Serializes one field.
    fn serialize_field<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), Self::Error>;
    /// Finishes the tuple struct.
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

/// In-progress serialization of a tuple enum variant.
pub trait SerializeTupleVariant {
    /// Output type matching the parent serializer.
    type Ok;
    /// Error type matching the parent serializer.
    type Error: Error;
    /// Serializes one field.
    fn serialize_field<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), Self::Error>;
    /// Finishes the variant.
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

/// In-progress serialization of a map.
pub trait SerializeMap {
    /// Output type matching the parent serializer.
    type Ok;
    /// Error type matching the parent serializer.
    type Error: Error;
    /// Serializes one key.
    fn serialize_key<T: Serialize + ?Sized>(&mut self, key: &T) -> Result<(), Self::Error>;
    /// Serializes one value.
    fn serialize_value<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), Self::Error>;
    /// Finishes the map.
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

/// In-progress serialization of a struct.
pub trait SerializeStruct {
    /// Output type matching the parent serializer.
    type Ok;
    /// Error type matching the parent serializer.
    type Error: Error;
    /// Serializes one named field.
    fn serialize_field<T: Serialize + ?Sized>(
        &mut self,
        key: &'static str,
        value: &T,
    ) -> Result<(), Self::Error>;
    /// Finishes the struct.
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

/// In-progress serialization of a struct enum variant.
pub trait SerializeStructVariant {
    /// Output type matching the parent serializer.
    type Ok;
    /// Error type matching the parent serializer.
    type Error: Error;
    /// Serializes one named field.
    fn serialize_field<T: Serialize + ?Sized>(
        &mut self,
        key: &'static str,
        value: &T,
    ) -> Result<(), Self::Error>;
    /// Finishes the variant.
    fn end(self) -> Result<Self::Ok, Self::Error>;
}
