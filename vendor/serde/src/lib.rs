//! Vendored stand-in for the `serde` crate.
//!
//! The build container has no crates.io access, so this crate reimplements
//! the serde data-model trait surface that `psc-codec` (a full serde-format
//! implementation) and the workspace's `#[derive(Serialize, Deserialize)]`
//! types exercise. The companion `serde_derive` stand-in generates impls
//! against exactly these traits. Formats and derives in this workspace are
//! the only consumers, so the surface is complete for the repo while
//! remaining a small fraction of upstream serde.

pub mod de;
pub mod ser;

pub use de::{Deserialize, DeserializeOwned, Deserializer};
pub use ser::{Serialize, Serializer};

// Derive macros share the trait names, exactly as upstream serde re-exports
// serde_derive under the `derive` feature (always on here).
pub use serde_derive::{Deserialize, Serialize};

mod impls;
